//! Critical-path extraction and blame attribution over the event trace.
//!
//! For every end-to-end path instance (sensor acquisition → sink
//! publication) this module reconstructs the full causal chain from the
//! recorded callback/lineage events and decomposes its latency into
//! exact, additive components:
//!
//! * **compute** — a chain callback executing (start → complete),
//! * **queue_wait** — the triggering message waiting in a subscription
//!   queue (arrival → start),
//! * **transport** — producer completion → consumer arrival (zero under
//!   the current zero-copy intra-process delivery model, kept explicit so
//!   a transport-cost model lands in an existing column),
//! * **alignment** — data sitting in a fusion node's cache waiting for
//!   the other modality's trigger (intake completion → fusing start),
//! * **degraded** — any portion of the above that overlaps a fault window
//!   (crash → restart, fallback enter → exit), reclassified so fault time
//!   is visible without breaking additivity.
//!
//! The components telescope over `[acquisition stamp, sink completion]`
//! by construction, so they sum to the recorded end-to-end latency in
//! exact integer nanoseconds — `blame_report --verify` gates on it.
//! Energy per frame is attributed by integrating each node's share of
//! sampled CPU+GPU power ([`av_profiling::RateIntegral`]) over the
//! instance's compute spans.
//!
//! On top of the per-instance decomposition sit the blame summaries the
//! paper's Finding 1 and COLA motivate: per-node contribution to the
//! p50/p99/max instance of each path (tail blame differs from mean blame
//! exactly when contention, not kernel compute, inflates the tail),
//! per-edge slack (alignment time by fusion node), and the
//! dominant-component histogram.

use crate::json::JsonValue;
use crate::{MetricSample, TraceData, TraceEvent};
use av_des::{SimDuration, SimTime};
use av_profiling::{Distribution, RateIntegral};
use av_ros::{FaultKind, Source};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One additive latency component of a path instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// A chain callback executing.
    Compute,
    /// The triggering message waiting in a subscription queue.
    QueueWait,
    /// Producer completion → consumer arrival.
    Transport,
    /// Cached data waiting for a fusion trigger.
    Alignment,
    /// Any of the above overlapping a fault window.
    Degraded,
}

impl Component {
    /// Every component, in column order.
    pub const ALL: [Component; 5] = [
        Component::Compute,
        Component::QueueWait,
        Component::Transport,
        Component::Alignment,
        Component::Degraded,
    ];

    /// Stable lower-case name, used in CSV/track output.
    pub fn name(self) -> &'static str {
        match self {
            Component::Compute => "compute",
            Component::QueueWait => "queue_wait",
            Component::Transport => "transport",
            Component::Alignment => "alignment",
            Component::Degraded => "degraded",
        }
    }

    /// Index of this component within [`Component::ALL`] (and any
    /// parallel per-component array such as a dominant histogram).
    pub fn idx(self) -> usize {
        match self {
            Component::Compute => 0,
            Component::QueueWait => 1,
            Component::Transport => 2,
            Component::Alignment => 3,
            Component::Degraded => 4,
        }
    }
}

/// A computation path to attribute, with a typed lineage source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlamePathSpec {
    /// Path name (e.g. `costmap_vision_obj`).
    pub name: String,
    /// Terminal node of the path.
    pub sink_node: String,
    /// Lineage source anchoring the measurement.
    pub source: Source,
}

impl BlamePathSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        sink_node: impl Into<String>,
        source: Source,
    ) -> BlamePathSpec {
        BlamePathSpec { name: name.into(), sink_node: sink_node.into(), source }
    }
}

/// One contiguous piece of a path instance's timeline, attributed to one
/// node and one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The node this time is blamed on.
    pub node: String,
    /// What the time was spent on.
    pub component: Component,
    /// Segment start.
    pub from: SimTime,
    /// Segment end (`>= from`).
    pub to: SimTime,
}

impl Segment {
    /// Segment duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.to.saturating_since(self.from).as_nanos()
    }
}

/// One reconstructed end-to-end path instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInstance {
    /// Ordinal within the path, in completion order (matches the live
    /// recorder's sample order).
    pub seq: usize,
    /// The anchoring sensor acquisition stamp.
    pub origin: SimTime,
    /// Sink callback completion.
    pub completed: SimTime,
    /// The decomposition: ascending, contiguous, covering exactly
    /// `[origin, completed]`.
    pub segments: Vec<Segment>,
    /// Energy attributed to each node over this instance's compute spans,
    /// millijoules.
    pub energy_mj_by_node: BTreeMap<String, f64>,
}

impl PathInstance {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.completed.saturating_since(self.origin).as_nanos()
    }

    /// End-to-end latency in milliseconds — the exact arithmetic the live
    /// recorder uses, so values compare bit-exactly.
    pub fn total_ms(&self) -> f64 {
        self.completed.saturating_since(self.origin).as_millis_f64()
    }

    /// Sum of all segment durations — must equal [`PathInstance::total_ns`].
    pub fn components_sum_ns(&self) -> u64 {
        self.segments.iter().map(Segment::dur_ns).sum()
    }

    /// Per-component durations in [`Component::ALL`] order, ns.
    pub fn component_ns(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for seg in &self.segments {
            out[seg.component.idx()] += seg.dur_ns();
        }
        out
    }

    /// Per-node durations, ns.
    pub fn node_ns(&self) -> BTreeMap<&str, u64> {
        let mut out: BTreeMap<&str, u64> = BTreeMap::new();
        for seg in &self.segments {
            *out.entry(seg.node.as_str()).or_insert(0) += seg.dur_ns();
        }
        out
    }

    /// The largest component (ties resolve to the earlier entry of
    /// [`Component::ALL`]).
    pub fn dominant(&self) -> Component {
        let ns = self.component_ns();
        let mut best = Component::Compute;
        for c in Component::ALL {
            if ns[c.idx()] > ns[best.idx()] {
                best = c;
            }
        }
        best
    }

    /// The node blamed for the most time, with its share of the total
    /// (ties resolve to the lexicographically first node).
    pub fn top_node(&self) -> Option<(String, f64)> {
        let total = self.total_ns();
        self.node_ns()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
            .map(|(n, ns)| (n.to_string(), if total == 0 { 0.0 } else { ns as f64 / total as f64 }))
    }

    /// Total attributed energy, millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_mj_by_node.values().sum()
    }
}

/// All instances of one path, with the blame summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct PathBlame {
    /// Path name.
    pub name: String,
    /// Terminal node.
    pub sink_node: String,
    /// Anchoring source.
    pub source: Source,
    /// Instances in completion order.
    pub instances: Vec<PathInstance>,
}

impl PathBlame {
    /// End-to-end latency distribution recomputed from the component sums
    /// (ms). Bit-identical to the live recorder's when additivity holds.
    pub fn latency_distribution(&self) -> Distribution {
        self.instances.iter().map(PathInstance::total_ms).collect()
    }

    /// The instance realizing percentile `p` (nearest rank over totals;
    /// ties resolve to the earlier instance). `None` when empty.
    pub fn instance_at_percentile(&self, p: f64) -> Option<&PathInstance> {
        if self.instances.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..self.instances.len()).collect();
        order.sort_by_key(|&i| (self.instances[i].total_ns(), i));
        let rank = (p / 100.0 * (order.len() - 1) as f64).round() as usize;
        Some(&self.instances[order[rank.min(order.len() - 1)]])
    }

    /// Mean share of each component across all instances (duration
    /// weighted), in [`Component::ALL`] order.
    pub fn mean_component_share(&self) -> [f64; 5] {
        let mut ns = [0u64; 5];
        let mut total = 0u64;
        for inst in &self.instances {
            let c = inst.component_ns();
            for i in 0..5 {
                ns[i] += c[i];
            }
            total += inst.total_ns();
        }
        let mut out = [0.0f64; 5];
        if total > 0 {
            for i in 0..5 {
                out[i] = ns[i] as f64 / total as f64;
            }
        }
        out
    }

    /// Mean blame share per node across all instances (duration weighted).
    pub fn mean_node_share(&self) -> BTreeMap<String, f64> {
        let mut ns: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0u64;
        for inst in &self.instances {
            for (node, d) in inst.node_ns() {
                *ns.entry(node.to_string()).or_insert(0) += d;
            }
            total += inst.total_ns();
        }
        ns.into_iter()
            .map(|(n, d)| (n, if total == 0 { 0.0 } else { d as f64 / total as f64 }))
            .collect()
    }

    /// A component's share within the instance at percentile `p`.
    pub fn component_share_at(&self, p: f64, component: Component) -> f64 {
        self.instance_at_percentile(p)
            .map(|inst| {
                let total = inst.total_ns();
                if total == 0 {
                    0.0
                } else {
                    inst.component_ns()[component.idx()] as f64 / total as f64
                }
            })
            .unwrap_or(0.0)
    }

    /// How many instances each component dominates, in [`Component::ALL`]
    /// order.
    pub fn dominant_histogram(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for inst in &self.instances {
            out[inst.dominant().idx()] += 1;
        }
        out
    }

    /// Per-edge slack: alignment time by fusion node — how long upstream
    /// data could have been delayed without changing the output, i.e. the
    /// wait for the other modality. Returns `(count, total_ns)` per node.
    pub fn edge_slack(&self) -> BTreeMap<String, (u64, u64)> {
        let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for inst in &self.instances {
            for seg in &inst.segments {
                if seg.component == Component::Alignment && seg.dur_ns() > 0 {
                    let e = out.entry(seg.node.clone()).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += seg.dur_ns();
                }
            }
        }
        out
    }

    /// Mean attributed energy per instance, by node (mJ).
    pub fn mean_energy_mj_by_node(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for inst in &self.instances {
            for (node, mj) in &inst.energy_mj_by_node {
                *out.entry(node.clone()).or_insert(0.0) += mj;
            }
        }
        let n = self.instances.len().max(1) as f64;
        for v in out.values_mut() {
            *v /= n;
        }
        out
    }
}

/// The full attribution for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// One entry per spec, in spec order.
    pub paths: Vec<PathBlame>,
}

impl BlameReport {
    /// Looks a path up by name.
    pub fn path(&self, name: &str) -> Option<&PathBlame> {
        self.paths.iter().find(|p| p.name == name)
    }
}

/// Internal flat view of one recorded callback.
struct Cb {
    node_idx: usize,
    topic: String,
    arrival: u64,
    started: u64,
    completed: u64,
    lineage: Vec<(Source, u64)>,
    published: bool,
    publishes: Vec<String>,
}

impl Cb {
    fn stamp_of(&self, source: Source) -> Option<u64> {
        self.lineage.iter().find(|(s, _)| *s == source).map(|&(_, t)| t)
    }

    fn has(&self, source: Source, stamp: u64) -> bool {
        self.stamp_of(source) == Some(stamp)
    }
}

/// Reconstructs every path instance's causal chain and decomposes it.
///
/// Returns an error when a chain cannot be reconstructed (a lineage stamp
/// with no recorded carrier — a broken chain) or when the decomposition
/// of any instance fails to cover its span exactly.
pub fn analyze_blame(data: &TraceData, specs: &[BlamePathSpec]) -> Result<BlameReport, String> {
    // Node name interning: segment attribution stores indexes during the
    // walk and resolves to strings once.
    let mut node_names: Vec<String> = Vec::new();
    let mut node_idx_of: HashMap<String, usize> = HashMap::new();
    let intern = |name: &str, names: &mut Vec<String>, map: &mut HashMap<String, usize>| {
        if let Some(&i) = map.get(name) {
            i
        } else {
            names.push(name.to_string());
            map.insert(name.to_string(), names.len() - 1);
            names.len() - 1
        }
    };

    let mut cbs: Vec<Cb> = Vec::new();
    for event in &data.events {
        if let TraceEvent::Callback {
            node,
            topic,
            arrival,
            started,
            completed,
            lineage,
            published,
        } = event
        {
            cbs.push(Cb {
                node_idx: intern(node, &mut node_names, &mut node_idx_of),
                topic: topic.clone(),
                arrival: arrival.as_nanos(),
                started: started.as_nanos(),
                completed: completed.as_nanos(),
                lineage: lineage.iter().map(|&(s, t)| (s, t.as_nanos())).collect(),
                published: !published.is_empty(),
                publishes: published.clone(),
            });
        }
    }

    // Producer index: (published topic, completion time) → callbacks, in
    // trace order. Delivery is synchronous, so a consumer's arrival time
    // equals its producer's completion time.
    let mut producers: HashMap<(String, u64), Vec<usize>> = HashMap::new();
    for (i, cb) in cbs.iter().enumerate() {
        for topic in &cb.publishes {
            producers.entry((topic.clone(), cb.completed)).or_default().push(i);
        }
    }
    // First carrier of each (node, source, stamp): the callback through
    // which that acquisition first entered the node. Later callbacks of
    // the node may re-publish the stamp from cached state; the first
    // carrier is the cache write the alignment wait is measured from.
    let mut first_carrier: HashMap<(usize, u64, u64), usize> = HashMap::new();
    for (i, cb) in cbs.iter().enumerate() {
        for &(source, stamp) in &cb.lineage {
            first_carrier.entry((cb.node_idx, source.code(), stamp)).or_insert(i);
        }
    }

    let windows = degraded_windows(data);
    let power = node_power_integrals(data);

    let mut paths = Vec::with_capacity(specs.len());
    for spec in specs {
        let Some(&sink_idx) = node_idx_of.get(&spec.sink_node) else {
            paths.push(PathBlame {
                name: spec.name.clone(),
                sink_node: spec.sink_node.clone(),
                source: spec.source,
                instances: Vec::new(),
            });
            continue;
        };
        let mut instances = Vec::new();
        for (i, cb) in cbs.iter().enumerate() {
            if cb.node_idx != sink_idx || !cb.published {
                continue;
            }
            let Some(stamp) = cb.stamp_of(spec.source) else { continue };
            let segments =
                walk_chain(&cbs, &producers, &first_carrier, i, spec.source, stamp, &node_names)
                    .map_err(|e| format!("path {} instance {}: {e}", spec.name, instances.len()))?;
            let mut energy_mj_by_node: BTreeMap<String, f64> = BTreeMap::new();
            for seg in &segments {
                if seg.component == Component::Compute {
                    if let Some(integral) = power.get(&seg.node) {
                        let joules = integral.integral(seg.from.as_nanos(), seg.to.as_nanos());
                        if joules != 0.0 {
                            *energy_mj_by_node.entry(seg.node.clone()).or_insert(0.0) +=
                                joules * 1000.0;
                        }
                    }
                }
            }
            let segments = split_degraded(segments, &windows);
            let instance = PathInstance {
                seq: instances.len(),
                origin: SimTime::from_nanos(stamp),
                completed: SimTime::from_nanos(cb.completed),
                segments,
                energy_mj_by_node,
            };
            if instance.components_sum_ns() != instance.total_ns() {
                return Err(format!(
                    "path {} instance {}: components sum {} ns != total {} ns",
                    spec.name,
                    instance.seq,
                    instance.components_sum_ns(),
                    instance.total_ns()
                ));
            }
            instances.push(instance);
        }
        paths.push(PathBlame {
            name: spec.name.clone(),
            sink_node: spec.sink_node.clone(),
            source: spec.source,
            instances,
        });
    }
    Ok(BlameReport { paths })
}

/// Walks one instance's causal chain backwards from the sink callback,
/// emitting contiguous segments that cover `[stamp, sink completion]`.
fn walk_chain(
    cbs: &[Cb],
    producers: &HashMap<(String, u64), Vec<usize>>,
    first_carrier: &HashMap<(usize, u64, u64), usize>,
    sink: usize,
    source: Source,
    stamp: u64,
    node_names: &[String],
) -> Result<Vec<Segment>, String> {
    let seg = |node_idx: usize, component: Component, from: u64, to: u64| Segment {
        node: node_names[node_idx].clone(),
        component,
        from: SimTime::from_nanos(from),
        to: SimTime::from_nanos(to),
    };
    let mut segs: Vec<Segment> = Vec::new();
    let mut cur = sink;
    for _ in 0..cbs.len() + 1 {
        let c = &cbs[cur];
        segs.push(seg(c.node_idx, Component::Compute, c.started, c.completed));
        // Trigger edge: the message that started this callback carried the
        // stamp — the producer completed exactly at our arrival.
        let trigger = producers
            .get(&(c.topic.clone(), c.arrival))
            .and_then(|v| v.iter().find(|&&p| p != cur && cbs[p].has(source, stamp)))
            .copied();
        if let Some(p) = trigger {
            segs.push(seg(c.node_idx, Component::QueueWait, c.arrival, c.started));
            segs.push(seg(c.node_idx, Component::Transport, cbs[p].completed, c.arrival));
            cur = p;
            continue;
        }
        // Cache edge: the stamp entered this node through an earlier
        // callback (fusion intake) and waited for this trigger.
        let intake = first_carrier
            .get(&(c.node_idx, source.code(), stamp))
            .copied()
            .filter(|&a| a != cur && cbs[a].completed <= c.started);
        if let Some(a) = intake {
            segs.push(seg(c.node_idx, Component::Alignment, cbs[a].completed, c.started));
            cur = a;
            continue;
        }
        // Sensor edge: the raw acquisition published at the stamp.
        if stamp <= c.arrival {
            segs.push(seg(c.node_idx, Component::QueueWait, c.arrival, c.started));
            segs.push(seg(c.node_idx, Component::Transport, stamp, c.arrival));
            segs.reverse();
            // The chain telescopes by construction; verify contiguity so a
            // future indexing bug cannot silently mis-attribute.
            let mut at = stamp;
            for s in &segs {
                if s.from.as_nanos() != at || s.to.as_nanos() < at {
                    return Err(format!(
                        "non-contiguous chain at {} ({} != {at})",
                        s.node,
                        s.from.as_nanos()
                    ));
                }
                at = s.to.as_nanos();
            }
            segs.retain(|s| s.dur_ns() > 0);
            return Ok(segs);
        }
        return Err(format!(
            "broken chain: {} stamp {stamp} ns has no recorded carrier into node {}",
            source.name(),
            node_names[c.node_idx]
        ));
    }
    Err("chain reconstruction did not terminate (cycle in trace)".to_string())
}

/// Fault windows: per-node crash → restart outages and fallback
/// enter → exit episodes, merged into a sorted disjoint union. Open
/// episodes extend to the end of time (the instance end censors them).
fn degraded_windows(data: &TraceData) -> Vec<(u64, u64)> {
    let mut open: BTreeMap<(String, u8), u64> = BTreeMap::new();
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for event in &data.events {
        let TraceEvent::Fault { kind, node, time, .. } = event else { continue };
        let t = time.as_nanos();
        match kind {
            FaultKind::Crash => {
                open.entry((node.clone(), 0)).or_insert(t);
            }
            FaultKind::Restart => {
                if let Some(from) = open.remove(&(node.clone(), 0)) {
                    windows.push((from, t));
                }
            }
            FaultKind::FallbackEnter => {
                open.entry((node.clone(), 1)).or_insert(t);
            }
            FaultKind::FallbackExit => {
                if let Some(from) = open.remove(&(node.clone(), 1)) {
                    windows.push((from, t));
                }
            }
            _ => {}
        }
    }
    for (_, from) in open {
        windows.push((from, u64::MAX));
    }
    windows.sort_unstable();
    // Merge overlaps.
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (from, to) in windows {
        match merged.last_mut() {
            Some((_, end)) if from <= *end => *end = (*end).max(to),
            _ => merged.push((from, to)),
        }
    }
    merged
}

/// Splits segments at fault-window boundaries; portions inside a window
/// become [`Component::Degraded`] (node attribution kept). Exact in
/// integer ns, so additivity is preserved.
fn split_degraded(segments: Vec<Segment>, windows: &[(u64, u64)]) -> Vec<Segment> {
    if windows.is_empty() {
        return segments;
    }
    let mut out = Vec::with_capacity(segments.len());
    for seg in segments {
        let (a, b) = (seg.from.as_nanos(), seg.to.as_nanos());
        let mut at = a;
        for &(wf, wt) in windows {
            if wt <= at || wf >= b {
                continue;
            }
            let from = wf.max(at);
            let to = wt.min(b);
            if from > at {
                out.push(Segment {
                    node: seg.node.clone(),
                    component: seg.component,
                    from: SimTime::from_nanos(at),
                    to: SimTime::from_nanos(from),
                });
            }
            out.push(Segment {
                node: seg.node.clone(),
                component: Component::Degraded,
                from: SimTime::from_nanos(from),
                to: SimTime::from_nanos(to),
            });
            at = to;
        }
        if at < b {
            out.push(Segment {
                node: seg.node.clone(),
                component: seg.component,
                from: SimTime::from_nanos(at),
                to: SimTime::from_nanos(b),
            });
        }
    }
    out
}

/// Per-node attributed power (W): each sampled interval's CPU+GPU power is
/// apportioned by the node's share of total node busy time in that
/// interval — the span-bounded busy integral the energy attribution
/// integrates over.
fn node_power_integrals(data: &TraceData) -> HashMap<String, RateIntegral> {
    let interval = data.sample_interval.as_nanos();
    let mut series: Vec<Vec<(u64, f64)>> = vec![Vec::new(); data.nodes.len()];
    for sample in &data.samples {
        let busy_total: f64 = sample.node_busy_frac.iter().sum();
        let watts = sample.cpu_w + sample.gpu_w;
        for (i, &frac) in sample.node_busy_frac.iter().enumerate() {
            let rate = if busy_total > 0.0 { watts * frac / busy_total } else { 0.0 };
            series[i].push((sample.time.as_nanos(), rate));
        }
    }
    data.nodes
        .iter()
        .zip(series)
        .map(|(node, s)| (node.clone(), RateIntegral::from_samples(&s, interval)))
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome-trace reconstruction (blame from an exported JSON file).

fn ns_from_ts(event: &JsonValue) -> Result<u64, String> {
    let ts = event.get("ts").and_then(JsonValue::as_f64).ok_or("event without ts")?;
    Ok((ts * 1000.0).round() as u64)
}

fn arg_str<'v>(event: &'v JsonValue, key: &str) -> Option<&'v str> {
    event.get("args")?.get(key)?.as_str()
}

fn arg_u64(event: &JsonValue, key: &str) -> Option<u64> {
    event.get("args")?.get(key)?.as_u64()
}

fn arg_f64(event: &JsonValue, key: &str) -> Option<f64> {
    event.get("args")?.get(key)?.as_f64()
}

const ALL_SOURCES: [Source; 5] =
    [Source::Lidar, Source::Camera, Source::Gnss, Source::Imu, Source::Radar];

/// Reconstructs a blame-sufficient [`TraceData`] from an exported Chrome
/// trace document: callback spans with lineage, fault instants, drop
/// instants and the metrics samples. Queue enqueue/dequeue counters are
/// not round-tripped (blame does not consume them).
pub fn trace_from_chrome(doc: &JsonValue) -> Result<TraceData, String> {
    let events_json =
        doc.get("traceEvents").and_then(JsonValue::as_array).ok_or("missing traceEvents array")?;
    let sample_interval = doc
        .get("otherData")
        .and_then(|o| o.get("sample_interval_ns"))
        .and_then(JsonValue::as_u64)
        .ok_or("missing otherData.sample_interval_ns")?;

    let mut data = TraceData {
        sample_interval: SimDuration::from_nanos(sample_interval),
        ..TraceData::default()
    };

    // In-progress metrics sample: the exporter emits qdepth*, busy*,
    // cpu_util, gpu_util then power_w per sampling tick; power_w closes
    // the block.
    let mut qdepths: Vec<u64> = Vec::new();
    let mut busy: Vec<f64> = Vec::new();
    let mut cpu_util = 0.0f64;
    let mut gpu_util = 0.0f64;
    let mut first_sample = true;

    for event in events_json {
        let ph = event.get("ph").and_then(JsonValue::as_str).ok_or("event without ph")?;
        let cat = event.get("cat").and_then(JsonValue::as_str).unwrap_or("");
        let name = event.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match (ph, cat) {
            ("M", "") if name == "thread_name" => {
                let node = arg_str(event, "name").ok_or("thread_name without name")?;
                data.nodes.push(node.to_string());
            }
            ("X", "callback") => {
                let args = event.get("args").ok_or("callback without args")?;
                let node =
                    args.get("node").and_then(JsonValue::as_str).ok_or("callback without node")?;
                let topic = args
                    .get("topic")
                    .and_then(JsonValue::as_str)
                    .ok_or("callback without topic")?;
                let arrival = arg_u64(event, "arrival_ns").ok_or("callback without arrival_ns")?;
                let started = arg_u64(event, "started_ns").ok_or("callback without started_ns")?;
                let completed =
                    arg_u64(event, "completed_ns").ok_or("callback without completed_ns")?;
                let published: Vec<String> = args
                    .get("published")
                    .and_then(JsonValue::as_array)
                    .ok_or("callback without published")?
                    .iter()
                    .filter_map(|p| p.as_str().map(str::to_string))
                    .collect();
                let mut lineage = Vec::new();
                for source in ALL_SOURCES {
                    let key = format!("lineage_{}_ns", source.name());
                    if let Some(stamp) = arg_u64(event, &key) {
                        lineage.push((source, SimTime::from_nanos(stamp)));
                    }
                }
                data.events.push(TraceEvent::Callback {
                    node: node.to_string(),
                    topic: topic.to_string(),
                    arrival: SimTime::from_nanos(arrival),
                    started: SimTime::from_nanos(started),
                    completed: SimTime::from_nanos(completed),
                    lineage,
                    published,
                });
            }
            ("i", "fault") => {
                let kind_name = arg_str(event, "kind").ok_or("fault without kind")?;
                let kind = FaultKind::parse(kind_name)
                    .ok_or_else(|| format!("unknown fault kind {kind_name:?}"))?;
                data.events.push(TraceEvent::Fault {
                    kind,
                    node: arg_str(event, "node").ok_or("fault without node")?.to_string(),
                    info: arg_str(event, "info").unwrap_or("").to_string(),
                    time: SimTime::from_nanos(ns_from_ts(event)?),
                });
            }
            ("i", "drop") => {
                data.events.push(TraceEvent::Dropped {
                    topic: arg_str(event, "topic").ok_or("drop without topic")?.to_string(),
                    node: arg_str(event, "node").ok_or("drop without node")?.to_string(),
                    depth: arg_u64(event, "depth").ok_or("drop without depth")? as usize,
                    time: SimTime::from_nanos(ns_from_ts(event)?),
                });
            }
            ("C", "metrics") => {
                if let Some(rest) = name.strip_prefix("qdepth ") {
                    if first_sample {
                        let (topic, node) =
                            rest.split_once('→').ok_or("malformed qdepth counter name")?;
                        data.subscriptions.push((topic.to_string(), node.to_string()));
                    }
                    qdepths.push(arg_u64(event, "depth").ok_or("qdepth without depth")?);
                } else if name.strip_prefix("busy ").is_some() {
                    busy.push(arg_f64(event, "frac").ok_or("busy without frac")?);
                } else if name == "cpu_util" {
                    cpu_util = arg_f64(event, "util").ok_or("cpu_util without util")?;
                } else if name == "gpu_util" {
                    gpu_util = arg_f64(event, "util").ok_or("gpu_util without util")?;
                } else if name == "power_w" {
                    data.samples.push(MetricSample {
                        time: SimTime::from_nanos(ns_from_ts(event)?),
                        queue_depths: std::mem::take(&mut qdepths),
                        node_busy_frac: std::mem::take(&mut busy),
                        cpu_util,
                        gpu_util,
                        cpu_w: arg_f64(event, "cpu").ok_or("power_w without cpu")?,
                        gpu_w: arg_f64(event, "gpu").ok_or("power_w without gpu")?,
                    });
                    first_sample = false;
                }
            }
            _ => {}
        }
    }
    Ok(data)
}

// ---------------------------------------------------------------------------
// Deterministic renderings.

/// Milliseconds with a fixed 6-digit fraction via integer math — byte
/// deterministic with no float formatting.
fn ms_fmt(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// Seconds with a fixed 9-digit fraction via integer math.
fn sec_fmt(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// Renders the per-instance decomposition CSV: one row per path instance,
/// byte-deterministic.
pub fn render_blame_csv(report: &BlameReport) -> String {
    let mut out = String::from(
        "path,seq,origin_s,completed_s,total_ms,compute_ms,queue_wait_ms,transport_ms,\
         alignment_ms,degraded_ms,dominant,top_node,top_node_share,energy_mj\n",
    );
    for path in &report.paths {
        for inst in &path.instances {
            let c = inst.component_ns();
            let (top, share) = inst.top_node().unwrap_or(("-".to_string(), 0.0));
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                path.name,
                inst.seq,
                sec_fmt(inst.origin.as_nanos()),
                sec_fmt(inst.completed.as_nanos()),
                ms_fmt(inst.total_ns()),
                ms_fmt(c[0]),
                ms_fmt(c[1]),
                ms_fmt(c[2]),
                ms_fmt(c[3]),
                ms_fmt(c[4]),
                inst.dominant().name(),
                top,
                share,
                inst.energy_mj(),
            );
        }
    }
    out
}

/// Renders the per-path summary CSV — the E-blame study's rows. The
/// optional `label` column carries the sweep point's knobs.
pub fn render_paths_csv(report: &BlameReport, label: &str) -> String {
    let mut out = String::from(
        "label,path,instances,mean_ms,p50_ms,p99_ms,max_ms,queue_share_mean,queue_share_p50,\
         queue_share_p99,align_share_p99,degraded_share_p99,dominant,top_node_p99,\
         top_node_p99_share,top_energy_node,top_energy_mj\n",
    );
    for path in &report.paths {
        let dist = path.latency_distribution();
        let s = dist.summary();
        let shares = path.mean_component_share();
        let hist = path.dominant_histogram();
        let dominant =
            Component::ALL.into_iter().max_by_key(|c| hist[c.idx()]).unwrap_or(Component::Compute);
        let (top_node, top_share) = path
            .instance_at_percentile(99.0)
            .and_then(PathInstance::top_node)
            .unwrap_or(("-".to_string(), 0.0));
        let (energy_node, energy_mj) = path
            .mean_energy_mj_by_node()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap_or(("-".to_string(), 0.0));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            label,
            path.name,
            path.instances.len(),
            s.mean,
            s.median,
            s.p99,
            s.max,
            shares[Component::QueueWait.idx()],
            path.component_share_at(50.0, Component::QueueWait),
            path.component_share_at(99.0, Component::QueueWait),
            path.component_share_at(99.0, Component::Alignment),
            path.component_share_at(99.0, Component::Degraded),
            dominant.name(),
            top_node,
            top_share,
            energy_node,
            energy_mj,
        );
    }
    out
}

/// Renders a human-readable blame summary for stdout.
pub fn render_blame_summary(report: &BlameReport) -> String {
    let mut out = String::new();
    for path in &report.paths {
        let dist = path.latency_distribution();
        let s = dist.summary();
        let _ = writeln!(
            out,
            "path {} ({} ← {}): n={} mean={:.2} p50={:.2} p99={:.2} max={:.2} ms",
            path.name,
            path.sink_node,
            path.source.name(),
            s.count,
            s.mean,
            s.median,
            s.p99,
            s.max
        );
        if path.instances.is_empty() {
            continue;
        }
        let shares = path.mean_component_share();
        let mut line = String::from("  mean shares:");
        for c in Component::ALL {
            let _ = write!(line, " {} {:.1}%", c.name(), shares[c.idx()] * 100.0);
        }
        let _ = writeln!(out, "{line}");
        for (tag, p) in [("p50", 50.0), ("p99", 99.0), ("max", 100.0)] {
            if let Some(inst) = path.instance_at_percentile(p) {
                let c = inst.component_ns();
                let total = inst.total_ns().max(1);
                let (top, share) = inst.top_node().unwrap_or(("-".to_string(), 0.0));
                let _ = writeln!(
                    out,
                    "  {tag} instance: {:.2} ms — compute {:.1}% queue {:.1}% align {:.1}% \
                     degraded {:.1}%; top blame {} ({:.1}%)",
                    inst.total_ms(),
                    c[0] as f64 / total as f64 * 100.0,
                    c[1] as f64 / total as f64 * 100.0,
                    c[3] as f64 / total as f64 * 100.0,
                    c[4] as f64 / total as f64 * 100.0,
                    top,
                    share * 100.0
                );
            }
        }
        let hist = path.dominant_histogram();
        let mut line = String::from("  dominant histogram:");
        for c in Component::ALL {
            if hist[c.idx()] > 0 {
                let _ = write!(line, " {} {}", c.name(), hist[c.idx()]);
            }
        }
        let _ = writeln!(out, "{line}");
        for (node, (count, ns)) in path.edge_slack() {
            let _ = writeln!(
                out,
                "  slack at {node}: mean {:.2} ms over {count} waits",
                ns as f64 / count.max(1) as f64 / 1e6
            );
        }
        let energy = path.mean_energy_mj_by_node();
        if !energy.is_empty() {
            let mut line = String::from("  energy/frame (mJ):");
            let mut items: Vec<_> = energy.into_iter().collect();
            items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for (node, mj) in items.into_iter().take(4) {
                let _ = write!(line, " {node} {mj:.1}");
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// Renders the Perfetto-compatible critical-path highlight track: for each
/// path, the p50/p99/max instances' chains as slices on dedicated threads,
/// one slice per segment named `<component>:<node>`. Loads standalone or
/// merged alongside the main trace (distinct pid).
pub fn render_blame_track(run: &str, report: &BlameReport) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{{\"name\":\"blame {}\"}}}}",
        crate::export::escape(run)
    ));
    let mut tid = 0usize;
    for path in &report.paths {
        for (tag, p) in [("p50", 50.0), ("p99", 99.0), ("max", 100.0)] {
            let Some(inst) = path.instance_at_percentile(p) else { continue };
            tid += 1;
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{tid},\"args\":{{\"name\":\"{}:{tag}\"}}}}",
                crate::export::escape(&path.name)
            ));
            for seg in &inst.segments {
                events.push(format!(
                    "{{\"name\":\"{}:{}\",\"cat\":\"blame\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":2,\"tid\":{tid},\"args\":{{\"node\":\"{}\",\"component\":\"{}\",\"instance\":\"{tag}\",\"path\":\"{}\"}}}}",
                    seg.component.name(),
                    crate::export::escape(&seg.node),
                    crate::export::ts_us(seg.from),
                    crate::export::dur_us(seg.to.saturating_since(seg.from)),
                    crate::export::escape(&seg.node),
                    seg.component.name(),
                    crate::export::escape(&path.name),
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"run\":\"");
    out.push_str(&crate::export::escape(run));
    out.push_str("\",\"kind\":\"blame_track\"},\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cb(
        node: &str,
        topic: &str,
        arrival_ms: u64,
        started_ms: u64,
        completed_ms: u64,
        lineage: Vec<(Source, u64)>,
        published: Vec<&str>,
    ) -> TraceEvent {
        TraceEvent::Callback {
            node: node.to_string(),
            topic: topic.to_string(),
            arrival: SimTime::from_millis(arrival_ms),
            started: SimTime::from_millis(started_ms),
            completed: SimTime::from_millis(completed_ms),
            lineage: lineage.into_iter().map(|(s, ms)| (s, SimTime::from_millis(ms))).collect(),
            published: published.into_iter().map(str::to_string).collect(),
        }
    }

    fn spec(name: &str, sink: &str, source: Source) -> BlamePathSpec {
        BlamePathSpec::new(name, sink, source)
    }

    /// lidar@100 → filter (wait 10, compute 40) → sink (wait 0, compute 30).
    fn linear_chain() -> TraceData {
        TraceData {
            nodes: vec!["filter".to_string(), "sink".to_string()],
            events: vec![
                cb("filter", "/raw", 100, 110, 150, vec![(Source::Lidar, 100)], vec!["/mid"]),
                cb("sink", "/mid", 150, 150, 180, vec![(Source::Lidar, 100)], vec!["/out"]),
            ],
            ..TraceData::default()
        }
    }

    #[test]
    fn linear_chain_decomposes_exactly() {
        let report = analyze_blame(&linear_chain(), &[spec("p", "sink", Source::Lidar)]).unwrap();
        let path = &report.paths[0];
        assert_eq!(path.instances.len(), 1);
        let inst = &path.instances[0];
        assert_eq!(inst.total_ns(), 80_000_000);
        assert_eq!(inst.components_sum_ns(), inst.total_ns());
        let c = inst.component_ns();
        assert_eq!(c[Component::Compute.idx()], 70_000_000, "40 + 30 ms compute");
        assert_eq!(c[Component::QueueWait.idx()], 10_000_000, "10 ms wait at filter");
        assert_eq!(c[Component::Transport.idx()], 0);
        assert_eq!(c[Component::Alignment.idx()], 0);
        assert_eq!(inst.dominant(), Component::Compute);
        let nodes = inst.node_ns();
        assert_eq!(nodes["filter"], 50_000_000);
        assert_eq!(nodes["sink"], 30_000_000);
        // Node shares sum to the whole.
        assert_eq!(nodes.values().sum::<u64>(), inst.total_ns());
        assert_eq!(inst.total_ms(), 80.0);
    }

    #[test]
    fn fusion_cache_becomes_alignment() {
        // camera@90 → vision publishes objects at 120; fusion caches them
        // (aux callback 120..121), then a lidar trigger at 160 fuses and
        // publishes at 170 with the camera stamp from the cache.
        let data = TraceData {
            nodes: vec!["vision".to_string(), "fusion".to_string()],
            events: vec![
                cb("vision", "/image", 90, 90, 120, vec![(Source::Camera, 90)], vec!["/vobj"]),
                cb("fusion", "/vobj", 120, 120, 121, vec![(Source::Camera, 90)], vec![]),
                cb(
                    "fusion",
                    "/lobj",
                    160,
                    160,
                    170,
                    vec![(Source::Lidar, 150), (Source::Camera, 90)],
                    vec!["/fused"],
                ),
            ],
            ..TraceData::default()
        };
        let report = analyze_blame(&data, &[spec("cam", "fusion", Source::Camera)]).unwrap();
        let inst = &report.paths[0].instances[0];
        assert_eq!(inst.total_ns(), 80_000_000, "90 → 170 ms");
        assert_eq!(inst.components_sum_ns(), inst.total_ns());
        let c = inst.component_ns();
        // vision compute 30 + intake compute 1 + fuse compute 10.
        assert_eq!(c[Component::Compute.idx()], 41_000_000);
        // Cache wait 121 → 160.
        assert_eq!(c[Component::Alignment.idx()], 39_000_000);
        let slack = report.paths[0].edge_slack();
        assert_eq!(slack["fusion"], (1, 39_000_000));
    }

    #[test]
    fn missing_carrier_is_a_broken_chain() {
        // Sink claims a camera stamp that never entered through any
        // recorded callback.
        let data = TraceData {
            nodes: vec!["sink".to_string()],
            events: vec![cb(
                "sink",
                "/in",
                200,
                200,
                210,
                vec![(Source::Camera, 50)],
                vec!["/out"],
            )],
            ..TraceData::default()
        };
        // The sensor edge rescues stamp <= arrival... stamp 50 < arrival
        // 200 means the sensor published at 50 but nothing carried it —
        // still attributable as sensor transport. A stamp *after* the
        // arrival is impossible and must error.
        let ok = analyze_blame(&data, &[spec("cam", "sink", Source::Camera)]).unwrap();
        assert_eq!(ok.paths[0].instances.len(), 1);
        let data_bad = TraceData {
            nodes: vec!["sink".to_string()],
            events: vec![cb(
                "sink",
                "/in",
                200,
                200,
                210,
                vec![(Source::Camera, 205)],
                vec!["/out"],
            )],
            ..TraceData::default()
        };
        assert!(analyze_blame(&data_bad, &[spec("cam", "sink", Source::Camera)]).is_err());
    }

    #[test]
    fn fault_window_reclassifies_as_degraded() {
        let mut data = linear_chain();
        data.events.insert(
            0,
            TraceEvent::Fault {
                kind: FaultKind::Crash,
                node: "other".to_string(),
                info: String::new(),
                time: SimTime::from_millis(120),
            },
        );
        data.events.push(TraceEvent::Fault {
            kind: FaultKind::Restart,
            node: "other".to_string(),
            info: String::new(),
            time: SimTime::from_millis(160),
        });
        let report = analyze_blame(&data, &[spec("p", "sink", Source::Lidar)]).unwrap();
        let inst = &report.paths[0].instances[0];
        assert_eq!(inst.components_sum_ns(), inst.total_ns(), "split keeps additivity");
        let c = inst.component_ns();
        assert_eq!(c[Component::Degraded.idx()], 40_000_000, "120 → 160 ms window");
        // 30 ms of filter compute + 10 of sink compute reclassified.
        assert_eq!(c[Component::Compute.idx()], 30_000_000);
    }

    #[test]
    fn energy_attribution_integrates_power_over_compute_spans() {
        let mut data = linear_chain();
        data.sample_interval = SimDuration::from_millis(100);
        // One interval (100, 200] ms: 10 W total, filter busy 0.4 of it,
        // sink 0.1 → filter gets 8 W, sink 2 W while executing.
        data.samples = vec![MetricSample {
            time: SimTime::from_millis(200),
            queue_depths: vec![],
            node_busy_frac: vec![0.4, 0.1],
            cpu_util: 0.5,
            gpu_util: 0.0,
            cpu_w: 10.0,
            gpu_w: 0.0,
        }];
        let report = analyze_blame(&data, &[spec("p", "sink", Source::Lidar)]).unwrap();
        let inst = &report.paths[0].instances[0];
        // filter computes 40 ms at 8 W = 320 mJ; sink 30 ms at 2 W = 60 mJ.
        assert!((inst.energy_mj_by_node["filter"] - 320.0).abs() < 1e-9);
        assert!((inst.energy_mj_by_node["sink"] - 60.0).abs() < 1e-9);
        assert!((inst.energy_mj() - 380.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_instances_and_histogram() {
        let mut events = Vec::new();
        // 10 instances with totals 10, 20, ..., 100 ms; the largest is
        // queue-dominated, the rest compute-dominated.
        for i in 0..10u64 {
            let stamp = 1000 * i;
            let wait = if i == 9 { 80 } else { 2 };
            events.push(cb(
                "sink",
                "/raw",
                stamp,
                stamp + wait,
                stamp + 10 * (i + 1),
                vec![(Source::Lidar, stamp)],
                vec!["/out"],
            ));
        }
        let data = TraceData { nodes: vec!["sink".to_string()], events, ..TraceData::default() };
        let report = analyze_blame(&data, &[spec("p", "sink", Source::Lidar)]).unwrap();
        let path = &report.paths[0];
        let p50 = path.instance_at_percentile(50.0).unwrap();
        let p99 = path.instance_at_percentile(99.0).unwrap();
        assert!(p50.total_ns() < p99.total_ns());
        assert_eq!(p99.total_ns(), 100_000_000);
        assert_eq!(p99.dominant(), Component::QueueWait);
        let hist = path.dominant_histogram();
        assert_eq!(hist[Component::Compute.idx()], 9);
        assert_eq!(hist[Component::QueueWait.idx()], 1);
        // The tail's queue share exceeds the median's: the Finding-1 shape.
        assert!(
            path.component_share_at(99.0, Component::QueueWait)
                > path.component_share_at(50.0, Component::QueueWait)
        );
        // The distribution recomputed from components matches the raw
        // latencies bit-exactly.
        let d = path.latency_distribution();
        assert_eq!(d.summary().max, 100.0);
    }

    #[test]
    fn chrome_roundtrip_preserves_blame_bytes() {
        let mut data = linear_chain();
        data.sample_interval = SimDuration::from_millis(100);
        data.subscriptions = vec![("/raw".to_string(), "filter".to_string())];
        data.samples = vec![MetricSample {
            time: SimTime::from_millis(200),
            queue_depths: vec![1],
            node_busy_frac: vec![0.4, 0.1],
            cpu_util: 0.5,
            gpu_util: 0.25,
            cpu_w: 10.0,
            gpu_w: 2.5,
        }];
        data.events.push(TraceEvent::Fault {
            kind: FaultKind::Crash,
            node: "other".to_string(),
            info: "x".to_string(),
            time: SimTime::from_millis(500),
        });
        let json = crate::export::render_chrome_trace("t", &data);
        let parsed = crate::json::parse(&json).unwrap();
        let rebuilt = trace_from_chrome(&parsed).unwrap();
        assert_eq!(rebuilt.nodes, data.nodes);
        assert_eq!(rebuilt.subscriptions, data.subscriptions);
        assert_eq!(rebuilt.samples, data.samples);
        let specs = [spec("p", "sink", Source::Lidar)];
        let direct = analyze_blame(&data, &specs).unwrap();
        let roundtrip = analyze_blame(&rebuilt, &specs).unwrap();
        assert_eq!(render_blame_csv(&direct), render_blame_csv(&roundtrip));
        assert_eq!(render_blame_track("t", &direct), render_blame_track("t", &roundtrip));
        assert_eq!(render_paths_csv(&direct, "l"), render_paths_csv(&roundtrip, "l"));
    }

    #[test]
    fn renders_are_deterministic_and_parse() {
        let report = analyze_blame(&linear_chain(), &[spec("p", "sink", Source::Lidar)]).unwrap();
        let csv = render_blame_csv(&report);
        assert_eq!(csv, render_blame_csv(&report));
        assert!(csv.starts_with("path,seq,origin_s"));
        assert!(csv.contains("p,0,0.100000000,0.180000000,80.000000,70.000000,10.000000"));
        let track = render_blame_track("run", &report);
        crate::json::parse(&track).expect("track is valid JSON");
        assert!(track.contains("\"compute:sink\""));
        let summary = render_blame_summary(&report);
        assert!(summary.contains("path p"));
    }
}
