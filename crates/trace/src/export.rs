//! Rendering a [`TraceData`] into Chrome trace-event JSON and a metrics
//! CSV.
//!
//! The JSON follows the Trace Event Format's JSON-array flavour and loads
//! in Perfetto or `chrome://tracing`: each node is a named thread; every
//! callback renders as a `wait:` slice (arrival → start) followed by a
//! processing slice (start → complete); lineage renders as flow arrows;
//! drops as instants; queue depth, busy fraction, utilization and power as
//! counter tracks. All numbers are formatted with integer arithmetic (µs
//! with fixed nanosecond fraction) or Rust's shortest-roundtrip `f64`
//! display, so the bytes are a pure function of the [`TraceData`].

use crate::{MetricSample, TraceData, TraceEvent};
use av_des::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Microseconds with a fixed 3-digit nanosecond fraction, via integer math
/// (no float formatting in timestamps).
pub(crate) fn ts_us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

pub(crate) fn dur_us(d: SimDuration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes a string for a JSON literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one [`TraceEvent`] as a single JSON object line (no trailing
/// newline) — the incremental-streaming sibling of
/// [`render_chrome_trace`], used by the scenario service to ship events
/// while a run is still executing. All timestamps are integer
/// nanoseconds, so the bytes are a pure function of the event.
pub fn render_event_jsonl(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Callback { node, topic, arrival, started, completed, lineage, published } => {
            let lineage: Vec<String> = lineage
                .iter()
                .map(|&(source, stamp)| format!("[\"{}\",{}]", source.name(), stamp.as_nanos()))
                .collect();
            let published: Vec<String> =
                published.iter().map(|t| format!("\"{}\"", escape(t))).collect();
            format!(
                "{{\"ev\":\"callback\",\"node\":\"{}\",\"topic\":\"{}\",\"arrival_ns\":{},\
                 \"started_ns\":{},\"completed_ns\":{},\"lineage\":[{}],\"published\":[{}]}}",
                escape(node),
                escape(topic),
                arrival.as_nanos(),
                started.as_nanos(),
                completed.as_nanos(),
                lineage.join(","),
                published.join(",")
            )
        }
        TraceEvent::Enqueued { topic, node, depth, time } => {
            queue_jsonl("enqueued", topic, node, *depth, *time)
        }
        TraceEvent::Dequeued { topic, node, depth, time } => {
            queue_jsonl("dequeued", topic, node, *depth, *time)
        }
        TraceEvent::Dropped { topic, node, depth, time } => {
            queue_jsonl("dropped", topic, node, *depth, *time)
        }
        TraceEvent::Fault { kind, node, info, time } => format!(
            "{{\"ev\":\"fault\",\"kind\":\"{}\",\"node\":\"{}\",\"info\":\"{}\",\"time_ns\":{}}}",
            kind.name(),
            escape(node),
            escape(info),
            time.as_nanos()
        ),
        TraceEvent::SchedDecision { node, topic, considered, key, time } => format!(
            "{{\"ev\":\"sched\",\"node\":\"{}\",\"topic\":\"{}\",\"considered\":{considered},\
             \"key\":{key},\"time_ns\":{}}}",
            escape(node),
            escape(topic),
            time.as_nanos()
        ),
    }
}

fn queue_jsonl(ev: &str, topic: &str, node: &str, depth: usize, time: SimTime) -> String {
    format!(
        "{{\"ev\":\"{ev}\",\"topic\":\"{}\",\"node\":\"{}\",\"depth\":{depth},\"time_ns\":{}}}",
        escape(topic),
        escape(node),
        time.as_nanos()
    )
}

/// Flow-event id: the acquisition stamp is unique per sensor firing, so
/// `stamp × 8 + source_code` is collision-free and deterministic.
fn flow_id(source: av_ros::Source, stamp: SimTime) -> u64 {
    stamp.as_nanos() * 8 + source.code()
}

struct FlowEvent {
    id: u64,
    source_name: &'static str,
    ts: String,
    tid: usize,
}

/// Renders the Chrome trace-event JSON for one run.
pub fn render_chrome_trace(run: &str, data: &TraceData) -> String {
    let tid_of: HashMap<&str, usize> =
        data.nodes.iter().enumerate().map(|(i, n)| (n.as_str(), i + 1)).collect();
    let tid = |node: &str| tid_of.get(node).copied().unwrap_or(0);

    let mut events: Vec<String> = Vec::new();

    // Thread-name metadata: one named track per node, in registration
    // order.
    for (i, node) in data.nodes.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            escape(node)
        ));
    }

    // Flow arrows are collected first, then the terminal step of each flow
    // is re-labelled "f" (an arrow needs both ends); single-occurrence
    // flows are omitted.
    let mut flows: Vec<FlowEvent> = Vec::new();
    let mut flow_counts: HashMap<u64, usize> = HashMap::new();

    for event in &data.events {
        match event {
            TraceEvent::Callback {
                node,
                topic,
                arrival,
                started,
                completed,
                lineage,
                published,
            } => {
                let t = tid(node);
                let wait = started.saturating_since(*arrival);
                if !wait.is_zero() {
                    events.push(format!(
                        "{{\"name\":\"wait:{}\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                        escape(topic),
                        ts_us(*arrival),
                        dur_us(wait),
                        t
                    ));
                }
                let mut args = format!(
                    "\"node\":\"{}\",\"topic\":\"{}\",\"arrival_ns\":{},\"started_ns\":{},\"completed_ns\":{}",
                    escape(node),
                    escape(topic),
                    arrival.as_nanos(),
                    started.as_nanos(),
                    completed.as_nanos()
                );
                let _ = write!(
                    args,
                    ",\"published\":[{}]",
                    published
                        .iter()
                        .map(|p| format!("\"{}\"", escape(p)))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                for &(source, stamp) in lineage {
                    let _ = write!(args, ",\"lineage_{}_ns\":{}", source.name(), stamp.as_nanos());
                }
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"callback\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    escape(topic),
                    ts_us(*started),
                    dur_us(completed.saturating_since(*started)),
                    t,
                    args
                ));
                for &(source, stamp) in lineage {
                    let id = flow_id(source, stamp);
                    *flow_counts.entry(id).or_insert(0) += 1;
                    flows.push(FlowEvent {
                        id,
                        source_name: source.name(),
                        ts: ts_us(*started),
                        tid: t,
                    });
                }
            }
            TraceEvent::Enqueued { topic, node, depth, time }
            | TraceEvent::Dequeued { topic, node, depth, time } => {
                events.push(format!(
                    "{{\"name\":\"q {}\\u2192{}\",\"cat\":\"queue\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"depth\":{}}}}}",
                    escape(topic),
                    escape(node),
                    ts_us(*time),
                    depth
                ));
            }
            TraceEvent::Dropped { topic, node, depth, time } => {
                events.push(format!(
                    "{{\"name\":\"drop:{}\",\"cat\":\"drop\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"node\":\"{}\",\"topic\":\"{}\",\"depth\":{}}}}}",
                    escape(topic),
                    ts_us(*time),
                    tid(node),
                    escape(node),
                    escape(topic),
                    depth
                ));
                events.push(format!(
                    "{{\"name\":\"q {}\\u2192{}\",\"cat\":\"queue\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"depth\":{}}}}}",
                    escape(topic),
                    escape(node),
                    ts_us(*time),
                    depth
                ));
            }
            TraceEvent::Fault { kind, node, info, time } => {
                events.push(format!(
                    "{{\"name\":\"fault:{}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"kind\":\"{}\",\"node\":\"{}\",\"info\":\"{}\"}}}}",
                    kind.name(),
                    ts_us(*time),
                    tid(node),
                    kind.name(),
                    escape(node),
                    escape(info)
                ));
            }
            TraceEvent::SchedDecision { node, topic, considered, key, time } => {
                events.push(format!(
                    "{{\"name\":\"sched:{}\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"node\":\"{}\",\"topic\":\"{}\",\"considered\":{},\"key\":{}}}}}",
                    escape(topic),
                    ts_us(*time),
                    tid(node),
                    escape(node),
                    escape(topic),
                    considered,
                    key
                ));
            }
        }
    }

    // Flow events: first occurrence starts the flow, the last finishes it,
    // anything in between is a step.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for flow in &flows {
        let total = flow_counts[&flow.id];
        if total < 2 {
            continue;
        }
        let ordinal = {
            let slot = seen.entry(flow.id).or_insert(0);
            *slot += 1;
            *slot
        };
        let (ph, bind) = if ordinal == 1 {
            ("s", "")
        } else if ordinal == total {
            ("f", ",\"bp\":\"e\"")
        } else {
            ("t", "")
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"lineage\",\"ph\":\"{}\",\"id\":{},\"ts\":{},\"pid\":1,\"tid\":{}{}}}",
            flow.source_name, ph, flow.id, flow.ts, flow.tid, bind
        ));
    }

    // Metrics counters.
    for sample in &data.samples {
        let ts = ts_us(sample.time);
        for (i, (topic, node)) in data.subscriptions.iter().enumerate() {
            events.push(format!(
                "{{\"name\":\"qdepth {}\\u2192{}\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"depth\":{}}}}}",
                escape(topic),
                escape(node),
                ts,
                sample.queue_depths[i]
            ));
        }
        for (i, node) in data.nodes.iter().enumerate() {
            events.push(format!(
                "{{\"name\":\"busy {}\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"frac\":{}}}}}",
                escape(node),
                ts,
                sample.node_busy_frac[i]
            ));
        }
        events.push(format!(
            "{{\"name\":\"cpu_util\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"util\":{}}}}}",
            ts, sample.cpu_util
        ));
        events.push(format!(
            "{{\"name\":\"gpu_util\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"util\":{}}}}}",
            ts, sample.gpu_util
        ));
        events.push(format!(
            "{{\"name\":\"power_w\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"cpu\":{},\"gpu\":{}}}}}",
            ts, sample.cpu_w, sample.gpu_w
        ));
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"run\":\"");
    out.push_str(&escape(run));
    let _ = write!(
        out,
        "\",\"sample_interval_ns\":{},\"nodes\":{}",
        data.sample_interval.as_nanos(),
        data.nodes.len()
    );
    // Run-header policy field: present exactly when the run executed
    // under a non-FIFO scheduling policy, so FIFO exports keep their
    // pre-policy bytes. `trace_report --verify` fails loudly on traces
    // with sched events but no policy header.
    if let Some(policy) = &data.policy {
        let _ = write!(out, ",\"sched_policy\":\"{}\"", escape(policy));
    }
    out.push_str("},\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders the metrics time series as CSV: one row per sample, columns for
/// utilization, power, per-node busy fraction and per-subscription queue
/// depth.
pub fn render_metrics_csv(data: &TraceData) -> String {
    let mut out = String::from("time_s,cpu_util,gpu_util,cpu_w,gpu_w");
    for node in &data.nodes {
        let _ = write!(out, ",busy:{node}");
    }
    for (topic, node) in &data.subscriptions {
        let _ = write!(out, ",qdepth:{topic}:{node}");
    }
    out.push('\n');
    for sample in &data.samples {
        render_csv_row(&mut out, sample);
    }
    out
}

fn render_csv_row(out: &mut String, sample: &MetricSample) {
    let ns = sample.time.as_nanos();
    let _ = write!(
        out,
        "{}.{:09},{},{},{},{}",
        ns / 1_000_000_000,
        ns % 1_000_000_000,
        sample.cpu_util,
        sample.gpu_util,
        sample.cpu_w,
        sample.gpu_w
    );
    for frac in &sample.node_busy_frac {
        let _ = write!(out, ",{frac}");
    }
    for depth in &sample.queue_depths {
        let _ = write!(out, ",{depth}");
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_ros::Source;

    fn sample_data() -> TraceData {
        TraceData {
            sample_interval: SimDuration::from_millis(100),
            nodes: vec!["ndt".to_string(), "vision".to_string()],
            subscriptions: vec![("/points_raw".to_string(), "ndt".to_string())],
            events: vec![
                TraceEvent::Callback {
                    node: "ndt".to_string(),
                    topic: "/points_raw".to_string(),
                    arrival: SimTime::from_millis(100),
                    started: SimTime::from_millis(110),
                    completed: SimTime::from_millis(150),
                    lineage: vec![(Source::Lidar, SimTime::from_millis(100))],
                    published: vec!["/pose".to_string()],
                },
                TraceEvent::Dropped {
                    topic: "/points_raw".to_string(),
                    node: "ndt".to_string(),
                    depth: 1,
                    time: SimTime::from_millis(200),
                },
                TraceEvent::Callback {
                    node: "vision".to_string(),
                    topic: "/pose".to_string(),
                    arrival: SimTime::from_millis(150),
                    started: SimTime::from_millis(150),
                    completed: SimTime::from_millis(180),
                    lineage: vec![(Source::Lidar, SimTime::from_millis(100))],
                    published: vec![],
                },
            ],
            samples: vec![MetricSample {
                time: SimTime::from_millis(100),
                queue_depths: vec![0],
                node_busy_frac: vec![0.25, 0.5],
                cpu_util: 0.4,
                gpu_util: 0.1,
                cpu_w: 50.0,
                gpu_w: 20.5,
            }],
            policy: None,
        }
    }

    #[test]
    fn chrome_trace_structure() {
        let json = render_chrome_trace("smoke", &sample_data());
        // Parses with our own reader.
        let value = crate::json::parse(&json).expect("valid JSON");
        let events = value.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Wait slice visible (10 ms of queue wait on the first callback).
        assert!(json.contains("\"wait:/points_raw\""));
        // Flow pair: Lidar stamp appears on two callbacks → s + f.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        // Drop instant.
        assert!(json.contains("\"cat\":\"drop\""));
        // Timestamps are µs with ns fraction: 100 ms → 100000.000.
        assert!(json.contains("\"ts\":100000.000"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let data = sample_data();
        assert_eq!(render_chrome_trace("smoke", &data), render_chrome_trace("smoke", &data));
        assert_eq!(render_metrics_csv(&data), render_metrics_csv(&data));
    }

    #[test]
    fn csv_rows_match_samples() {
        let csv = render_metrics_csv(&sample_data());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "time_s,cpu_util,gpu_util,cpu_w,gpu_w,busy:ndt,busy:vision,qdepth:/points_raw:ndt"
        );
        assert_eq!(lines[1], "0.100000000,0.4,0.1,50,20.5,0.25,0.5,0");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("plain"), "plain");
    }
}
