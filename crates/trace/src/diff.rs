//! Trace diffing: regression hunting on the timeline.
//!
//! Two exported traces of "the same" workload — before/after a code
//! change, or two points of a parameter sweep — are aligned by node name
//! and by lineage-anchored computation path, and compared at the
//! distribution level: per-node latency shifts, drops that appeared or
//! vanished, and queue-depth divergence. Identity is exact (bit-level
//! sample equality), so a self-diff reports **zero** differences and any
//! behavioural change — one extra drop, one nanosecond of latency —
//! registers. This is the ROADMAP's "trace-diffing between runs"
//! workload: point it at a nightly trace and yesterday's golden one and
//! the regression's location falls out of the table.

use crate::analysis::{QueueStat, TraceReport};
use crate::blame::{BlameReport, Component};
use av_profiling::{Distribution, Table};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A latency-distribution comparison for one aligned entity (node or
/// path).
#[derive(Debug, Clone, PartialEq)]
pub struct DistShift {
    /// Node or path name.
    pub name: String,
    /// Sample counts on each side.
    pub count: (usize, usize),
    /// Mean latency on each side, ms.
    pub mean_ms: (f64, f64),
    /// p99 latency on each side, ms.
    pub p99_ms: (f64, f64),
    /// `true` when the sample vectors are bit-identical.
    pub identical: bool,
}

impl DistShift {
    fn compare(name: &str, a: Option<&Distribution>, b: Option<&Distribution>) -> DistShift {
        let empty = Distribution::new();
        let a = a.unwrap_or(&empty);
        let b = b.unwrap_or(&empty);
        let (sa, sb) = (a.summary(), b.summary());
        DistShift {
            name: name.to_string(),
            count: (sa.count, sb.count),
            mean_ms: (sa.mean, sb.mean),
            p99_ms: (sa.p99, sb.p99),
            identical: a.samples() == b.samples(),
        }
    }

    /// Mean shift `b − a`, ms.
    pub fn mean_delta(&self) -> f64 {
        self.mean_ms.1 - self.mean_ms.0
    }

    /// p99 shift `b − a`, ms.
    pub fn p99_delta(&self) -> f64 {
        self.p99_ms.1 - self.p99_ms.0
    }
}

/// A `(topic, node)` subscription whose drop count differs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropChange {
    /// Topic name.
    pub topic: String,
    /// Subscribing node.
    pub node: String,
    /// Drop counts on each side.
    pub count: (u64, u64),
}

impl DropChange {
    /// `true` when side B drops where side A did not at all.
    pub fn is_new(&self) -> bool {
        self.count.0 == 0 && self.count.1 > 0
    }

    /// `true` when side A's drops vanished entirely on side B.
    pub fn is_vanished(&self) -> bool {
        self.count.0 > 0 && self.count.1 == 0
    }
}

/// A `(topic, node)` subscription whose queue occupancy differs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueChange {
    /// Topic name.
    pub topic: String,
    /// Subscribing node.
    pub node: String,
    /// Queue statistics on each side.
    pub stat: (QueueStat, QueueStat),
}

/// A `(fault kind, node)` pair whose event count differs — a faulted run
/// diffed against a clean one shows every injection/supervision event as
/// a change here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultChange {
    /// Fault kind name (`crash`, `restart`, …).
    pub kind: String,
    /// Affected node.
    pub node: String,
    /// Event counts on each side.
    pub count: (u64, u64),
}

/// Default blame-share movement that counts as a composition shift
/// (5 percentage points of a path's total time).
pub const BLAME_SHIFT_EPSILON: f64 = 0.05;

/// A critical-path composition shift for one path: the *shape* of where
/// its time goes changed, even if the total barely moved.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameShift {
    /// Path name.
    pub path: String,
    /// Dominant component name on each side (by instance histogram).
    pub dominant: (String, String),
    /// Nodes whose mean blame share moved more than epsilon:
    /// `(node, share A, share B)`.
    pub moved_nodes: Vec<(String, f64, f64)>,
}

impl BlameShift {
    /// `true` when the dominant component itself changed.
    pub fn dominant_changed(&self) -> bool {
        self.dominant.0 != self.dominant.1
    }
}

/// Compares two blame attributions path-by-path and reports composition
/// shifts: a changed dominant component, or any node whose mean blame
/// share moved more than `epsilon`. Paths with no instances on either
/// side are skipped.
pub fn diff_blame(a: &BlameReport, b: &BlameReport, epsilon: f64) -> Vec<BlameShift> {
    let mut names: Vec<&str> = a.paths.iter().map(|p| p.name.as_str()).collect();
    for p in &b.paths {
        if !names.contains(&p.name.as_str()) {
            names.push(&p.name);
        }
    }
    let dominant_of = |report: &BlameReport, name: &str| -> Option<&'static str> {
        let path = report.path(name)?;
        if path.instances.is_empty() {
            return None;
        }
        let hist = path.dominant_histogram();
        Component::ALL.into_iter().max_by_key(|c| hist[c.idx()]).map(Component::name)
    };
    let mut shifts = Vec::new();
    for name in names {
        let da = dominant_of(a, name);
        let db = dominant_of(b, name);
        if da.is_none() && db.is_none() {
            continue;
        }
        let shares_a = a.path(name).map(|p| p.mean_node_share()).unwrap_or_default();
        let shares_b = b.path(name).map(|p| p.mean_node_share()).unwrap_or_default();
        let nodes: BTreeSet<&String> = shares_a.keys().chain(shares_b.keys()).collect();
        let moved_nodes: Vec<(String, f64, f64)> = nodes
            .into_iter()
            .filter_map(|node| {
                let sa = shares_a.get(node).copied().unwrap_or(0.0);
                let sb = shares_b.get(node).copied().unwrap_or(0.0);
                ((sb - sa).abs() > epsilon).then(|| (node.clone(), sa, sb))
            })
            .collect();
        let dominant = (da.unwrap_or("-").to_string(), db.unwrap_or("-").to_string());
        if dominant.0 != dominant.1 || !moved_nodes.is_empty() {
            shifts.push(BlameShift { path: name.to_string(), dominant, moved_nodes });
        }
    }
    shifts
}

/// The full comparison of two trace reports.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Total callback slices on each side.
    pub callbacks: (usize, usize),
    /// Per-node latency comparison, over the union of node names.
    pub nodes: Vec<DistShift>,
    /// Per-path latency comparison, in spec order.
    pub paths: Vec<DistShift>,
    /// Subscriptions whose drop counts differ (only differing ones).
    pub drop_changes: Vec<DropChange>,
    /// Subscriptions whose queue occupancy differs (only differing ones).
    pub queue_changes: Vec<QueueChange>,
    /// Fault/supervision event counts that differ (only differing ones).
    pub fault_changes: Vec<FaultChange>,
    /// Critical-path composition shifts, when blame attributions were
    /// compared (see [`diff_blame`]); empty otherwise.
    pub blame_shifts: Vec<BlameShift>,
}

impl TraceDiff {
    /// Number of differing findings: shifted nodes + shifted paths +
    /// drop changes + queue changes + fault changes + a callback-count
    /// mismatch.
    pub fn difference_count(&self) -> usize {
        usize::from(self.callbacks.0 != self.callbacks.1)
            + self.nodes.iter().filter(|s| !s.identical).count()
            + self.paths.iter().filter(|s| !s.identical).count()
            + self.drop_changes.len()
            + self.queue_changes.len()
            + self.fault_changes.len()
            + self.blame_shifts.len()
    }

    /// `true` when the two traces are behaviourally identical.
    pub fn is_identical(&self) -> bool {
        self.difference_count() == 0
    }
}

/// Compares two analyzed traces. Both sides should have been analyzed
/// with the same path specs so paths align by construction.
pub fn diff_reports(a: &TraceReport, b: &TraceReport) -> TraceDiff {
    let node_names: BTreeSet<&String> = a.nodes.keys().chain(b.nodes.keys()).collect();
    let nodes = node_names
        .into_iter()
        .map(|name| DistShift::compare(name, a.nodes.get(name), b.nodes.get(name)))
        .collect();

    let path_names: Vec<&String> = {
        let mut names: Vec<&String> = a.paths.iter().map(|p| &p.name).collect();
        for p in &b.paths {
            if !names.contains(&&p.name) {
                names.push(&p.name);
            }
        }
        names
    };
    let find = |report: &'_ TraceReport, name: &String| -> Option<Distribution> {
        report.paths.iter().find(|p| &p.name == name).map(|p| p.latency.clone())
    };
    let paths = path_names
        .into_iter()
        .map(|name| DistShift::compare(name, find(a, name).as_ref(), find(b, name).as_ref()))
        .collect();

    let drop_keys: BTreeSet<&(String, String)> = a.drops.keys().chain(b.drops.keys()).collect();
    let drop_changes = drop_keys
        .into_iter()
        .filter_map(|key| {
            let (ca, cb) =
                (a.drops.get(key).copied().unwrap_or(0), b.drops.get(key).copied().unwrap_or(0));
            (ca != cb).then(|| DropChange {
                topic: key.0.clone(),
                node: key.1.clone(),
                count: (ca, cb),
            })
        })
        .collect();

    let queue_keys: BTreeSet<&(String, String)> = a.queues.keys().chain(b.queues.keys()).collect();
    let queue_changes = queue_keys
        .into_iter()
        .filter_map(|key| {
            let (qa, qb) = (
                a.queues.get(key).copied().unwrap_or_default(),
                b.queues.get(key).copied().unwrap_or_default(),
            );
            (qa != qb).then(|| QueueChange {
                topic: key.0.clone(),
                node: key.1.clone(),
                stat: (qa, qb),
            })
        })
        .collect();

    let fault_keys: BTreeSet<&(String, String)> = a.faults.keys().chain(b.faults.keys()).collect();
    let fault_changes = fault_keys
        .into_iter()
        .filter_map(|key| {
            let (fa, fb) =
                (a.faults.get(key).copied().unwrap_or(0), b.faults.get(key).copied().unwrap_or(0));
            (fa != fb).then(|| FaultChange {
                kind: key.0.clone(),
                node: key.1.clone(),
                count: (fa, fb),
            })
        })
        .collect();

    TraceDiff {
        callbacks: (a.callbacks, b.callbacks),
        nodes,
        paths,
        drop_changes,
        queue_changes,
        fault_changes,
        blame_shifts: Vec::new(),
    }
}

fn shift_table(shifts: &[DistShift]) -> Table {
    let mut table = Table::with_headers(&[
        "Name", "n A", "n B", "Mean A", "Mean B", "Δmean", "p99 A", "p99 B", "Δp99",
    ]);
    for s in shifts.iter().filter(|s| !s.identical) {
        table.add_row(vec![
            s.name.clone(),
            s.count.0.to_string(),
            s.count.1.to_string(),
            format!("{:.2}", s.mean_ms.0),
            format!("{:.2}", s.mean_ms.1),
            format!("{:+.2}", s.mean_delta()),
            format!("{:.2}", s.p99_ms.0),
            format!("{:.2}", s.p99_ms.1),
            format!("{:+.2}", s.p99_delta()),
        ]);
    }
    table
}

fn push_section(out: &mut String, title: &str, table: &Table) {
    let _ = writeln!(out, "## {title}\n");
    if table.is_empty() {
        out.push_str("(no differences)\n\n");
    } else {
        let _ = writeln!(out, "{table}");
    }
}

/// Renders the diff as the `trace_diff` binary's report text.
pub fn render_diff(label_a: &str, label_b: &str, diff: &TraceDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# trace diff — A: {label_a}  B: {label_b}\n");
    let _ = writeln!(
        out,
        "callback slices: {} vs {} ({:+})\n",
        diff.callbacks.0,
        diff.callbacks.1,
        diff.callbacks.1 as i64 - diff.callbacks.0 as i64
    );

    push_section(&mut out, "Node latency shifts (ms)", &shift_table(&diff.nodes));
    push_section(&mut out, "Path latency shifts (ms)", &shift_table(&diff.paths));

    let mut drops = Table::with_headers(&["Topic", "Node", "Drops A", "Drops B", "Δ", "Kind"]);
    for d in &diff.drop_changes {
        let kind = if d.is_new() {
            "NEW"
        } else if d.is_vanished() {
            "vanished"
        } else {
            "changed"
        };
        drops.add_row(vec![
            d.topic.clone(),
            d.node.clone(),
            d.count.0.to_string(),
            d.count.1.to_string(),
            format!("{:+}", d.count.1 as i64 - d.count.0 as i64),
            kind.to_string(),
        ]);
    }
    push_section(&mut out, "Drop changes", &drops);

    let mut queues = Table::with_headers(&[
        "Topic",
        "Node",
        "Events A",
        "Events B",
        "Max depth A",
        "Max depth B",
    ]);
    for q in &diff.queue_changes {
        queues.add_row(vec![
            q.topic.clone(),
            q.node.clone(),
            q.stat.0.events.to_string(),
            q.stat.1.events.to_string(),
            q.stat.0.max_depth.to_string(),
            q.stat.1.max_depth.to_string(),
        ]);
    }
    push_section(&mut out, "Queue divergence", &queues);

    let mut faults = Table::with_headers(&["Kind", "Node", "Events A", "Events B", "Δ"]);
    for f in &diff.fault_changes {
        faults.add_row(vec![
            f.kind.clone(),
            f.node.clone(),
            f.count.0.to_string(),
            f.count.1.to_string(),
            format!("{:+}", f.count.1 as i64 - f.count.0 as i64),
        ]);
    }
    push_section(&mut out, "Fault-event changes", &faults);

    let mut blame = Table::with_headers(&[
        "Path",
        "Dominant A",
        "Dominant B",
        "Node",
        "Share A",
        "Share B",
        "Δ",
    ]);
    for s in &diff.blame_shifts {
        if s.moved_nodes.is_empty() {
            blame.add_row(vec![
                s.path.clone(),
                s.dominant.0.clone(),
                s.dominant.1.clone(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        for (node, sa, sb) in &s.moved_nodes {
            blame.add_row(vec![
                s.path.clone(),
                s.dominant.0.clone(),
                s.dominant.1.clone(),
                node.clone(),
                format!("{:.1}%", sa * 100.0),
                format!("{:.1}%", sb * 100.0),
                format!("{:+.1}%", (sb - sa) * 100.0),
            ]);
        }
    }
    push_section(&mut out, "Critical-path composition shifts", &blame);

    if diff.is_identical() {
        out.push_str("traces identical: 0 differences\n");
    } else {
        let _ = writeln!(out, "{} difference(s) found", diff.difference_count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_trace;
    use crate::export::render_chrome_trace;
    use crate::{TraceData, TraceEvent};
    use av_des::SimTime;
    use av_ros::Source;

    fn small_trace(latency_ms: u64, with_drop: bool) -> TraceData {
        let mut events = vec![TraceEvent::Callback {
            node: "ndt".to_string(),
            topic: "/in".to_string(),
            arrival: SimTime::from_millis(100),
            started: SimTime::from_millis(100),
            completed: SimTime::from_millis(100 + latency_ms),
            lineage: vec![(Source::Lidar, SimTime::from_millis(100))],
            published: vec!["/pose".to_string()],
        }];
        if with_drop {
            events.push(TraceEvent::Dropped {
                topic: "/in".to_string(),
                node: "ndt".to_string(),
                depth: 1,
                time: SimTime::from_millis(150),
            });
        }
        TraceData { nodes: vec!["ndt".to_string()], events, ..TraceData::default() }
    }

    fn analyze(data: &TraceData) -> TraceReport {
        let json = render_chrome_trace("t", data);
        let parsed = crate::json::parse(&json).unwrap();
        analyze_trace(&parsed, &[]).unwrap()
    }

    #[test]
    fn self_diff_is_identical() {
        let report = analyze(&small_trace(40, true));
        let diff = diff_reports(&report, &report);
        assert!(diff.is_identical(), "self diff must be empty: {diff:?}");
        let text = render_diff("a", "a", &diff);
        assert!(text.contains("traces identical: 0 differences"), "{text}");
    }

    #[test]
    fn latency_shift_and_new_drop_are_reported() {
        let a = analyze(&small_trace(40, false));
        let b = analyze(&small_trace(55, true));
        let diff = diff_reports(&a, &b);
        assert!(!diff.is_identical());
        let ndt = diff.nodes.iter().find(|s| s.name == "ndt").unwrap();
        assert!(!ndt.identical);
        assert!((ndt.mean_delta() - 15.0).abs() < 1e-9);
        assert_eq!(diff.drop_changes.len(), 1);
        assert!(diff.drop_changes[0].is_new());
        // The drop's queue counter diverges too.
        assert_eq!(diff.queue_changes.len(), 1);
        let text = render_diff("a", "b", &diff);
        assert!(text.contains("NEW"));
        assert!(text.contains("difference(s) found"));
    }

    #[test]
    fn fault_events_flag_faulted_vs_clean() {
        use av_ros::FaultKind;
        let clean = analyze(&small_trace(40, false));
        let mut faulted_data = small_trace(40, false);
        faulted_data.events.push(TraceEvent::Fault {
            kind: FaultKind::Crash,
            node: "ndt".to_string(),
            info: "lost=0".to_string(),
            time: SimTime::from_millis(120),
        });
        let faulted = analyze(&faulted_data);
        let diff = diff_reports(&clean, &faulted);
        assert!(!diff.is_identical());
        assert_eq!(diff.fault_changes.len(), 1);
        assert_eq!(diff.fault_changes[0].kind, "crash");
        assert_eq!(diff.fault_changes[0].count, (0, 1));
        let text = render_diff("clean", "faulted", &diff);
        assert!(text.contains("Fault-event changes"), "{text}");
        // Symmetric self-diff of the faulted trace stays clean.
        assert!(diff_reports(&faulted, &faulted).is_identical());
    }

    #[test]
    fn vanished_node_counts_as_shift() {
        let a = analyze(&small_trace(40, false));
        let empty = analyze(&TraceData::default());
        let diff = diff_reports(&a, &empty);
        let ndt = diff.nodes.iter().find(|s| s.name == "ndt").unwrap();
        assert_eq!(ndt.count, (1, 0));
        assert!(!ndt.identical);
    }

    /// lidar@100 → filter → sink, with the filter's queue wait and
    /// compute time dialed by the caller.
    fn blamed(wait_ms: u64, compute_ms: u64) -> BlameReport {
        use crate::blame::{analyze_blame, BlamePathSpec};
        let started = 100 + wait_ms;
        let done = started + compute_ms;
        let data = TraceData {
            nodes: vec!["filter".to_string(), "sink".to_string()],
            events: vec![
                TraceEvent::Callback {
                    node: "filter".to_string(),
                    topic: "/raw".to_string(),
                    arrival: SimTime::from_millis(100),
                    started: SimTime::from_millis(started),
                    completed: SimTime::from_millis(done),
                    lineage: vec![(Source::Lidar, SimTime::from_millis(100))],
                    published: vec!["/mid".to_string()],
                },
                TraceEvent::Callback {
                    node: "sink".to_string(),
                    topic: "/mid".to_string(),
                    arrival: SimTime::from_millis(done),
                    started: SimTime::from_millis(done),
                    completed: SimTime::from_millis(done + 10),
                    lineage: vec![(Source::Lidar, SimTime::from_millis(100))],
                    published: vec!["/out".to_string()],
                },
            ],
            ..TraceData::default()
        };
        let specs = [BlamePathSpec::new("p", "sink", Source::Lidar)];
        analyze_blame(&data, &specs).unwrap()
    }

    #[test]
    fn blame_self_diff_reports_no_shift() {
        let a = blamed(10, 60);
        assert!(diff_blame(&a, &a, BLAME_SHIFT_EPSILON).is_empty());
    }

    #[test]
    fn blame_dominant_flip_and_share_move_are_flagged() {
        // A: 10 ms wait / 60 ms compute at the filter (compute-dominant,
        // filter holds 70/80 of the path). B: 60 ms wait / 10 ms compute
        // (queue-dominant, filter still 70/80 but sink share unchanged) —
        // only the dominant flips. C: 0 wait / 10 ms compute shrinks the
        // filter to 10/20, moving both node shares past epsilon.
        let a = blamed(10, 60);
        let b = blamed(60, 10);
        let flips = diff_blame(&a, &b, BLAME_SHIFT_EPSILON);
        assert_eq!(flips.len(), 1, "{flips:?}");
        assert_eq!(flips[0].path, "p");
        assert!(flips[0].dominant_changed());
        assert_eq!(flips[0].dominant, ("compute".to_string(), "queue_wait".to_string()));
        assert!(flips[0].moved_nodes.is_empty(), "node split unchanged: {flips:?}");

        let c = blamed(0, 10);
        let moves = diff_blame(&a, &c, BLAME_SHIFT_EPSILON);
        assert_eq!(moves.len(), 1, "{moves:?}");
        assert!(!moves[0].dominant_changed());
        let filter = moves[0].moved_nodes.iter().find(|(n, _, _)| n == "filter").unwrap();
        assert!((filter.1 - 0.875).abs() < 1e-9 && (filter.2 - 0.5).abs() < 1e-9, "{moves:?}");

        // The shifts land in the rendered report and the diff count.
        let mut diff =
            diff_reports(&analyze(&small_trace(40, false)), &analyze(&small_trace(40, false)));
        assert!(diff.is_identical());
        diff.blame_shifts = flips;
        assert_eq!(diff.difference_count(), 1);
        let text = render_diff("a", "b", &diff);
        assert!(text.contains("Critical-path composition shifts"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
    }

    #[test]
    fn blame_path_missing_on_one_side_is_a_shift() {
        let a = blamed(10, 60);
        let empty = BlameReport { paths: Vec::new() };
        let shifts = diff_blame(&a, &empty, BLAME_SHIFT_EPSILON);
        assert_eq!(shifts.len(), 1);
        assert_eq!(shifts[0].dominant, ("compute".to_string(), "-".to_string()));
    }
}
