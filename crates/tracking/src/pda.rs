//! Probabilistic Data Association: gating and association weights.

use av_geom::{MatN, VecN};

/// PDA parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PdaParams {
    /// Gate threshold on the Mahalanobis distance² (χ², 2 DOF; 9.21 ≈ 99%).
    pub gate: f64,
    /// Probability that the target is detected at all.
    pub detection_prob: f64,
    /// Clutter (false measurement) spatial density, measurements / m².
    pub clutter_density: f64,
}

impl Default for PdaParams {
    fn default() -> PdaParams {
        PdaParams { gate: 9.21, detection_prob: 0.9, clutter_density: 1e-3 }
    }
}

/// A gated measurement with its association weight.
#[derive(Debug, Clone, PartialEq)]
pub struct GatedMeasurement {
    /// Index into the input measurement list.
    pub index: usize,
    /// Innovation (z − ẑ).
    pub innovation: VecN,
    /// Association weight β (sums over gated measurements to ≤ 1; the
    /// remainder is the "no detection" hypothesis).
    pub beta: f64,
    /// Gaussian likelihood of the measurement.
    pub likelihood: f64,
}

/// Gates measurements against a predicted measurement distribution and
/// computes PDA association weights.
///
/// Returns the gated set (possibly empty). The β weights follow the
/// standard parametric PDA with Poisson clutter:
///
/// ```text
/// β_i = L_i / (λ(1 − P_D) + Σ L_j),   L_i = P_D · N(ν_i; 0, S)
/// ```
///
/// ```
/// use av_geom::{MatN, VecN};
/// use av_tracking::{gate_measurements, PdaParams};
///
/// let z_pred = VecN::from_slice(&[0.0, 0.0]);
/// let s = MatN::from_diagonal(&[0.25, 0.25]);
/// let measurements = vec![
///     VecN::from_slice(&[0.1, 0.1]),   // inside the gate
///     VecN::from_slice(&[50.0, 50.0]), // far outside
/// ];
/// let gated = gate_measurements(&z_pred, &s, &measurements, &PdaParams::default());
/// assert_eq!(gated.len(), 1);
/// assert_eq!(gated[0].index, 0);
/// ```
pub fn gate_measurements(
    z_pred: &VecN,
    s: &MatN,
    measurements: &[VecN],
    params: &PdaParams,
) -> Vec<GatedMeasurement> {
    let Some(s_inv) = s.inverse() else { return Vec::new() };
    let det = s.det().max(1e-12);
    let norm = 1.0 / (2.0 * std::f64::consts::PI * det.sqrt());

    let mut gated: Vec<GatedMeasurement> = measurements
        .iter()
        .enumerate()
        .filter_map(|(index, z)| {
            let innovation = z - z_pred;
            let d2 = innovation.dot(&s_inv.mul_vec(&innovation));
            if d2 > params.gate {
                return None;
            }
            let likelihood = params.detection_prob * norm * (-0.5 * d2).exp();
            Some(GatedMeasurement { index, innovation, beta: 0.0, likelihood })
        })
        .collect();

    let miss_mass = params.clutter_density * (1.0 - params.detection_prob);
    let total: f64 = miss_mass + gated.iter().map(|g| g.likelihood).sum::<f64>();
    for g in &mut gated {
        g.beta = g.likelihood / total.max(1e-300);
    }
    gated
}

/// Combines gated measurements into the PDA effective innovation
/// `ν = Σ β_i ν_i` and the total association weight `Σ β_i`.
pub fn combine_innovations(gated: &[GatedMeasurement]) -> (VecN, f64) {
    if gated.is_empty() {
        return (VecN::zeros(2), 0.0);
    }
    let mut combined = VecN::zeros(gated[0].innovation.len());
    let mut beta_total = 0.0;
    for g in gated {
        combined = &combined + &g.innovation.scaled(g.beta);
        beta_total += g.beta;
    }
    (combined, beta_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VecN, MatN) {
        (VecN::from_slice(&[10.0, 5.0]), MatN::from_diagonal(&[0.5, 0.5]))
    }

    #[test]
    fn gate_excludes_distant_measurements() {
        let (z, s) = setup();
        let ms = vec![
            VecN::from_slice(&[10.2, 5.1]),
            VecN::from_slice(&[13.0, 5.0]), // d² = 9/0.5 = 18 > 9.21
            VecN::from_slice(&[10.0, 4.5]),
        ];
        let gated = gate_measurements(&z, &s, &ms, &PdaParams::default());
        let indices: Vec<usize> = gated.iter().map(|g| g.index).collect();
        assert_eq!(indices, vec![0, 2]);
    }

    #[test]
    fn betas_sum_below_one() {
        let (z, s) = setup();
        let ms = vec![
            VecN::from_slice(&[10.1, 5.0]),
            VecN::from_slice(&[9.9, 5.1]),
            VecN::from_slice(&[10.0, 4.9]),
        ];
        let gated = gate_measurements(&z, &s, &ms, &PdaParams::default());
        let beta_sum: f64 = gated.iter().map(|g| g.beta).sum();
        assert!(beta_sum > 0.5 && beta_sum <= 1.0, "beta sum {beta_sum}");
    }

    #[test]
    fn closest_measurement_gets_highest_beta() {
        let (z, s) = setup();
        let ms = vec![VecN::from_slice(&[11.0, 5.0]), VecN::from_slice(&[10.1, 5.0])];
        let gated = gate_measurements(&z, &s, &ms, &PdaParams::default());
        assert_eq!(gated.len(), 2);
        let near = gated.iter().find(|g| g.index == 1).unwrap();
        let far = gated.iter().find(|g| g.index == 0).unwrap();
        assert!(near.beta > far.beta);
    }

    #[test]
    fn empty_gate_returns_empty() {
        let (z, s) = setup();
        let ms = vec![VecN::from_slice(&[100.0, 100.0])];
        let gated = gate_measurements(&z, &s, &ms, &PdaParams::default());
        assert!(gated.is_empty());
        let (combined, beta) = combine_innovations(&gated);
        assert_eq!(beta, 0.0);
        assert_eq!(combined.len(), 2);
    }

    #[test]
    fn combined_innovation_weighted() {
        let (z, s) = setup();
        let ms = vec![VecN::from_slice(&[10.4, 5.0]), VecN::from_slice(&[9.6, 5.0])];
        let gated = gate_measurements(&z, &s, &ms, &PdaParams::default());
        let (combined, beta_total) = combine_innovations(&gated);
        // Symmetric measurements: innovations cancel.
        assert!(combined[0].abs() < 1e-9);
        assert!(beta_total > 0.0);
    }

    #[test]
    fn singular_s_returns_empty() {
        let z = VecN::from_slice(&[0.0, 0.0]);
        let s = MatN::zeros(2, 2);
        let ms = vec![VecN::from_slice(&[0.0, 0.0])];
        assert!(gate_measurements(&z, &s, &ms, &PdaParams::default()).is_empty());
    }
}
