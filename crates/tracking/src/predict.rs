//! Trajectory extrapolation — the `naive_motion_predict` node.
//!
//! "Autoware considers the objects have constant velocity (both when
//! driving straight as when turning), hence the prediction node name
//! `naive_motion_predict`" (§II-B): each track's state is rolled forward
//! with the CTRV equations at its current speed and yaw rate.

use crate::TrackedObject;
use av_geom::Vec3;

/// Prediction horizon parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictParams {
    /// How far into the future to predict, seconds.
    pub horizon_s: f64,
    /// Spacing between predicted waypoints, seconds.
    pub step_s: f64,
}

impl Default for PredictParams {
    fn default() -> PredictParams {
        PredictParams { horizon_s: 3.0, step_s: 0.5 }
    }
}

/// A track bundled with its predicted future path, as published on
/// `/prediction/motion_predictor/objects`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedObject {
    /// The tracked object.
    pub object: TrackedObject,
    /// Future positions at `step_s` intervals, nearest first.
    pub path: Vec<Vec3>,
}

/// Rolls a track's constant-velocity/turn state forward.
///
/// # Panics
///
/// Panics if `step_s` is not strictly positive.
///
/// ```
/// use av_geom::Vec3;
/// use av_perception::ObjectClass;
/// use av_tracking::{predict_path, PredictParams, TrackedObject};
///
/// let track = TrackedObject {
///     id: 1,
///     position: Vec3::ZERO,
///     velocity: Vec3::new(10.0, 0.0, 0.0),
///     yaw: 0.0,
///     yaw_rate: 0.0,
///     half_extents: Vec3::splat(1.0),
///     class: ObjectClass::Car,
///     age: 10,
///     model_probs: [0.8, 0.1, 0.1],
/// };
/// let path = predict_path(&track, &PredictParams::default());
/// assert_eq!(path.len(), 6); // 3 s at 0.5 s steps
/// assert!((path[5].x - 30.0).abs() < 1e-9);
/// ```
pub fn predict_path(object: &TrackedObject, params: &PredictParams) -> Vec<Vec3> {
    assert!(params.step_s > 0.0, "prediction step must be positive");
    let steps = (params.horizon_s / params.step_s).floor() as usize;
    let speed = object.velocity.norm_xy();
    let mut path = Vec::with_capacity(steps);
    let (mut x, mut y) = (object.position.x, object.position.y);
    let mut yaw = object.yaw;
    let yawd = object.yaw_rate;
    let dt = params.step_s;
    for _ in 0..steps {
        if yawd.abs() > 1e-4 {
            x += speed / yawd * ((yaw + yawd * dt).sin() - yaw.sin());
            y += speed / yawd * (-(yaw + yawd * dt).cos() + yaw.cos());
            yaw += yawd * dt;
        } else {
            x += speed * yaw.cos() * dt;
            y += speed * yaw.sin() * dt;
        }
        path.push(Vec3::new(x, y, object.position.z));
    }
    path
}

/// Predicts paths for a whole frame of tracks.
pub fn predict_objects(tracks: &[TrackedObject], params: &PredictParams) -> Vec<PredictedObject> {
    tracks
        .iter()
        .map(|t| PredictedObject { object: t.clone(), path: predict_path(t, params) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::ObjectClass;

    fn track(vx: f64, vy: f64, yaw: f64, yaw_rate: f64) -> TrackedObject {
        TrackedObject {
            id: 7,
            position: Vec3::new(5.0, 5.0, 0.0),
            velocity: Vec3::new(vx, vy, 0.0),
            yaw,
            yaw_rate,
            half_extents: Vec3::splat(1.0),
            class: ObjectClass::Car,
            age: 20,
            model_probs: [0.5, 0.4, 0.1],
        }
    }

    #[test]
    fn straight_prediction_is_linear() {
        let path = predict_path(&track(8.0, 0.0, 0.0, 0.0), &PredictParams::default());
        assert_eq!(path.len(), 6);
        for (i, p) in path.iter().enumerate() {
            assert!((p.x - (5.0 + 8.0 * 0.5 * (i + 1) as f64)).abs() < 1e-9);
            assert!((p.y - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn turning_prediction_curves() {
        let path = predict_path(&track(8.0, 0.0, 0.0, 0.5), &PredictParams::default());
        // Path bends left (positive yaw rate).
        assert!(path.last().unwrap().y > 5.5);
        // Arc length ≈ speed × horizon.
        let mut length = 0.0;
        let mut prev = Vec3::new(5.0, 5.0, 0.0);
        for p in &path {
            length += prev.distance(*p);
            prev = *p;
        }
        assert!((length - 24.0).abs() < 0.5, "arc length {length}");
    }

    #[test]
    fn stationary_object_stays_put() {
        let path = predict_path(&track(0.0, 0.0, 1.0, 0.0), &PredictParams::default());
        for p in &path {
            assert!((p.truncate() - av_geom::Vec2::new(5.0, 5.0)).norm() < 1e-9);
        }
    }

    #[test]
    fn horizon_and_step_control_count() {
        let params = PredictParams { horizon_s: 2.0, step_s: 0.25 };
        assert_eq!(predict_path(&track(1.0, 0.0, 0.0, 0.0), &params).len(), 8);
    }

    #[test]
    fn predict_objects_covers_all_tracks() {
        let tracks = vec![track(1.0, 0.0, 0.0, 0.0), track(0.0, 2.0, 1.57, 0.1)];
        let predicted = predict_objects(&tracks, &PredictParams::default());
        assert_eq!(predicted.len(), 2);
        assert_eq!(predicted[0].object.id, 7);
        assert!(!predicted[0].path.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let _ = predict_path(
            &track(1.0, 0.0, 0.0, 0.0),
            &PredictParams { horizon_s: 1.0, step_s: 0.0 },
        );
    }
}
