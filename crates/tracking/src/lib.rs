//! Multi-object tracking and motion prediction.
//!
//! Implements the algorithms behind two Autoware nodes:
//!
//! * **`imm_ukf_pda_tracker`** — an Interacting-Multiple-Model unscented
//!   Kalman filter with Probabilistic Data Association, "inspired in
//!   previous works that combine different filter algorithms" (§II-B).
//!   Per track, three motion hypotheses (constant velocity, constant turn
//!   rate & velocity, random motion) run as parallel UKFs ([`ukf`]),
//!   mixed by the IMM machinery ([`imm`]); measurements are associated by
//!   gated probabilistic weighting ([`pda`]); track lifecycle (birth,
//!   confirmation, coasting, death) lives in [`tracker`].
//! * **`naive_motion_predict`** — constant-velocity/turn extrapolation of
//!   each confirmed track into a future path ([`predict`]).

#![warn(missing_docs)]

pub mod imm;
pub mod pda;
pub mod predict;
pub mod tracker;
pub mod ukf;

pub use imm::{ImmEstimate, ImmFilter, ImmParams};
pub use pda::{gate_measurements, PdaParams};
pub use predict::{predict_objects, predict_path, PredictParams, PredictedObject};
pub use tracker::{ImmUkfPdaTracker, TrackedObject, TrackerParams};
pub use ukf::{MotionModel, NoiseParams, Ukf};
