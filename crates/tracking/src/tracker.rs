//! Track lifecycle management — the `imm_ukf_pda_tracker` node.

use crate::imm::{ImmFilter, ImmParams, N_MODELS};
use crate::pda::{combine_innovations, gate_measurements, PdaParams};
use av_geom::{Vec3, VecN};
use av_perception::{DetectedObject, ObjectClass};

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerParams {
    /// IMM filter-bank parameters.
    pub imm: ImmParams,
    /// Gating/association parameters.
    pub pda: PdaParams,
    /// Consecutive-ish hits before a track is reported (confirmation).
    pub confirm_hits: u32,
    /// Missed frames before a track dies.
    pub max_misses: u32,
}

impl Default for TrackerParams {
    fn default() -> TrackerParams {
        TrackerParams {
            imm: ImmParams::default(),
            pda: PdaParams::default(),
            confirm_hits: 3,
            max_misses: 4,
        }
    }
}

/// A confirmed track, as published on `/detection/object_tracker/objects`:
/// "position, velocity, and associated identification" (§II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedObject {
    /// Stable track identity.
    pub id: u64,
    /// Estimated position.
    pub position: Vec3,
    /// Estimated velocity (world frame).
    pub velocity: Vec3,
    /// Estimated heading, radians.
    pub yaw: f64,
    /// Estimated yaw rate, rad/s.
    pub yaw_rate: f64,
    /// Body half-extents (from the associated detections).
    pub half_extents: Vec3,
    /// Latched semantic class (first non-unknown vision label wins).
    pub class: ObjectClass,
    /// Frames since birth.
    pub age: u32,
    /// Posterior motion-model probabilities `[cv, ctrv, random]`.
    pub model_probs: [f64; N_MODELS],
}

/// Per-step work counters, consumed by the latency cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerWork {
    /// Live tracks at the end of the step.
    pub tracks: usize,
    /// Measurements received.
    pub measurements: usize,
    /// Track×measurement gate evaluations performed.
    pub gates_evaluated: usize,
}

fn class_code(class: ObjectClass) -> u8 {
    match class {
        ObjectClass::Car => 0,
        ObjectClass::Pedestrian => 1,
        ObjectClass::Cyclist => 2,
        ObjectClass::Unknown => 3,
    }
}

fn class_from_code(code: u8) -> ObjectClass {
    match code {
        0 => ObjectClass::Car,
        1 => ObjectClass::Pedestrian,
        2 => ObjectClass::Cyclist,
        3 => ObjectClass::Unknown,
        other => panic!("checkpoint corrupt: unknown object class code {other}"),
    }
}

struct Track {
    id: u64,
    imm: ImmFilter,
    hits: u32,
    misses: u32,
    age: u32,
    half_extents: Vec3,
    class: ObjectClass,
    z_height: f64,
}

/// The IMM-UKF-PDA multi-object tracker.
///
/// Feed it detections (map frame) once per fused-detection frame; it
/// returns the confirmed tracks. See the module tests for full scenarios.
pub struct ImmUkfPdaTracker {
    params: TrackerParams,
    tracks: Vec<Track>,
    next_id: u64,
    last_work: TrackerWork,
}

impl ImmUkfPdaTracker {
    /// Creates an empty tracker.
    pub fn new(params: TrackerParams) -> ImmUkfPdaTracker {
        ImmUkfPdaTracker {
            params,
            tracks: Vec::new(),
            next_id: 1,
            last_work: TrackerWork::default(),
        }
    }

    /// Number of live (confirmed or tentative) tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Work counters from the most recent [`ImmUkfPdaTracker::step`].
    pub fn last_work(&self) -> TrackerWork {
        self.last_work
    }

    /// Serializes all track state into a checkpoint section. Tracker
    /// parameters are configuration and are not saved.
    pub fn save_state(&self, w: &mut av_des::SnapWriter) {
        w.put_tag("tracker");
        w.put_u64(self.next_id);
        w.put_usize(self.last_work.tracks);
        w.put_usize(self.last_work.measurements);
        w.put_usize(self.last_work.gates_evaluated);
        w.put_usize(self.tracks.len());
        for t in &self.tracks {
            w.put_u64(t.id);
            w.put_u32(t.hits);
            w.put_u32(t.misses);
            w.put_u32(t.age);
            w.put_f64(t.half_extents.x);
            w.put_f64(t.half_extents.y);
            w.put_f64(t.half_extents.z);
            w.put_u8(class_code(t.class));
            w.put_f64(t.z_height);
            t.imm.save_state(w);
        }
    }

    /// Restores the track state written by
    /// [`ImmUkfPdaTracker::save_state`], replacing all current tracks. The
    /// tracker must have been constructed with the same parameters.
    ///
    /// # Panics
    ///
    /// Panics on malformed checkpoint bytes.
    pub fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        r.expect_tag("tracker");
        self.next_id = r.get_u64();
        self.last_work = TrackerWork {
            tracks: r.get_usize(),
            measurements: r.get_usize(),
            gates_evaluated: r.get_usize(),
        };
        self.tracks.clear();
        for _ in 0..r.get_usize() {
            let id = r.get_u64();
            let hits = r.get_u32();
            let misses = r.get_u32();
            let age = r.get_u32();
            let half_extents = Vec3::new(r.get_f64(), r.get_f64(), r.get_f64());
            let class = class_from_code(r.get_u8());
            let z_height = r.get_f64();
            let imm = ImmFilter::load_state(self.params.imm.clone(), r);
            self.tracks.push(Track { id, imm, hits, misses, age, half_extents, class, z_height });
        }
    }

    /// Advances the tracker by one frame.
    ///
    /// `detections` are fused objects in a common (map) frame; `dt` is the
    /// time since the previous frame. Returns confirmed tracks.
    pub fn step(&mut self, detections: &[DetectedObject], dt: f64) -> Vec<TrackedObject> {
        let dt = dt.max(1e-3);
        let measurements: Vec<VecN> =
            detections.iter().map(|d| VecN::from_slice(&[d.position.x, d.position.y])).collect();
        let mut claimed = vec![false; measurements.len()];
        let mut gates_evaluated = 0usize;

        for track in &mut self.tracks {
            track.imm.predict(dt);
            track.age += 1;

            // Gate per model; union of gated indices decides hit/miss.
            let mut per_model: [(VecN, f64, f64); N_MODELS] = [
                (VecN::zeros(2), 0.0, 1e-12),
                (VecN::zeros(2), 0.0, 1e-12),
                (VecN::zeros(2), 0.0, 1e-12),
            ];
            let mut hit_any = false;
            let mut best_idx: Option<usize> = None;
            let mut best_beta = 0.0;
            for (j, filter) in track.imm.filters().iter().enumerate() {
                let (z_pred, s) = filter.predicted_measurement().expect("predict ran above");
                let gated = gate_measurements(z_pred, s, &measurements, &self.params.pda);
                gates_evaluated += measurements.len();
                if !gated.is_empty() {
                    hit_any = true;
                    for g in &gated {
                        claimed[g.index] = true;
                        if g.beta > best_beta {
                            best_beta = g.beta;
                            best_idx = Some(g.index);
                        }
                    }
                }
                let assoc_likelihood = self.params.pda.clutter_density
                    * (1.0 - self.params.pda.detection_prob)
                    + gated.iter().map(|g| g.likelihood).sum::<f64>();
                let (innovation, beta_total) = combine_innovations(&gated);
                per_model[j] = (innovation, beta_total, assoc_likelihood);
            }

            if hit_any {
                track.hits += 1;
                track.misses = 0;
                track.imm.update_pda(&per_model);
                // Refresh extents/class from the strongest associated
                // detection; latch the first semantic class.
                if let Some(idx) = best_idx {
                    let det = &detections[idx];
                    track.half_extents = det.half_extents;
                    track.z_height = det.position.z;
                    if track.class == ObjectClass::Unknown && det.class != ObjectClass::Unknown {
                        track.class = det.class;
                    }
                }
            } else {
                track.misses += 1;
            }
        }

        // Death.
        let max_misses = self.params.max_misses;
        self.tracks.retain(|t| t.misses <= max_misses);

        // Birth from unclaimed detections.
        for (idx, det) in detections.iter().enumerate() {
            if claimed[idx] {
                continue;
            }
            self.tracks.push(Track {
                id: self.next_id,
                imm: ImmFilter::new(self.params.imm.clone(), det.position.x, det.position.y),
                hits: 1,
                misses: 0,
                age: 1,
                half_extents: det.half_extents,
                class: det.class,
                z_height: det.position.z,
            });
            self.next_id += 1;
        }

        self.last_work = TrackerWork {
            tracks: self.tracks.len(),
            measurements: measurements.len(),
            gates_evaluated,
        };

        // Report confirmed tracks.
        self.tracks
            .iter()
            .filter(|t| t.hits >= self.params.confirm_hits)
            .map(|t| {
                let est = t.imm.estimate();
                let (v, yaw, yawd) = (est.state[2], est.state[3], est.state[4]);
                TrackedObject {
                    id: t.id,
                    position: Vec3::new(est.state[0], est.state[1], t.z_height),
                    velocity: Vec3::new(v * yaw.cos(), v * yaw.sin(), 0.0),
                    yaw,
                    yaw_rate: yawd,
                    half_extents: t.half_extents,
                    class: t.class,
                    age: t.age,
                    model_probs: est.model_probs,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detection(x: f64, y: f64) -> DetectedObject {
        DetectedObject::from_cluster(Vec3::new(x, y, 0.0), Vec3::new(2.0, 0.9, 0.75), 40)
    }

    fn classified(x: f64, y: f64, class: ObjectClass) -> DetectedObject {
        DetectedObject { class, ..detection(x, y) }
    }

    #[test]
    fn track_confirms_after_hits() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        assert!(tracker.step(&[detection(10.0, 0.0)], 0.1).is_empty());
        assert!(tracker.step(&[detection(10.5, 0.0)], 0.1).is_empty());
        let confirmed = tracker.step(&[detection(11.0, 0.0)], 0.1);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].age, 3);
    }

    #[test]
    fn id_stable_across_frames() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        let mut ids = Vec::new();
        for i in 0..10 {
            let tracks = tracker.step(&[detection(10.0 + 0.8 * i as f64, 0.0)], 0.1);
            ids.extend(tracks.iter().map(|t| t.id));
        }
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "identity must persist: {ids:?}");
    }

    #[test]
    fn velocity_estimated_for_moving_target() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        let mut last = Vec::new();
        for i in 0..40 {
            last = tracker.step(&[detection(0.8 * i as f64, 5.0)], 0.1);
        }
        assert_eq!(last.len(), 1);
        let speed = last[0].velocity.norm();
        assert!((speed - 8.0).abs() < 1.5, "estimated speed {speed}");
    }

    #[test]
    fn track_dies_after_misses() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        for i in 0..5 {
            tracker.step(&[detection(10.0 + 0.1 * i as f64, 0.0)], 0.1);
        }
        assert_eq!(tracker.track_count(), 1);
        for _ in 0..6 {
            tracker.step(&[], 0.1);
        }
        assert_eq!(tracker.track_count(), 0);
    }

    #[test]
    fn coasting_track_survives_brief_occlusion() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        let mut id_before = 0;
        for i in 0..10 {
            let t = tracker.step(&[detection(0.8 * i as f64, 0.0)], 0.1);
            if let Some(first) = t.first() {
                id_before = first.id;
            }
        }
        // Two occluded frames.
        tracker.step(&[], 0.1);
        tracker.step(&[], 0.1);
        // Target reappears where the CV model predicts.
        let t = tracker.step(&[detection(0.8 * 12.0, 0.0)], 0.1);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].id, id_before, "track must survive occlusion");
    }

    #[test]
    fn two_targets_two_tracks() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        let mut last = Vec::new();
        for i in 0..10 {
            last = tracker.step(
                &[detection(0.5 * i as f64, 0.0), detection(30.0 - 0.5 * i as f64, 20.0)],
                0.1,
            );
        }
        assert_eq!(last.len(), 2);
        assert_ne!(last[0].id, last[1].id);
        // Roughly opposite headings.
        let dot = last[0].velocity.normalized().dot(last[1].velocity.normalized());
        assert!(dot < 0.0, "targets move in opposite directions");
    }

    #[test]
    fn class_latched_from_vision() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        tracker.step(&[detection(10.0, 0.0)], 0.1);
        tracker.step(&[classified(10.2, 0.0, ObjectClass::Car)], 0.1);
        let t = tracker.step(&[detection(10.4, 0.0)], 0.1);
        assert_eq!(t[0].class, ObjectClass::Car, "class latches once seen");
    }

    #[test]
    fn clutter_does_not_steal_track() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        let mut last = Vec::new();
        for i in 0..30 {
            let x = 0.8 * i as f64;
            // Target plus a clutter detection far away each frame.
            last = tracker.step(&[detection(x, 0.0), detection(50.0, -30.0 + (i % 7) as f64)], 0.1);
        }
        let target = last.iter().find(|t| t.position.y.abs() < 2.0).unwrap();
        assert!((target.velocity.norm() - 8.0).abs() < 2.0);
    }

    #[test]
    fn tracker_state_round_trips_and_continues_identically() {
        let mut a = ImmUkfPdaTracker::new(TrackerParams::default());
        for i in 0..8 {
            a.step(
                &[detection(0.8 * i as f64, 0.0), classified(20.0, 5.0, ObjectClass::Cyclist)],
                0.1,
            );
        }
        let mut w = av_des::SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = ImmUkfPdaTracker::new(TrackerParams::default());
        b.load_state(&mut av_des::SnapReader::new(&bytes));
        assert_eq!(b.track_count(), a.track_count());
        assert_eq!(b.last_work(), a.last_work());

        // Continuing from the restored state is bit-identical to
        // continuing the original.
        for i in 8..16 {
            let ta = a.step(&[detection(0.8 * i as f64, 0.0)], 0.1);
            let tb = b.step(&[detection(0.8 * i as f64, 0.0)], 0.1);
            assert_eq!(ta, tb);
        }

        // And re-serializing restored state reproduces the bytes.
        let mut w2 = av_des::SnapWriter::new();
        let mut c = ImmUkfPdaTracker::new(TrackerParams::default());
        c.load_state(&mut av_des::SnapReader::new(&bytes));
        c.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn work_counters_populated() {
        let mut tracker = ImmUkfPdaTracker::new(TrackerParams::default());
        tracker.step(&[detection(1.0, 0.0), detection(5.0, 5.0)], 0.1);
        tracker.step(&[detection(1.2, 0.0)], 0.1);
        let work = tracker.last_work();
        assert_eq!(work.measurements, 1);
        assert_eq!(work.tracks, 2);
        assert!(work.gates_evaluated > 0);
    }
}
