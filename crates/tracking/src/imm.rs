//! Interacting Multiple Models: mixing CV / CTRV / random-motion UKFs.

use crate::ukf::{MotionModel, NoiseParams, Ukf, STATE_DIM};
use av_geom::{normalize_angle, MatN, VecN};

/// Number of motion models in the bank.
pub const N_MODELS: usize = 3;

/// IMM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmParams {
    /// Model transition probability matrix (rows sum to 1): `p[i][j]` is
    /// the probability of switching from model `i` to model `j` between
    /// frames.
    pub transition: [[f64; N_MODELS]; N_MODELS],
    /// Initial model probabilities.
    pub initial_probs: [f64; N_MODELS],
    /// Shared noise intensities.
    pub noise: NoiseParams,
}

impl Default for ImmParams {
    fn default() -> ImmParams {
        ImmParams {
            transition: [[0.90, 0.05, 0.05], [0.05, 0.90, 0.05], [0.10, 0.10, 0.80]],
            initial_probs: [0.4, 0.4, 0.2],
            noise: NoiseParams::default(),
        }
    }
}

/// Combined state estimate across models.
#[derive(Debug, Clone)]
pub struct ImmEstimate {
    /// Combined state `[px, py, v, yaw, yaw_rate]`.
    pub state: VecN,
    /// Combined covariance.
    pub cov: MatN,
    /// Posterior model probabilities `[cv, ctrv, random]`.
    pub model_probs: [f64; N_MODELS],
}

/// The IMM filter bank for one track.
///
/// ```
/// use av_geom::VecN;
/// use av_tracking::{ImmFilter, ImmParams};
///
/// let mut imm = ImmFilter::new(ImmParams::default(), 0.0, 0.0);
/// imm.predict(0.1);
/// imm.update(&VecN::from_slice(&[0.8, 0.0]));
/// let est = imm.estimate();
/// assert_eq!(est.state.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ImmFilter {
    params: ImmParams,
    filters: [Ukf; N_MODELS],
    probs: [f64; N_MODELS],
}

const MODELS: [MotionModel; N_MODELS] =
    [MotionModel::ConstantVelocity, MotionModel::ConstantTurnRate, MotionModel::RandomMotion];

impl ImmFilter {
    /// Creates a filter bank initialized at a measured position.
    pub fn new(params: ImmParams, px: f64, py: f64) -> ImmFilter {
        let filters = [
            Ukf::new(MODELS[0], params.noise.clone(), px, py),
            Ukf::new(MODELS[1], params.noise.clone(), px, py),
            Ukf::new(MODELS[2], params.noise.clone(), px, py),
        ];
        let probs = params.initial_probs;
        ImmFilter { params, filters, probs }
    }

    /// Current model probabilities.
    pub fn model_probs(&self) -> [f64; N_MODELS] {
        self.probs
    }

    /// The per-model filters (read access, e.g. for gating).
    pub fn filters(&self) -> &[Ukf; N_MODELS] {
        &self.filters
    }

    /// IMM mixing + per-model prediction.
    pub fn predict(&mut self, dt: f64) {
        // Mixing probabilities: μ_{i|j} = p_ij μ_i / c_j.
        let mut c = [0.0f64; N_MODELS];
        for (j, cj) in c.iter_mut().enumerate() {
            for i in 0..N_MODELS {
                *cj += self.params.transition[i][j] * self.probs[i];
            }
        }
        let mut mixed: Vec<(VecN, MatN)> = Vec::with_capacity(N_MODELS);
        for (j, &cj) in c.iter().enumerate() {
            let mut mix_state = VecN::zeros(STATE_DIM);
            let mut sin_sum = 0.0;
            let mut cos_sum = 0.0;
            for i in 0..N_MODELS {
                let mu = self.params.transition[i][j] * self.probs[i] / cj.max(1e-12);
                let s = self.filters[i].state();
                for k in [0, 1, 2, 4] {
                    mix_state[k] += mu * s[k];
                }
                sin_sum += mu * s[3].sin();
                cos_sum += mu * s[3].cos();
            }
            mix_state[3] = sin_sum.atan2(cos_sum);
            let mut mix_cov = MatN::zeros(STATE_DIM, STATE_DIM);
            for i in 0..N_MODELS {
                let mu = self.params.transition[i][j] * self.probs[i] / cj.max(1e-12);
                let mut d = self.filters[i].state() - &mix_state;
                d[3] = normalize_angle(d[3]);
                let spread = d.outer(&d);
                mix_cov = &mix_cov + &(self.filters[i].covariance() + &spread).scaled(mu);
            }
            mix_cov.symmetrize();
            mixed.push((mix_state, mix_cov));
        }
        for (j, (state, cov)) in mixed.into_iter().enumerate() {
            self.filters[j].set_state(state, cov);
            self.filters[j].predict(dt);
        }
        self.probs = c;
        let total: f64 = self.probs.iter().sum();
        for p in &mut self.probs {
            *p /= total.max(1e-12);
        }
    }

    /// Ordinary (single-measurement) update of every model; model
    /// probabilities re-weight by likelihood.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ImmFilter::predict`].
    pub fn update(&mut self, z: &VecN) {
        let mut likelihoods = [0.0f64; N_MODELS];
        for (j, f) in self.filters.iter_mut().enumerate() {
            likelihoods[j] = f.update(z).likelihood.max(1e-12);
        }
        self.reweight(&likelihoods);
    }

    /// PDA update: each model receives its own combined innovation and
    /// total association weight; the per-model association likelihoods
    /// re-weight the model probabilities.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ImmFilter::predict`].
    pub fn update_pda(&mut self, per_model: &[(VecN, f64, f64); N_MODELS]) {
        let mut likelihoods = [0.0f64; N_MODELS];
        for ((lk, (innovation, beta_total, likelihood)), j) in
            likelihoods.iter_mut().zip(per_model.iter()).zip(0..N_MODELS)
        {
            *lk = likelihood.max(1e-12);
            if *beta_total > 0.0 {
                let s = self.filters[j]
                    .predicted_measurement()
                    .expect("update requires predict")
                    .1
                    .clone();
                self.filters[j].update_with_innovation(innovation, &s, *beta_total);
            }
        }
        self.reweight(&likelihoods);
    }

    fn reweight(&mut self, likelihoods: &[f64; N_MODELS]) {
        let mut total = 0.0;
        for (p, lk) in self.probs.iter_mut().zip(likelihoods) {
            *p *= lk.max(1e-12);
            total += *p;
        }
        for p in &mut self.probs {
            *p /= total.max(1e-300);
        }
    }

    /// Serializes the bank's dynamic state (per-model filters and model
    /// probabilities); parameters are reconstructed by the caller at load.
    pub fn save_state(&self, w: &mut av_des::SnapWriter) {
        for f in &self.filters {
            f.save_state(w);
        }
        for &p in &self.probs {
            w.put_f64(p);
        }
    }

    /// Rebuilds a filter bank from configuration plus the dynamic state
    /// written by [`ImmFilter::save_state`].
    ///
    /// # Panics
    ///
    /// Panics on malformed checkpoint bytes.
    pub fn load_state(params: ImmParams, r: &mut av_des::SnapReader<'_>) -> ImmFilter {
        let filters = [
            Ukf::load_state(MODELS[0], params.noise.clone(), r),
            Ukf::load_state(MODELS[1], params.noise.clone(), r),
            Ukf::load_state(MODELS[2], params.noise.clone(), r),
        ];
        let mut probs = [0.0f64; N_MODELS];
        for p in &mut probs {
            *p = r.get_f64();
        }
        ImmFilter { params, filters, probs }
    }

    /// The probability-weighted combined estimate.
    pub fn estimate(&self) -> ImmEstimate {
        let mut state = VecN::zeros(STATE_DIM);
        let mut sin_sum = 0.0;
        let mut cos_sum = 0.0;
        for (j, f) in self.filters.iter().enumerate() {
            let s = f.state();
            for k in [0, 1, 2, 4] {
                state[k] += self.probs[j] * s[k];
            }
            sin_sum += self.probs[j] * s[3].sin();
            cos_sum += self.probs[j] * s[3].cos();
        }
        state[3] = sin_sum.atan2(cos_sum);
        let mut cov = MatN::zeros(STATE_DIM, STATE_DIM);
        for (j, f) in self.filters.iter().enumerate() {
            let mut d = f.state() - &state;
            d[3] = normalize_angle(d[3]);
            let spread = d.outer(&d);
            cov = &cov + &(f.covariance() + &spread).scaled(self.probs[j]);
        }
        cov.symmetrize();
        ImmEstimate { state, cov, model_probs: self.probs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(imm: &mut ImmFilter, positions: &[(f64, f64)], dt: f64) {
        for &(x, y) in positions {
            imm.predict(dt);
            imm.update(&VecN::from_slice(&[x, y]));
        }
    }

    #[test]
    fn straight_motion_favors_cv_or_ctrv() {
        let mut imm = ImmFilter::new(ImmParams::default(), 0.0, 0.0);
        let track: Vec<(f64, f64)> = (1..50).map(|i| (0.8 * i as f64, 0.0)).collect();
        feed(&mut imm, &track, 0.1);
        let probs = imm.model_probs();
        assert!(
            probs[0] + probs[1] > 0.7,
            "moving target must not look like random motion: {probs:?}"
        );
        let est = imm.estimate();
        assert!((est.state[2] - 8.0).abs() < 1.5, "combined speed {}", est.state[2]);
    }

    #[test]
    fn turning_motion_favors_ctrv_over_cv() {
        // Tight circle: radius 10 m, yaw rate 0.8 rad/s, speed 8 m/s.
        let dt = 0.1;
        let track: Vec<(f64, f64)> = (1..80)
            .map(|i| {
                let theta = 0.8 * dt * i as f64;
                (10.0 * theta.cos() + 10.0, 10.0 * theta.sin())
            })
            .collect();
        let mut imm2 = ImmFilter::new(ImmParams::default(), track[0].0, track[0].1);
        feed(&mut imm2, &track, dt);
        let probs = imm2.model_probs();
        assert!(probs[1] > probs[0], "CTRV should dominate on a turn: {probs:?}");
    }

    #[test]
    fn stationary_clutter_favors_random_motion() {
        let mut imm = ImmFilter::new(ImmParams::default(), 5.0, 5.0);
        // Jitter around a fixed point.
        let track: Vec<(f64, f64)> = (0..40)
            .map(|i| (5.0 + 0.05 * ((i % 3) as f64 - 1.0), 5.0 - 0.05 * ((i % 2) as f64)))
            .collect();
        feed(&mut imm, &track, 0.1);
        let est = imm.estimate();
        assert!(est.state[2].abs() < 1.0, "stationary target speed {}", est.state[2]);
    }

    #[test]
    fn model_probs_always_normalized() {
        let mut imm = ImmFilter::new(ImmParams::default(), 0.0, 0.0);
        let track: Vec<(f64, f64)> = (1..30).map(|i| (i as f64, (i as f64 * 0.3).sin())).collect();
        for &(x, y) in &track {
            imm.predict(0.1);
            imm.update(&VecN::from_slice(&[x, y]));
            let sum: f64 = imm.model_probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "probabilities drifted: {sum}");
        }
    }

    #[test]
    fn estimate_covariance_psd() {
        let mut imm = ImmFilter::new(ImmParams::default(), 0.0, 0.0);
        feed(&mut imm, &[(1.0, 0.1), (2.0, 0.2), (3.1, 0.2), (3.9, 0.3)], 0.1);
        let est = imm.estimate();
        assert!(est.cov.is_symmetric(1e-9));
        assert!(est.cov.cholesky().is_some());
    }

    #[test]
    fn combined_position_tracks_input() {
        let mut imm = ImmFilter::new(ImmParams::default(), 0.0, 0.0);
        let track: Vec<(f64, f64)> = (1..40).map(|i| (0.5 * i as f64, 2.0)).collect();
        feed(&mut imm, &track, 0.1);
        let est = imm.estimate();
        assert!((est.state[0] - 19.5).abs() < 0.5);
        assert!((est.state[1] - 2.0).abs() < 0.3);
    }
}
