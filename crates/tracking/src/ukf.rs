//! The unscented Kalman filter over the CTRV state space.
//!
//! State vector: `[px, py, v, yaw, yaw_rate]`. Measurements are 2D
//! positions (cluster centroids). Sigma points use the standard
//! scaled-unscented transform with additive process noise.

use av_geom::{normalize_angle, MatN, VecN};

/// Dimension of the state vector.
pub const STATE_DIM: usize = 5;
/// Dimension of the measurement vector (position only).
pub const MEAS_DIM: usize = 2;

const N_SIGMA: usize = 2 * STATE_DIM + 1;
const LAMBDA: f64 = 3.0 - STATE_DIM as f64;

/// The motion hypothesis a UKF propagates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotionModel {
    /// Constant velocity, fixed heading.
    ConstantVelocity,
    /// Constant turn rate and velocity (CTRV).
    ConstantTurnRate,
    /// Random motion: position stays, velocity decays — models stop-and-go
    /// and clutter, the third hypothesis in Autoware's tracker.
    RandomMotion,
}

/// Process/measurement noise intensities.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseParams {
    /// Longitudinal acceleration noise, m/s² (1σ).
    pub std_accel: f64,
    /// Yaw acceleration noise, rad/s² (1σ).
    pub std_yaw_accel: f64,
    /// Measurement position noise, m (1σ).
    pub std_meas: f64,
}

impl Default for NoiseParams {
    fn default() -> NoiseParams {
        NoiseParams { std_accel: 1.2, std_yaw_accel: 0.6, std_meas: 0.35 }
    }
}

/// Result of a measurement update.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Gaussian likelihood of the measurement under the predicted
    /// measurement distribution (used by IMM model probabilities).
    pub likelihood: f64,
    /// Mahalanobis distance² of the innovation (used for gating).
    pub nis: f64,
}

/// An unscented Kalman filter tracking one object under one motion model.
///
/// ```
/// use av_geom::VecN;
/// use av_tracking::{MotionModel, NoiseParams, Ukf};
///
/// let mut ukf = Ukf::new(MotionModel::ConstantVelocity, NoiseParams::default(), 1.0, 2.0);
/// ukf.predict(0.1);
/// let outcome = ukf.update(&VecN::from_slice(&[1.1, 2.0]));
/// assert!(outcome.likelihood > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ukf {
    model: MotionModel,
    noise: NoiseParams,
    state: VecN,
    cov: MatN,
    weights_mean: [f64; N_SIGMA],
    weights_cov: [f64; N_SIGMA],
    /// Cached predicted measurement state from the last `predict`.
    pred_meas: Option<(VecN, MatN)>,
}

impl Ukf {
    /// Creates a filter initialized at a measured position with zero
    /// velocity and a broad prior.
    pub fn new(model: MotionModel, noise: NoiseParams, px: f64, py: f64) -> Ukf {
        let state = VecN::from_slice(&[px, py, 0.0, 0.0, 0.0]);
        let cov = MatN::from_diagonal(&[
            noise.std_meas * noise.std_meas,
            noise.std_meas * noise.std_meas,
            4.0,
            1.0,
            0.3,
        ]);
        let mut weights_mean = [0.0; N_SIGMA];
        let mut weights_cov = [0.0; N_SIGMA];
        let denom = LAMBDA + STATE_DIM as f64;
        weights_mean[0] = LAMBDA / denom;
        weights_cov[0] = LAMBDA / denom;
        for i in 1..N_SIGMA {
            weights_mean[i] = 0.5 / denom;
            weights_cov[i] = 0.5 / denom;
        }
        Ukf { model, noise, state, cov, weights_mean, weights_cov, pred_meas: None }
    }

    /// The filter's motion model.
    pub fn model(&self) -> MotionModel {
        self.model
    }

    /// Current state `[px, py, v, yaw, yaw_rate]`.
    pub fn state(&self) -> &VecN {
        &self.state
    }

    /// Current state covariance (5×5).
    pub fn covariance(&self) -> &MatN {
        &self.cov
    }

    /// Replaces the state and covariance (IMM mixing does this).
    pub fn set_state(&mut self, state: VecN, cov: MatN) {
        assert_eq!(state.len(), STATE_DIM, "state dimension");
        assert_eq!((cov.rows(), cov.cols()), (STATE_DIM, STATE_DIM), "covariance shape");
        self.state = state;
        self.cov = cov;
        self.pred_meas = None;
    }

    fn sigma_points(&self) -> Option<Vec<VecN>> {
        let scaled = self.cov.scaled(LAMBDA + STATE_DIM as f64);
        let sqrt = scaled.cholesky()?;
        let mut points = Vec::with_capacity(N_SIGMA);
        points.push(self.state.clone());
        for i in 0..STATE_DIM {
            let col = sqrt.col(i);
            points.push(&self.state + &col);
            points.push(&self.state - &col);
        }
        Some(points)
    }

    fn propagate(&self, x: &VecN, dt: f64) -> VecN {
        let (px, py, v, yaw, yawd) = (x[0], x[1], x[2], x[3], x[4]);
        match self.model {
            MotionModel::ConstantVelocity => {
                VecN::from_slice(&[px + v * yaw.cos() * dt, py + v * yaw.sin() * dt, v, yaw, 0.0])
            }
            MotionModel::ConstantTurnRate => {
                if yawd.abs() > 1e-4 {
                    VecN::from_slice(&[
                        px + v / yawd * ((yaw + yawd * dt).sin() - yaw.sin()),
                        py + v / yawd * (-(yaw + yawd * dt).cos() + yaw.cos()),
                        v,
                        normalize_angle(yaw + yawd * dt),
                        yawd,
                    ])
                } else {
                    VecN::from_slice(&[
                        px + v * yaw.cos() * dt,
                        py + v * yaw.sin() * dt,
                        v,
                        normalize_angle(yaw + yawd * dt),
                        yawd,
                    ])
                }
            }
            MotionModel::RandomMotion => {
                // Velocity decays; position holds (plus process noise).
                VecN::from_slice(&[px, py, v * (1.0 - 0.5 * dt).max(0.0), yaw, 0.0])
            }
        }
    }

    fn process_noise(&self, dt: f64) -> MatN {
        let (sa, sy) = (self.noise.std_accel, self.noise.std_yaw_accel);
        let (dt2, dt3, dt4) = (dt * dt, dt * dt * dt, dt * dt * dt * dt);
        let qa = sa * sa;
        let qy = sy * sy;
        let mut q = MatN::zeros(STATE_DIM, STATE_DIM);
        // Discretized white-noise acceleration along the heading; since the
        // heading enters nonlinearly, use the isotropic position form.
        q[(0, 0)] = 0.25 * dt4 * qa;
        q[(1, 1)] = 0.25 * dt4 * qa;
        q[(0, 2)] = 0.5 * dt3 * qa;
        q[(2, 0)] = 0.5 * dt3 * qa;
        q[(1, 2)] = 0.5 * dt3 * qa;
        q[(2, 1)] = 0.5 * dt3 * qa;
        q[(2, 2)] = dt2 * qa;
        q[(3, 3)] = 0.25 * dt4 * qy;
        q[(3, 4)] = 0.5 * dt3 * qy;
        q[(4, 3)] = 0.5 * dt3 * qy;
        q[(4, 4)] = dt2 * qy;
        if self.model == MotionModel::RandomMotion {
            // Extra positional wander.
            q[(0, 0)] += 0.3 * dt2;
            q[(1, 1)] += 0.3 * dt2;
        }
        q
    }

    /// Propagates the state `dt` seconds and caches the predicted
    /// measurement distribution.
    pub fn predict(&mut self, dt: f64) {
        let Some(points) = self.sigma_points() else {
            // Covariance lost positive-definiteness; re-inflate and retry.
            self.cov.symmetrize();
            for i in 0..STATE_DIM {
                self.cov[(i, i)] += 1e-6;
            }
            if self.sigma_points().is_none() {
                self.cov = MatN::from_diagonal(&[1.0, 1.0, 4.0, 1.0, 0.3]);
            }
            return self.predict(dt);
        };
        let propagated: Vec<VecN> = points.iter().map(|p| self.propagate(p, dt)).collect();

        // Mean with circular yaw handling.
        let mut mean = VecN::zeros(STATE_DIM);
        for (w, p) in self.weights_mean.iter().zip(&propagated) {
            for k in [0, 1, 2, 4] {
                mean[k] += w * p[k];
            }
        }
        let (mut sin_sum, mut cos_sum) = (0.0, 0.0);
        for (w, p) in self.weights_mean.iter().zip(&propagated) {
            sin_sum += w * p[3].sin();
            cos_sum += w * p[3].cos();
        }
        mean[3] = sin_sum.atan2(cos_sum);

        let mut cov = self.process_noise(dt);
        for (w, p) in self.weights_cov.iter().zip(&propagated) {
            let mut d = p - &mean;
            d[3] = normalize_angle(d[3]);
            let outer = d.outer(&d);
            cov = &cov + &outer.scaled(*w);
        }
        cov.symmetrize();

        // Predicted measurement: H x = [px, py].
        let mut z_mean = VecN::zeros(MEAS_DIM);
        z_mean[0] = mean[0];
        z_mean[1] = mean[1];
        let mut s = MatN::from_diagonal(&[
            self.noise.std_meas * self.noise.std_meas,
            self.noise.std_meas * self.noise.std_meas,
        ]);
        for (w, p) in self.weights_cov.iter().zip(&propagated) {
            let dz = VecN::from_slice(&[p[0] - z_mean[0], p[1] - z_mean[1]]);
            s = &s + &dz.outer(&dz).scaled(*w);
        }

        self.state = mean;
        self.cov = cov;
        self.pred_meas = Some((z_mean, s));
    }

    /// Serializes the dynamic state (state vector and covariance).
    ///
    /// The model, noise parameters and sigma weights are configuration,
    /// reconstructed by the caller at load. The cached predicted
    /// measurement is *not* saved: every consumer calls
    /// [`Ukf::predict`] — which recomputes it — before reading it, so an
    /// empty cache after restore is unobservable.
    pub fn save_state(&self, w: &mut av_des::SnapWriter) {
        for &v in self.state.as_slice() {
            w.put_f64(v);
        }
        for row in 0..STATE_DIM {
            for col in 0..STATE_DIM {
                w.put_f64(self.cov[(row, col)]);
            }
        }
    }

    /// Rebuilds a filter from configuration plus the dynamic state written
    /// by [`Ukf::save_state`].
    ///
    /// # Panics
    ///
    /// Panics on malformed checkpoint bytes.
    pub fn load_state(
        model: MotionModel,
        noise: NoiseParams,
        r: &mut av_des::SnapReader<'_>,
    ) -> Ukf {
        let mut ukf = Ukf::new(model, noise, 0.0, 0.0);
        let state: Vec<f64> = (0..STATE_DIM).map(|_| r.get_f64()).collect();
        ukf.state = VecN::from_slice(&state);
        for row in 0..STATE_DIM {
            for col in 0..STATE_DIM {
                ukf.cov[(row, col)] = r.get_f64();
            }
        }
        ukf.pred_meas = None;
        ukf
    }

    /// Predicted measurement mean and innovation covariance from the last
    /// [`Ukf::predict`], or `None` before any prediction.
    pub fn predicted_measurement(&self) -> Option<(&VecN, &MatN)> {
        self.pred_meas.as_ref().map(|(z, s)| (z, s))
    }

    /// Kalman update against a position measurement `z = [px, py]`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Ukf::predict`] or with a measurement of
    /// the wrong dimension.
    pub fn update(&mut self, z: &VecN) -> UpdateOutcome {
        assert_eq!(z.len(), MEAS_DIM, "measurement dimension");
        let (z_pred, s) = self.pred_meas.clone().expect("update requires a prior predict");
        self.update_with_innovation(&(z - &z_pred), &s, 1.0)
    }

    /// PDA-style update with a combined innovation and an effective
    /// information weight `beta_total ∈ (0, 1]` (1 = ordinary update).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Ukf::predict`].
    pub fn update_with_innovation(
        &mut self,
        innovation: &VecN,
        s: &MatN,
        beta_total: f64,
    ) -> UpdateOutcome {
        let (z_pred, _) = self.pred_meas.clone().expect("update requires a prior predict");
        let s_inv = s.inverse().unwrap_or_else(|| MatN::identity(MEAS_DIM));

        // Cross covariance T = Σ w (x − x̄)(z − z̄)ᵀ, recomputed from the
        // linear measurement model: T = P H ᵀ = first two columns of P.
        let mut t = MatN::zeros(STATE_DIM, MEAS_DIM);
        for r in 0..STATE_DIM {
            t[(r, 0)] = self.cov[(r, 0)];
            t[(r, 1)] = self.cov[(r, 1)];
        }
        let k = &t * &s_inv;
        let correction = k.mul_vec(innovation).scaled(beta_total);
        self.state = &self.state + &correction;
        self.state[3] = normalize_angle(self.state[3]);
        let reduction = &(&k * s) * &k.transpose();
        self.cov = &self.cov - &reduction.scaled(beta_total);
        self.cov.symmetrize();
        // Floor the diagonal to keep PD under aggressive association.
        for i in 0..STATE_DIM {
            if self.cov[(i, i)] < 1e-9 {
                self.cov[(i, i)] = 1e-9;
            }
        }
        self.pred_meas = Some((z_pred, s.clone()));

        let nis = innovation.dot(&s_inv.mul_vec(innovation));
        let det = s.det().max(1e-12);
        let likelihood = (-0.5 * nis).exp() / (2.0 * std::f64::consts::PI * det.sqrt());
        UpdateOutcome { likelihood, nis }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track_target(model: MotionModel, positions: &[(f64, f64)], dt: f64) -> (Ukf, Vec<f64>) {
        let mut ukf = Ukf::new(model, NoiseParams::default(), positions[0].0, positions[0].1);
        let mut nis_values = Vec::new();
        for &(x, y) in &positions[1..] {
            ukf.predict(dt);
            let outcome = ukf.update(&VecN::from_slice(&[x, y]));
            nis_values.push(outcome.nis);
        }
        (ukf, nis_values)
    }

    fn straight_track(n: usize, speed: f64, dt: f64) -> Vec<(f64, f64)> {
        (0..n).map(|i| (speed * dt * i as f64, 1.0)).collect()
    }

    #[test]
    fn cv_estimates_speed_on_straight_track() {
        let (ukf, _) =
            track_target(MotionModel::ConstantVelocity, &straight_track(40, 8.0, 0.1), 0.1);
        let v = ukf.state()[2];
        let yaw = ukf.state()[3];
        assert!((v - 8.0).abs() < 1.0, "estimated speed {v}");
        assert!(yaw.abs() < 0.15, "estimated heading {yaw}");
    }

    #[test]
    fn ctrv_follows_turning_target() {
        // Target on a circle: radius 20 m, speed 8 m/s → yaw rate 0.4.
        let dt = 0.1;
        let positions: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let theta = 0.4 * dt * i as f64;
                (20.0 * theta.sin(), 20.0 * (1.0 - theta.cos()))
            })
            .collect();
        let (ukf, _) = track_target(MotionModel::ConstantTurnRate, &positions, dt);
        let yawd = ukf.state()[4];
        assert!((yawd - 0.4).abs() < 0.15, "estimated yaw rate {yawd}");
        let v = ukf.state()[2];
        assert!((v - 8.0).abs() < 1.5, "estimated speed {v}");
    }

    #[test]
    fn position_tracks_measurements() {
        let (ukf, _) =
            track_target(MotionModel::ConstantVelocity, &straight_track(30, 5.0, 0.1), 0.1);
        let expected_x = 5.0 * 0.1 * 29.0;
        assert!((ukf.state()[0] - expected_x).abs() < 0.5);
        assert!((ukf.state()[1] - 1.0).abs() < 0.3);
    }

    #[test]
    fn covariance_stays_symmetric_pd() {
        let (ukf, _) =
            track_target(MotionModel::ConstantTurnRate, &straight_track(50, 6.0, 0.1), 0.1);
        assert!(ukf.covariance().is_symmetric(1e-9));
        assert!(ukf.covariance().cholesky().is_some(), "covariance must stay PD");
    }

    #[test]
    fn nis_is_calibrated() {
        // For a well-modeled target, NIS should hover near MEAS_DIM = 2.
        let (_, nis) =
            track_target(MotionModel::ConstantVelocity, &straight_track(60, 8.0, 0.1), 0.1);
        let tail: Vec<f64> = nis[20..].to_vec();
        let mean_nis = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean_nis < 6.0, "filter inconsistent: mean NIS {mean_nis}");
    }

    #[test]
    fn prediction_grows_uncertainty() {
        let mut ukf = Ukf::new(MotionModel::ConstantVelocity, NoiseParams::default(), 0.0, 0.0);
        let before = ukf.covariance()[(0, 0)];
        ukf.predict(0.5);
        ukf.predict(0.5);
        let after = ukf.covariance()[(0, 0)];
        assert!(after > before, "position variance should grow without updates");
    }

    #[test]
    fn update_shrinks_uncertainty() {
        let mut ukf = Ukf::new(MotionModel::ConstantVelocity, NoiseParams::default(), 0.0, 0.0);
        ukf.predict(0.1);
        let before = ukf.covariance()[(0, 0)];
        ukf.update(&VecN::from_slice(&[0.0, 0.0]));
        let after = ukf.covariance()[(0, 0)];
        assert!(after < before);
    }

    #[test]
    fn random_motion_decays_velocity() {
        let mut ukf = Ukf::new(MotionModel::RandomMotion, NoiseParams::default(), 0.0, 0.0);
        let mut state = ukf.state().clone();
        state[2] = 10.0;
        ukf.set_state(state, ukf.covariance().clone());
        for _ in 0..10 {
            ukf.predict(0.2);
        }
        assert!(ukf.state()[2] < 5.0, "random-motion speed should decay");
    }

    #[test]
    fn likelihood_higher_for_consistent_measurement() {
        let mut a = Ukf::new(MotionModel::ConstantVelocity, NoiseParams::default(), 0.0, 0.0);
        a.predict(0.1);
        let near = a.clone().update(&VecN::from_slice(&[0.05, 0.0])).likelihood;
        let far = a.clone().update(&VecN::from_slice(&[3.0, 3.0])).likelihood;
        assert!(near > far);
    }

    #[test]
    #[should_panic(expected = "prior predict")]
    fn update_before_predict_panics() {
        let mut ukf = Ukf::new(MotionModel::ConstantVelocity, NoiseParams::default(), 0.0, 0.0);
        ukf.update(&VecN::from_slice(&[0.0, 0.0]));
    }
}

#[cfg(test)]
mod proptests {
    //! Seeded randomized property tests (fixed-seed PCG stream, so any
    //! failure reproduces exactly).
    use super::*;
    use av_des::RngStreams;

    /// Whatever (reasonable) measurement sequence arrives, the
    /// covariance stays symmetric and positive-definite.
    #[test]
    fn covariance_invariants_under_arbitrary_updates() {
        let mut rng = RngStreams::new(0x0cf).stream("ukf");
        for _ in 0..64 {
            let n = 1 + rng.uniform_usize(39);
            let measurements: Vec<(f64, f64)> =
                (0..n).map(|_| (rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0))).collect();
            let dt = rng.uniform(0.02, 0.5);
            let mut ukf = Ukf::new(
                MotionModel::ConstantTurnRate,
                NoiseParams::default(),
                measurements[0].0,
                measurements[0].1,
            );
            for &(x, y) in &measurements {
                ukf.predict(dt);
                ukf.update(&VecN::from_slice(&[x, y]));
                assert!(ukf.covariance().is_symmetric(1e-6));
                for i in 0..STATE_DIM {
                    assert!(ukf.covariance()[(i, i)] > 0.0);
                }
                assert!(ukf.state().as_slice().iter().all(|v| v.is_finite()));
            }
        }
    }
}
