//! The camera object-detection nodes: SSD300, SSD512 and YOLOv3-416.
//!
//! The paper's testbed runs real CUDA inference; its *observable*
//! behaviour along every measured axis is reproduced here by three
//! cooperating pieces:
//!
//! * [`NetworkDescriptor`] — per-layer FLOP/byte models of the three
//!   networks (VGG16-SSD and Darknet-53 topologies), from which the GPU
//!   kernel time, DMA volume and per-inference energy derive. The paper's
//!   contrasts — SSD512 ≈ 3× SSD300 compute, YOLO's high-occupancy
//!   kernels drawing more power per busy-second — fall out of these
//!   descriptors.
//! * [`postprocess`] — the *real* CPU post-processing: confidence
//!   ranking (the data-dependent sort the paper traces 71% of SSD512's
//!   CPU time and its 9.78% branch-misprediction rate to) and
//!   non-maximum suppression over IoU.
//! * [`VisionDetector`] — detection synthesis: ground-truth visible
//!   objects become noisy class-labeled boxes (miss/false-positive rates
//!   depend on size, occlusion and detector), then flow through the real
//!   post-processing.

#![warn(missing_docs)]

mod detector;
mod network;
pub mod postprocess;

pub use detector::{DetectionOutput, DetectorParams, VisionDetector};
pub use network::{DetectorKind, Layer, NetworkDescriptor};
pub use postprocess::{iou, nms, rank_candidates, ScoredBox};
