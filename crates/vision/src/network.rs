//! Layer-level compute models of the three detector networks.

use std::fmt;

/// Which vision detector a stack runs — the experimental variable of the
/// paper's Fig 5/6/8 and Tables III/V/VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// SSD with 512×512 input (VGG16 backbone).
    Ssd512,
    /// SSD with 300×300 input (VGG16 backbone).
    Ssd300,
    /// YOLOv3 with 416×416 input (Darknet-53 backbone).
    YoloV3,
}

impl DetectorKind {
    /// All detector kinds, in the paper's presentation order.
    pub const ALL: [DetectorKind; 3] =
        [DetectorKind::Ssd512, DetectorKind::Ssd300, DetectorKind::YoloV3];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Ssd512 => "SSD512",
            DetectorKind::Ssd300 => "SSD300",
            DetectorKind::YoloV3 => "YOLOv3",
        }
    }

    /// The cheapest detector (Fig 5: SSD300 has the lowest per-frame
    /// latency of the three) — the graceful-degradation fallback while
    /// a crashed primary detector restarts.
    pub fn cheapest() -> DetectorKind {
        DetectorKind::Ssd300
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One convolutional layer's compute/memory profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name (e.g. `conv4_3`).
    pub name: String,
    /// Output spatial size (square).
    pub out_size: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel size (square).
    pub kernel: usize,
}

impl Layer {
    /// Multiply-accumulate FLOPs of the layer (2 × MACs).
    pub fn flops(&self) -> u64 {
        2 * (self.out_size
            * self.out_size
            * self.in_channels
            * self.out_channels
            * self.kernel
            * self.kernel) as u64
    }

    /// Activation + weight bytes touched (fp32).
    pub fn bytes(&self) -> u64 {
        let activations = self.out_size * self.out_size * self.out_channels;
        let weights = self.in_channels * self.out_channels * self.kernel * self.kernel;
        (4 * (activations + weights)) as u64
    }
}

/// A full network: layers plus the execution characteristics that drive
/// the GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDescriptor {
    /// Network name.
    pub name: &'static str,
    /// Square input resolution.
    pub input_size: usize,
    /// The layer stack.
    pub layers: Vec<Layer>,
    /// Candidate boxes (anchors/priors) the head emits — the size of the
    /// array CPU post-processing must rank.
    pub num_candidates: usize,
    /// Object classes the head predicts.
    pub num_classes: usize,
    /// Fraction of the device's peak FLOP/s this network's kernels
    /// sustain. SSD's large uniform 3×3 convs sustain more of the peak
    /// than Darknet-53's many small 1×1 kernels. (Power per busy-second
    /// is governed separately by `energy_per_inference_j`, which is how
    /// Table VI shows YOLO's GPU power near SSD512's despite lower
    /// utilization.)
    pub gpu_efficiency: f64,
    /// Dynamic energy per inference, joules (calibrated to Table VI).
    pub energy_per_inference_j: f64,
}

fn vgg16(input: usize) -> Vec<Layer> {
    // (name, out_divisor, in_c, out_c) for the 13 conv layers; pooling
    // halves resolution after each block.
    let blocks: [(&str, usize, usize, usize); 13] = [
        ("conv1_1", 1, 3, 64),
        ("conv1_2", 1, 64, 64),
        ("conv2_1", 2, 64, 128),
        ("conv2_2", 2, 128, 128),
        ("conv3_1", 4, 128, 256),
        ("conv3_2", 4, 256, 256),
        ("conv3_3", 4, 256, 256),
        ("conv4_1", 8, 256, 512),
        ("conv4_2", 8, 512, 512),
        ("conv4_3", 8, 512, 512),
        ("conv5_1", 16, 512, 512),
        ("conv5_2", 16, 512, 512),
        ("conv5_3", 16, 512, 512),
    ];
    blocks
        .iter()
        .map(|&(name, div, in_c, out_c)| Layer {
            name: name.to_string(),
            out_size: input / div,
            in_channels: in_c,
            out_channels: out_c,
            kernel: 3,
        })
        .collect()
}

fn ssd_extras(input: usize) -> Vec<Layer> {
    // fc6/fc7 as dilated convs plus the extra feature layers.
    let mut layers = vec![
        Layer {
            name: "fc6".into(),
            out_size: input / 16,
            in_channels: 512,
            out_channels: 1024,
            kernel: 3,
        },
        Layer {
            name: "fc7".into(),
            out_size: input / 16,
            in_channels: 1024,
            out_channels: 1024,
            kernel: 1,
        },
        Layer {
            name: "conv6_2".into(),
            out_size: input / 32,
            in_channels: 1024,
            out_channels: 512,
            kernel: 3,
        },
        Layer {
            name: "conv7_2".into(),
            out_size: input / 64,
            in_channels: 512,
            out_channels: 256,
            kernel: 3,
        },
    ];
    // Detection heads over the main feature maps.
    for (name, div, in_c) in
        [("head4_3", 8usize, 512usize), ("head_fc7", 16, 1024), ("head6", 32, 512)]
    {
        layers.push(Layer {
            name: name.to_string(),
            out_size: input / div,
            in_channels: in_c,
            out_channels: 6 * 25, // 6 anchors × (21 classes + 4 offsets)
            kernel: 3,
        });
    }
    layers
}

fn darknet53(input: usize) -> Vec<Layer> {
    let mut layers = vec![Layer {
        name: "conv0".into(),
        out_size: input,
        in_channels: 3,
        out_channels: 32,
        kernel: 3,
    }];
    // Residual stages: (downsample to, channels, residual blocks).
    let stages: [(usize, usize, usize); 5] =
        [(2, 64, 1), (4, 128, 2), (8, 256, 8), (16, 512, 8), (32, 1024, 4)];
    for (div, c, blocks) in stages {
        layers.push(Layer {
            name: format!("down{div}"),
            out_size: input / div,
            in_channels: c / 2,
            out_channels: c,
            kernel: 3,
        });
        for b in 0..blocks {
            layers.push(Layer {
                name: format!("res{div}_{b}a"),
                out_size: input / div,
                in_channels: c,
                out_channels: c / 2,
                kernel: 1,
            });
            layers.push(Layer {
                name: format!("res{div}_{b}b"),
                out_size: input / div,
                in_channels: c / 2,
                out_channels: c,
                kernel: 3,
            });
        }
    }
    // FPN-style neck: per detection scale, alternating 1×1/3×3 conv
    // pairs (the five-conv blocks of the YOLOv3 head).
    for (scale, div, c) in [("n32", 32usize, 1024usize), ("n16", 16, 512), ("n8", 8, 256)] {
        for pair in 0..3 {
            layers.push(Layer {
                name: format!("{scale}_{pair}a"),
                out_size: input / div,
                in_channels: c,
                out_channels: c / 2,
                kernel: 1,
            });
            layers.push(Layer {
                name: format!("{scale}_{pair}b"),
                out_size: input / div,
                in_channels: c / 2,
                out_channels: c,
                kernel: 3,
            });
        }
    }
    // Three YOLO heads.
    for (name, div, in_c) in
        [("head32", 32usize, 1024usize), ("head16", 16, 512), ("head8", 8, 256)]
    {
        layers.push(Layer {
            name: name.to_string(),
            out_size: input / div,
            in_channels: in_c,
            out_channels: 255, // 3 anchors × (80 classes + 5)
            kernel: 1,
        });
    }
    layers
}

impl NetworkDescriptor {
    /// SSD512 (VGG16, 512×512, 24 564 priors).
    pub fn ssd512() -> NetworkDescriptor {
        let mut layers = vgg16(512);
        layers.extend(ssd_extras(512));
        NetworkDescriptor {
            name: "SSD512",
            input_size: 512,
            layers,
            num_candidates: 24_564,
            num_classes: 21,
            gpu_efficiency: 0.52,
            energy_per_inference_j: 9.0,
        }
    }

    /// SSD300 (VGG16, 300×300, 8 732 priors).
    pub fn ssd300() -> NetworkDescriptor {
        let mut layers = vgg16(300);
        layers.extend(ssd_extras(300));
        NetworkDescriptor {
            name: "SSD300",
            input_size: 300,
            layers,
            num_candidates: 8_732,
            num_classes: 21,
            gpu_efficiency: 0.50,
            energy_per_inference_j: 3.7,
        }
    }

    /// YOLOv3-416 (Darknet-53, 10 647 candidates).
    pub fn yolov3() -> NetworkDescriptor {
        NetworkDescriptor {
            name: "YOLOv3",
            input_size: 416,
            layers: darknet53(416),
            num_candidates: 10_647,
            num_classes: 80,
            gpu_efficiency: 0.25,
            energy_per_inference_j: 7.0,
        }
    }

    /// The descriptor for a detector kind.
    pub fn for_kind(kind: DetectorKind) -> NetworkDescriptor {
        match kind {
            DetectorKind::Ssd512 => NetworkDescriptor::ssd512(),
            DetectorKind::Ssd300 => NetworkDescriptor::ssd300(),
            DetectorKind::YoloV3 => NetworkDescriptor::yolov3(),
        }
    }

    /// Total forward-pass FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Total activation/weight bytes.
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::bytes).sum()
    }

    /// Input image bytes copied host→device per inference (fp32 CHW).
    pub fn input_bytes(&self) -> u64 {
        (4 * 3 * self.input_size * self.input_size) as u64
    }

    /// Kernel time on a device with `peak_flops` (FLOP/s), as the sum of
    /// per-layer roofline times at this network's sustained efficiency.
    pub fn gpu_kernel_seconds(&self, peak_flops: f64, mem_bandwidth: f64) -> f64 {
        let sustained = peak_flops * self.gpu_efficiency;
        self.layers
            .iter()
            .map(|l| {
                let compute = l.flops() as f64 / sustained;
                let memory = l.bytes() as f64 / mem_bandwidth;
                compute.max(memory) + 8e-6 // per-kernel launch
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_totals_match_published_scale() {
        // Published: YOLOv3-416 ≈ 65.9 BFLOPs (darknet's own count);
        // SSD300/SSD512 ≈ 31/90 GMACs → ~62/180 GFLOPs at 2 FLOPs/MAC.
        let ssd300 = NetworkDescriptor::ssd300().total_flops() as f64 / 1e9;
        let ssd512 = NetworkDescriptor::ssd512().total_flops() as f64 / 1e9;
        let yolo = NetworkDescriptor::yolov3().total_flops() as f64 / 1e9;
        assert!((45.0..80.0).contains(&ssd300), "SSD300 {ssd300} GFLOPs");
        assert!((150.0..220.0).contains(&ssd512), "SSD512 {ssd512} GFLOPs");
        assert!((55.0..90.0).contains(&yolo), "YOLOv3 {yolo} GFLOPs");
        // Relative ordering is what the figures depend on.
        assert!(ssd512 > yolo && yolo > ssd300);
        assert!(ssd512 / ssd300 > 2.0);
    }

    #[test]
    fn kernel_time_ordering_matches_fig8() {
        // On a GTX-1080-class device (8.9 TFLOP/s, 320 GB/s):
        let gpu_time = |n: &NetworkDescriptor| n.gpu_kernel_seconds(8.9e12, 320e9) * 1e3;
        let t512 = gpu_time(&NetworkDescriptor::ssd512());
        let t300 = gpu_time(&NetworkDescriptor::ssd300());
        let tyolo = gpu_time(&NetworkDescriptor::yolov3());
        // Fig 8: SSD512's GPU share ≈ 40 ms; YOLO ≈ 30 ms; SSD300 smaller.
        assert!((32.0..50.0).contains(&t512), "SSD512 GPU {t512} ms");
        assert!((24.0..36.0).contains(&tyolo), "YOLO GPU {tyolo} ms");
        assert!(t300 < tyolo && tyolo < t512);
    }

    #[test]
    fn candidates_match_published_counts() {
        assert_eq!(NetworkDescriptor::ssd512().num_candidates, 24_564);
        assert_eq!(NetworkDescriptor::ssd300().num_candidates, 8_732);
        assert_eq!(NetworkDescriptor::yolov3().num_candidates, 10_647);
    }

    #[test]
    fn for_kind_roundtrips() {
        for kind in DetectorKind::ALL {
            let n = NetworkDescriptor::for_kind(kind);
            assert_eq!(n.name, kind.name());
            assert!(!n.layers.is_empty());
            assert!(n.total_bytes() > 0);
            assert!(n.input_bytes() > 0);
        }
    }

    #[test]
    fn layer_flops_formula() {
        let l =
            Layer { name: "t".into(), out_size: 10, in_channels: 4, out_channels: 8, kernel: 3 };
        assert_eq!(l.flops(), 2 * 10 * 10 * 4 * 8 * 9);
        assert_eq!(l.bytes(), 4 * (10 * 10 * 8 + 4 * 8 * 9));
    }

    #[test]
    fn display_names() {
        assert_eq!(DetectorKind::Ssd512.to_string(), "SSD512");
        assert_eq!(DetectorKind::YoloV3.to_string(), "YOLOv3");
    }
}
