//! Detection synthesis: ground-truth frames → noisy detections through
//! the real post-processing path.

use crate::network::{DetectorKind, NetworkDescriptor};
use crate::postprocess::{nms, ScoredBox};
use av_des::StreamRng;
use av_perception::fusion::VisionDetection2d;
use av_perception::ObjectClass;
use av_world::{AgentKind, ImageFrame};

/// Detection-quality knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorParams {
    /// Score threshold applied before NMS.
    pub score_threshold: f32,
    /// IoU threshold for NMS.
    pub iou_threshold: f64,
    /// False-positive candidates per unit of scene clutter.
    pub false_positive_rate: f64,
}

impl Default for DetectorParams {
    fn default() -> DetectorParams {
        DetectorParams { score_threshold: 0.30, iou_threshold: 0.45, false_positive_rate: 0.08 }
    }
}

/// One frame's detection result plus the work numbers the cost model
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutput {
    /// Final (post-NMS) detections.
    pub detections: Vec<VisionDetection2d>,
    /// Candidates the network head emitted (= priors/anchors ranked by
    /// the CPU post-processing pass).
    pub candidates_scored: usize,
    /// Above-threshold candidates that entered NMS.
    pub raw_candidates: usize,
}

/// A vision-detection node's algorithmic core.
///
/// ```
/// use av_des::RngStreams;
/// use av_vision::{DetectorKind, VisionDetector};
/// use av_world::{CameraConfig, CameraModel, ScenarioConfig, World};
///
/// let world = World::generate(&ScenarioConfig::smoke_test());
/// let frame = CameraModel::new(CameraConfig::default()).capture(&world, &world.snapshot(0.0));
/// let detector = VisionDetector::new(DetectorKind::YoloV3, Default::default());
/// let mut rng = RngStreams::new(1).stream("vision");
/// let out = detector.detect(&frame, &mut rng);
/// assert_eq!(out.candidates_scored, 10_647);
/// ```
#[derive(Debug, Clone)]
pub struct VisionDetector {
    kind: DetectorKind,
    network: NetworkDescriptor,
    params: DetectorParams,
}

impl VisionDetector {
    /// Creates a detector of the given kind.
    pub fn new(kind: DetectorKind, params: DetectorParams) -> VisionDetector {
        VisionDetector { kind, network: NetworkDescriptor::for_kind(kind), params }
    }

    /// The detector kind.
    pub fn kind(&self) -> DetectorKind {
        self.kind
    }

    /// The network compute model.
    pub fn network(&self) -> &NetworkDescriptor {
        &self.network
    }

    /// Base detection probability for an unoccluded, well-sized object.
    fn base_detect_prob(&self) -> f64 {
        match self.kind {
            DetectorKind::Ssd512 => 0.96,
            DetectorKind::Ssd300 => 0.88,
            DetectorKind::YoloV3 => 0.93,
        }
    }

    /// Resolution floor: boxes smaller than this (pixels of width) fade
    /// out. Higher-resolution inputs resolve smaller objects.
    fn min_box_px(&self) -> f64 {
        match self.kind {
            DetectorKind::Ssd512 => 10.0,
            DetectorKind::Ssd300 => 18.0,
            DetectorKind::YoloV3 => 12.0,
        }
    }

    fn class_of(kind: AgentKind) -> ObjectClass {
        match kind {
            AgentKind::Car => ObjectClass::Car,
            AgentKind::Pedestrian => ObjectClass::Pedestrian,
            AgentKind::Cyclist => ObjectClass::Cyclist,
        }
    }

    /// Runs detection on a frame.
    ///
    /// Ground-truth visible objects become candidate boxes with
    /// probability depending on occlusion and apparent size; clutter adds
    /// false-positive candidates; the real NMS pass cleans the set up.
    pub fn detect(&self, frame: &ImageFrame, rng: &mut StreamRng) -> DetectionOutput {
        let mut candidates: Vec<ScoredBox> = Vec::new();

        for obj in &frame.visible {
            let (x, y, w, h) = obj.bbox;
            let size_factor = ((w / self.min_box_px() - 0.5).clamp(0.0, 1.0)).powf(0.5);
            let p = self.base_detect_prob() * (1.0 - obj.occlusion) * size_factor;
            if !rng.chance(p) {
                continue;
            }
            let class = if rng.chance(0.97) {
                Self::class_of(obj.kind)
            } else {
                // Rare confusion between classes.
                match obj.kind {
                    AgentKind::Car => ObjectClass::Cyclist,
                    AgentKind::Pedestrian => ObjectClass::Cyclist,
                    AgentKind::Cyclist => ObjectClass::Pedestrian,
                }
            };
            // Several anchors fire per object: the raw head output NMS
            // must deduplicate.
            let firings = 1 + rng.uniform_usize(3);
            for _ in 0..firings {
                let jx = rng.normal(0.0, 0.03 * w.max(4.0));
                let jy = rng.normal(0.0, 0.03 * h.max(4.0));
                let jw = w * rng.normal(1.0, 0.05).clamp(0.8, 1.2);
                let jh = h * rng.normal(1.0, 0.05).clamp(0.8, 1.2);
                let score = (rng.normal(0.75, 0.12) as f32).clamp(0.05, 0.999);
                candidates.push(ScoredBox { bbox: (x + jx, y + jy, jw, jh), score, class });
            }
        }

        // Clutter-driven false positives (buildings, texture).
        let expected_fp = frame.clutter * self.params.false_positive_rate;
        let mut fp_budget = expected_fp;
        while fp_budget > 0.0 {
            let emit = if fp_budget >= 1.0 { true } else { rng.chance(fp_budget) };
            if emit {
                let w = rng.uniform(12.0, 90.0);
                let h = rng.uniform(12.0, 120.0);
                let x = rng.uniform(0.0, (frame.width as f64 - w).max(1.0));
                let y = rng.uniform(0.0, (frame.height as f64 - h).max(1.0));
                let score = (rng.normal(0.35, 0.08) as f32).clamp(0.05, 0.9);
                let class = match rng.uniform_usize(3) {
                    0 => ObjectClass::Car,
                    1 => ObjectClass::Pedestrian,
                    _ => ObjectClass::Cyclist,
                };
                candidates.push(ScoredBox { bbox: (x, y, w, h), score, class });
            }
            fp_budget -= 1.0;
        }

        let raw_candidates = candidates.len();
        let kept = nms(&candidates, self.params.score_threshold, self.params.iou_threshold);
        let detections = kept
            .into_iter()
            .map(|b| VisionDetection2d { bbox: b.bbox, class: b.class, confidence: b.score as f64 })
            .collect();
        DetectionOutput {
            detections,
            candidates_scored: self.network.num_candidates,
            raw_candidates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::RngStreams;
    use av_world::{CameraConfig, CameraModel, ScenarioConfig, World};

    fn frames() -> Vec<ImageFrame> {
        let world = World::generate(&ScenarioConfig::smoke_test());
        let cam = CameraModel::new(CameraConfig::default());
        (0..20).map(|i| cam.capture(&world, &world.snapshot(i as f64 * 0.5))).collect()
    }

    #[test]
    fn detects_most_clear_objects() {
        let detector = VisionDetector::new(DetectorKind::Ssd512, DetectorParams::default());
        let mut rng = RngStreams::new(3).stream("det");
        let mut visible_total = 0usize;
        let mut detected_total = 0usize;
        for frame in frames() {
            let clear =
                frame.visible.iter().filter(|v| v.occlusion < 0.2 && v.bbox.2 > 25.0).count();
            let out = detector.detect(&frame, &mut rng);
            visible_total += clear;
            // Count detections near ground-truth boxes.
            detected_total += frame
                .visible
                .iter()
                .filter(|v| out.detections.iter().any(|d| crate::iou(d.bbox, v.bbox) > 0.3))
                .count()
                .min(clear);
        }
        if visible_total > 0 {
            let recall = detected_total as f64 / visible_total as f64;
            assert!(recall > 0.6, "recall too low: {recall} ({detected_total}/{visible_total})");
        }
    }

    #[test]
    fn ssd300_misses_more_small_objects_than_ssd512() {
        let mut rng_a = RngStreams::new(3).stream("a");
        let mut rng_b = RngStreams::new(3).stream("a"); // same stream: paired draws
        let big = VisionDetector::new(DetectorKind::Ssd512, DetectorParams::default());
        let small = VisionDetector::new(DetectorKind::Ssd300, DetectorParams::default());
        let mut det512 = 0usize;
        let mut det300 = 0usize;
        for frame in frames() {
            det512 += big.detect(&frame, &mut rng_a).detections.len();
            det300 += small.detect(&frame, &mut rng_b).detections.len();
        }
        assert!(det512 >= det300, "SSD512 {det512} vs SSD300 {det300}");
    }

    #[test]
    fn candidates_scored_is_network_constant() {
        let detector = VisionDetector::new(DetectorKind::Ssd300, DetectorParams::default());
        let mut rng = RngStreams::new(3).stream("det");
        for frame in frames().iter().take(3) {
            assert_eq!(detector.detect(frame, &mut rng).candidates_scored, 8_732);
        }
    }

    #[test]
    fn output_is_nms_clean() {
        let detector = VisionDetector::new(DetectorKind::YoloV3, DetectorParams::default());
        let mut rng = RngStreams::new(9).stream("det");
        for frame in frames() {
            let out = detector.detect(&frame, &mut rng);
            for (i, a) in out.detections.iter().enumerate() {
                assert!(a.confidence >= 0.30_f64);
                for b in &out.detections[i + 1..] {
                    if a.class == b.class {
                        assert!(crate::iou(a.bbox, b.bbox) <= 0.45 + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_stream() {
        let detector = VisionDetector::new(DetectorKind::Ssd512, DetectorParams::default());
        let frame = &frames()[0];
        let a = detector.detect(frame, &mut RngStreams::new(5).stream("x"));
        let b = detector.detect(frame, &mut RngStreams::new(5).stream("x"));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_frame_yields_only_possible_false_positives() {
        let detector = VisionDetector::new(DetectorKind::YoloV3, DetectorParams::default());
        let frame =
            ImageFrame { width: 1280, height: 960, visible: vec![], lights: vec![], clutter: 0.0 };
        let out = detector.detect(&frame, &mut RngStreams::new(1).stream("e"));
        assert!(out.detections.is_empty());
        assert_eq!(out.raw_candidates, 0);
    }
}
