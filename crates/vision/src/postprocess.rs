//! Detector CPU post-processing: confidence ranking and non-maximum
//! suppression.
//!
//! This is the code path the paper's microarchitectural analysis keys on:
//! "71% of CPU time of SSD512 was executing a sorting algorithm in the
//! output layer of its CNN ... because the branches inside the sorting
//! will depend on the unpredictable input" (§IV-C). The ranking here is a
//! real comparison sort over real score data; the uarch experiments
//! instrument exactly this kernel.

use av_perception::ObjectClass;

/// A candidate box with score and class, as emitted by a detection head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredBox {
    /// Pixel box `(x, y, w, h)`.
    pub bbox: (f64, f64, f64, f64),
    /// Confidence score.
    pub score: f32,
    /// Predicted class.
    pub class: ObjectClass,
}

/// Intersection-over-union of two pixel boxes.
pub fn iou(a: (f64, f64, f64, f64), b: (f64, f64, f64, f64)) -> f64 {
    let (ax, ay, aw, ah) = a;
    let (bx, by, bw, bh) = b;
    let ix = (ax + aw).min(bx + bw) - ax.max(bx);
    let iy = (ay + ah).min(by + bh) - ay.max(by);
    if ix <= 0.0 || iy <= 0.0 {
        return 0.0;
    }
    let inter = ix * iy;
    let union = aw * ah + bw * bh - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Sorts candidates by descending score — the detector's ranking pass.
///
/// Deliberately a comparison sort over data-dependent keys (scores), the
/// branch-misprediction source Table VII attributes SSD512's 9.78% rate
/// to.
pub fn rank_candidates(candidates: &mut [ScoredBox]) {
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
}

/// Greedy per-class non-maximum suppression.
///
/// `candidates` need not be sorted; ranking happens internally. Boxes
/// with score below `score_threshold` are discarded; surviving boxes
/// suppress same-class boxes overlapping more than `iou_threshold`.
pub fn nms(candidates: &[ScoredBox], score_threshold: f32, iou_threshold: f64) -> Vec<ScoredBox> {
    let mut sorted: Vec<ScoredBox> =
        candidates.iter().filter(|c| c.score >= score_threshold).copied().collect();
    rank_candidates(&mut sorted);
    let mut keep: Vec<ScoredBox> = Vec::new();
    'candidate: for c in sorted {
        for k in &keep {
            if k.class == c.class && iou(k.bbox, c.bbox) > iou_threshold {
                continue 'candidate;
            }
        }
        keep.push(c);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(x: f64, score: f32, class: ObjectClass) -> ScoredBox {
        ScoredBox { bbox: (x, 0.0, 10.0, 10.0), score, class }
    }

    #[test]
    fn iou_identical_is_one() {
        let b = (5.0, 5.0, 10.0, 20.0);
        assert!((iou(b, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        assert_eq!(iou((0.0, 0.0, 10.0, 10.0), (20.0, 0.0, 10.0, 10.0)), 0.0);
        assert_eq!(iou((0.0, 0.0, 10.0, 10.0), (0.0, 20.0, 10.0, 10.0)), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Boxes sharing half their area: inter = 50, union = 150.
        let v = iou((0.0, 0.0, 10.0, 10.0), (5.0, 0.0, 10.0, 10.0));
        assert!((v - 50.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn iou_symmetric() {
        let a = (0.0, 0.0, 8.0, 12.0);
        let b = (3.0, 4.0, 10.0, 6.0);
        assert!((iou(a, b) - iou(b, a)).abs() < 1e-12);
    }

    #[test]
    fn ranking_sorts_descending() {
        let mut boxes = vec![
            boxed(0.0, 0.2, ObjectClass::Car),
            boxed(1.0, 0.9, ObjectClass::Car),
            boxed(2.0, 0.5, ObjectClass::Car),
        ];
        rank_candidates(&mut boxes);
        let scores: Vec<f32> = boxes.iter().map(|b| b.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn nms_suppresses_overlapping_same_class() {
        let candidates = vec![
            boxed(0.0, 0.9, ObjectClass::Car),
            boxed(1.0, 0.8, ObjectClass::Car), // IoU with first ≈ 0.82
            boxed(30.0, 0.7, ObjectClass::Car),
        ];
        let keep = nms(&candidates, 0.1, 0.5);
        assert_eq!(keep.len(), 2);
        assert_eq!(keep[0].score, 0.9);
        assert_eq!(keep[1].score, 0.7);
    }

    #[test]
    fn nms_keeps_overlapping_different_classes() {
        let candidates =
            vec![boxed(0.0, 0.9, ObjectClass::Car), boxed(1.0, 0.8, ObjectClass::Pedestrian)];
        assert_eq!(nms(&candidates, 0.1, 0.5).len(), 2);
    }

    #[test]
    fn nms_applies_score_threshold() {
        let candidates =
            vec![boxed(0.0, 0.05, ObjectClass::Car), boxed(30.0, 0.9, ObjectClass::Car)];
        let keep = nms(&candidates, 0.1, 0.5);
        assert_eq!(keep.len(), 1);
        assert_eq!(keep[0].score, 0.9);
    }

    #[test]
    fn nms_is_idempotent() {
        let candidates = vec![
            boxed(0.0, 0.9, ObjectClass::Car),
            boxed(2.0, 0.8, ObjectClass::Car),
            boxed(30.0, 0.7, ObjectClass::Pedestrian),
            boxed(31.0, 0.6, ObjectClass::Pedestrian),
        ];
        let once = nms(&candidates, 0.1, 0.5);
        let twice = nms(&once, 0.1, 0.5);
        assert_eq!(once, twice);
    }

    #[test]
    fn nms_empty_input() {
        assert!(nms(&[], 0.1, 0.5).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    //! Seeded randomized property tests (fixed-seed PCG stream, so any
    //! failure reproduces exactly).
    use super::*;
    use av_des::{RngStreams, StreamRng};

    fn random_box(rng: &mut StreamRng) -> ScoredBox {
        ScoredBox {
            bbox: (
                rng.uniform(0.0, 500.0),
                rng.uniform(0.0, 500.0),
                rng.uniform(1.0, 100.0),
                rng.uniform(1.0, 100.0),
            ),
            score: rng.next_f64() as f32,
            class: match rng.uniform_usize(3) {
                0 => ObjectClass::Car,
                1 => ObjectClass::Pedestrian,
                _ => ObjectClass::Cyclist,
            },
        }
    }

    fn random_boxes(rng: &mut StreamRng, max: usize) -> Vec<ScoredBox> {
        (0..rng.uniform_usize(max)).map(|_| random_box(rng)).collect()
    }

    /// IoU is always in [0, 1] and symmetric.
    #[test]
    fn iou_bounded_and_symmetric() {
        let mut rng = RngStreams::new(0x10f).stream("iou");
        for _ in 0..512 {
            let a = random_box(&mut rng);
            let b = random_box(&mut rng);
            let v = iou(a.bbox, b.bbox);
            assert!((0.0..=1.0).contains(&v));
            assert!((v - iou(b.bbox, a.bbox)).abs() < 1e-12);
        }
    }

    /// NMS output: no same-class pair overlaps above the threshold, and
    /// every kept box appears in the input.
    #[test]
    fn nms_postconditions() {
        let mut rng = RngStreams::new(0x10f).stream("nms");
        for _ in 0..128 {
            let candidates = random_boxes(&mut rng, 60);
            let keep = nms(&candidates, 0.1, 0.5);
            for (i, a) in keep.iter().enumerate() {
                assert!(candidates.contains(a));
                for b in &keep[i + 1..] {
                    if a.class == b.class {
                        assert!(iou(a.bbox, b.bbox) <= 0.5 + 1e-12);
                    }
                }
            }
            assert!(keep.len() <= candidates.len());
            // Scores descending.
            for w in keep.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    /// Ranking is a permutation sorted by score.
    #[test]
    fn ranking_is_sorted_permutation() {
        let mut rng = RngStreams::new(0x10f).stream("rank");
        for _ in 0..128 {
            let mut boxes = random_boxes(&mut rng, 50);
            let original = boxes.clone();
            rank_candidates(&mut boxes);
            assert_eq!(boxes.len(), original.len());
            for w in boxes.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
            for b in &boxes {
                assert!(original.contains(b));
            }
        }
    }
}
