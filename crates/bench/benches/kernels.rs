//! Wall-clock benchmarks of the real algorithm kernels — the substrate's
//! own performance (wall-clock), complementing the modeled latencies.

use av_bench::microbench::Bench;
use av_des::RngStreams;
use av_geom::{Pose, Vec3};
use av_perception::{
    ClusterParams, EuclideanCluster, NdtMatcher, NdtParams, RayGroundFilter, RayGroundParams,
};
use av_pointcloud::{KdTree, NdtGrid, PointCloud, VoxelGrid};
use av_vision::{nms, rank_candidates, ScoredBox};
use av_world::{LidarConfig, LidarModel, ScenarioConfig, World};
use std::hint::black_box;

fn realistic_sweep() -> PointCloud {
    let world = World::generate(&ScenarioConfig::urban_drive());
    let lidar = LidarModel::new(LidarConfig::default());
    let mut rng = RngStreams::new(7).stream("bench-lidar");
    lidar.scan(&world, &world.snapshot(30.0), &mut rng)
}

fn bench_voxel_filter(c: &mut Bench) {
    let sweep = realistic_sweep();
    let filter = VoxelGrid::new(1.0);
    c.bench_function("voxel_grid_filter/sweep", |b| {
        b.iter(|| black_box(filter.filter(black_box(&sweep))))
    });
    c.bench_function("voxel_grid_filter/sweep_reference", |b| {
        b.iter(|| black_box(filter.filter_reference(black_box(&sweep))))
    });
}

fn bench_kdtree(c: &mut Bench) {
    let sweep = realistic_sweep();
    let positions: Vec<Vec3> = sweep.positions().collect();
    c.bench_function("kdtree/build", |b| {
        b.iter(|| black_box(KdTree::build(black_box(&positions))))
    });
    let tree = KdTree::build(&positions);
    c.bench_function("kdtree/radius_search", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            tree.radius_search_into(black_box(Vec3::new(5.0, 2.0, -1.0)), 0.75, &mut buf);
            black_box(buf.len())
        })
    });
}

fn bench_ground_filter(c: &mut Bench) {
    let sweep = realistic_sweep();
    let filter = RayGroundFilter::new(RayGroundParams::default());
    c.bench_function("ray_ground_filter/sweep", |b| {
        b.iter(|| black_box(filter.split(black_box(&sweep))))
    });
}

fn bench_clustering(c: &mut Bench) {
    let sweep = realistic_sweep();
    let split = RayGroundFilter::new(RayGroundParams::default()).split(&sweep);
    let clusterer = EuclideanCluster::new(ClusterParams::default());
    c.bench_function("euclidean_cluster/sweep", |b| {
        b.iter(|| black_box(clusterer.cluster(black_box(&split.no_ground))))
    });
    c.bench_function("euclidean_cluster/sweep_reference", |b| {
        b.iter(|| black_box(clusterer.cluster_reference(black_box(&split.no_ground))))
    });
}

fn bench_ndt(c: &mut Bench) {
    let world = World::generate(&ScenarioConfig::urban_drive());
    let lidar = LidarModel::new(LidarConfig::default());
    let mut rng = RngStreams::new(7).stream("bench-ndt");
    // Small map patch around the start.
    let mut map = PointCloud::new();
    for i in 0..20 {
        let scene = world.snapshot(i as f64);
        let mut pose = scene.ego.pose;
        pose.translation.z = lidar.config().mount_height;
        map.append(&lidar.scan(&world, &scene, &mut rng).transformed(&pose));
    }
    let map = VoxelGrid::new(0.5).filter(&map);
    let grid = NdtGrid::build(&map, 2.0, 6);
    let matcher = NdtMatcher::new(grid, NdtParams::default());

    let scene = world.snapshot(5.0);
    let sweep = lidar.scan(&world, &scene, &mut rng);
    let filtered = VoxelGrid::new(1.0).filter(&sweep);
    let lifted = filtered.transformed(&Pose::new(
        Vec3::new(0.0, 0.0, lidar.config().mount_height),
        Default::default(),
    ));
    let mut guess = scene.ego.pose;
    guess.translation.z = 0.0;
    c.bench_function("ndt_matching/align", |b| {
        b.iter(|| black_box(matcher.align(black_box(&lifted), black_box(&guess))))
    });
}

fn bench_nms(c: &mut Bench) {
    // SSD512-scale candidate ranking: the hot CPU loop of §IV-C.
    let mut rng = RngStreams::new(9).stream("bench-nms");
    let candidates: Vec<ScoredBox> = (0..24_564)
        .map(|_| ScoredBox {
            bbox: (
                rng.uniform(0.0, 1200.0),
                rng.uniform(0.0, 900.0),
                rng.uniform(8.0, 120.0),
                rng.uniform(8.0, 160.0),
            ),
            score: rng.next_f64() as f32,
            class: av_perception::ObjectClass::Car,
        })
        .collect();
    c.bench_function("vision/rank_24564_candidates", |b| {
        b.iter(|| {
            let mut work = candidates.clone();
            rank_candidates(black_box(&mut work));
            black_box(work.len())
        })
    });
    c.bench_function("vision/nms_24564_candidates", |b| {
        b.iter(|| black_box(nms(black_box(&candidates), 0.3, 0.45).len()))
    });
}

fn main() {
    let mut c = Bench::new().sample_size(20);
    bench_voxel_filter(&mut c);
    bench_kdtree(&mut c);
    bench_ground_filter(&mut c);
    bench_clustering(&mut c);
    bench_ndt(&mut c);
    bench_nms(&mut c);
}
