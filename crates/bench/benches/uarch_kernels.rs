//! Table VII / Fig 7's regeneration bench: runs the simulated-counter
//! kernels, prints the paper-style rows, and benchmarks the simulators
//! themselves.

use av_bench::microbench::Bench;
use av_core::experiments::{fig7, table7};
use av_uarch::{run_kernel, Cache, CacheConfig, GsharePredictor, KernelKind, Predictor};
use std::hint::black_box;

fn bench_uarch(c: &mut Bench) {
    println!("\nTable VII (scale 8):\n{}", table7(8, 2020));
    println!("\nFig 7 (scale 8):\n{}", fig7(8, 2020));

    for kind in KernelKind::ALL {
        c.bench_function(&format!("uarch_kernel/{}", kind.node_name()), |b| {
            b.iter(|| black_box(run_kernel(black_box(kind), 1, 2020)))
        });
    }

    // Raw simulator structures.
    c.bench_function("cache/1M_streaming_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::default());
            for i in 0..1_000_000u64 {
                cache.access(i * 8, i % 4 == 0);
            }
            black_box(cache.stats())
        })
    });
    c.bench_function("gshare/1M_branches", |b| {
        b.iter(|| {
            let mut predictor = GsharePredictor::default_config();
            let mut x = 42u64;
            for _ in 0..1_000_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                predictor.observe(0x400, (x >> 60).is_multiple_of(3));
            }
            black_box(predictor.stats())
        })
    });
}

fn main() {
    let mut c = Bench::new().sample_size(10);
    bench_uarch(&mut c);
}
