//! Fig 5's regeneration bench: drives the full stack per detector and
//! benchmarks the simulation throughput, printing the per-node latency
//! rows the figure plots.

use av_bench::microbench::Bench;
use av_core::experiments::fig5_table;
use av_core::stack::{run_drive, RunConfig, StackConfig};
use av_vision::DetectorKind;
use std::hint::black_box;

fn bench_node_latency(c: &mut Bench) {
    let run = RunConfig::seconds(20.0);
    for kind in DetectorKind::ALL {
        // Print the Fig 5 rows once per detector (the artifact itself).
        let report = run_drive(&StackConfig::paper_default(kind), &run);
        println!("\nFig 5 (with {kind}), 20 s drive:\n{}", fig5_table(&report));

        let config = StackConfig::smoke_test(kind);
        let quick = RunConfig::seconds(5.0);
        c.bench_function(&format!("drive_5s_smoke/{kind}"), |b| {
            b.iter(|| black_box(run_drive(black_box(&config), black_box(&quick))))
        });
    }
}

fn main() {
    let mut c = Bench::new().sample_size(10);
    bench_node_latency(&mut c);
}
