//! Fig 6's regeneration bench: end-to-end computation-path latency, plus
//! a throughput benchmark of the whole virtual-time engine.

use av_bench::microbench::Bench;
use av_core::experiments::fig6_table;
use av_core::stack::{build_map, run_drive, RunConfig, StackConfig};
use av_des::RngStreams;
use av_vision::DetectorKind;
use av_world::{LidarModel, World};
use std::hint::black_box;

fn bench_e2e_paths(c: &mut Bench) {
    let run = RunConfig::seconds(20.0);
    for kind in DetectorKind::ALL {
        let report = run_drive(&StackConfig::paper_default(kind), &run);
        println!("\nFig 6 (with {kind}), 20 s drive:\n{}", fig6_table(&report));
        if let Some((name, s)) = report.end_to_end() {
            println!("end-to-end (worst path {name}): mean {:.1} ms, p99 {:.1} ms", s.mean, s.p99);
        }
    }

    // How fast does the engine replay a drive?
    let config = StackConfig::smoke_test(DetectorKind::YoloV3);
    let quick = RunConfig::seconds(10.0);
    c.bench_function("engine/10s_smoke_drive", |b| {
        b.iter(|| black_box(run_drive(black_box(&config), black_box(&quick))))
    });

    // Map building (the ndt_mapping step) on the smoke world.
    let world = World::generate(&config.scenario);
    let lidar = LidarModel::new(config.lidar.clone());
    c.bench_function("engine/build_map_smoke", |b| {
        b.iter(|| {
            let mut rng = RngStreams::new(1).stream("bench-map");
            black_box(build_map(black_box(&world), &lidar, 2.0, &mut rng))
        })
    });
}

fn main() {
    let mut c = Bench::new().sample_size(10);
    bench_e2e_paths(&mut c);
}
