//! Ablation benches for the design choices DESIGN.md calls out: how the
//! paper's phenomena respond to the platform knobs.
//!
//! * core count → queueing tails (Finding 1's CPU side)
//! * subscription queue capacity → drop behaviour (Table III's mechanism)
//! * memory-bandwidth contention exponent → co-runner tail inflation
//!
//! Each sweep prints a paper-style table; one configuration is also
//! Criterion-timed so regressions in engine throughput show up.

use av_bench::microbench::Bench;
use av_core::stack::{run_drive, RunConfig, StackConfig};
use av_core::topics::nodes;
use av_profiling::Table;
use av_vision::DetectorKind;
use std::hint::black_box;

fn run_cfg(mutate: impl FnOnce(&mut StackConfig)) -> av_core::stack::RunReport {
    let mut config = StackConfig::paper_default(DetectorKind::Ssd512);
    mutate(&mut config);
    run_drive(&config, &RunConfig::seconds(30.0))
}

fn sweep_cores() {
    let mut table = Table::with_headers(&[
        "Cores",
        "costmap_obj p99 (ms)",
        "ndt p99 (ms)",
        "CPU util",
        "vision mean (ms)",
    ]);
    for cores in [2usize, 4, 6, 8, 12] {
        let report = run_cfg(|c| c.calib.cpu.cores = cores);
        table.add_row(vec![
            cores.to_string(),
            format!("{:.1}", report.node_summary(nodes::COSTMAP_GENERATOR_OBJ).p99),
            format!("{:.1}", report.node_summary(nodes::NDT_MATCHING).p99),
            format!("{:.0}%", report.cpu.utilization(report.cores, report.elapsed) * 100.0),
            format!("{:.1}", report.node_summary(nodes::VISION_DETECTION).mean),
        ]);
    }
    println!("\nAblation: core count vs queueing tails (SSD512, 30 s):\n{table}");
}

fn sweep_contention_exponent() {
    let mut table = Table::with_headers(&[
        "Contention exponent",
        "costmap_obj p99 (ms)",
        "cluster p99 (ms)",
        "vision mean (ms)",
    ]);
    for exponent in [1.0, 1.4, 1.7, 2.0] {
        let report = run_cfg(|c| c.calib.cpu.contention_exponent = exponent);
        table.add_row(vec![
            format!("{exponent:.1}"),
            format!("{:.1}", report.node_summary(nodes::COSTMAP_GENERATOR_OBJ).p99),
            format!("{:.1}", report.node_summary(nodes::EUCLIDEAN_CLUSTER).p99),
            format!("{:.1}", report.node_summary(nodes::VISION_DETECTION).mean),
        ]);
    }
    println!("\nAblation: bandwidth-contention exponent (SSD512, 30 s):\n{table}");
}

fn sweep_camera_rate() {
    // Table III's mechanism: the drop rate is set by service time vs
    // inter-arrival time. Sweeping the camera rate moves SSD512 across
    // the keep-up boundary.
    let mut table =
        Table::with_headers(&["Camera rate (Hz)", "/image_raw drop rate", "vision mean (ms)"]);
    for rate in [10.0, 12.5, 15.0, 20.0] {
        let report = run_cfg(|c| c.camera.rate_hz = rate);
        let drops = report
            .drops
            .iter()
            .find(|d| d.topic == "/image_raw")
            .map(|d| d.drop_rate())
            .unwrap_or(0.0);
        table.add_row(vec![
            format!("{rate:.1}"),
            format!("{:.1}%", drops * 100.0),
            format!("{:.1}", report.node_summary(nodes::VISION_DETECTION).mean),
        ]);
    }
    println!("\nAblation: camera rate vs SSD512 drop rate (30 s):\n{table}");
}

fn bench_ablations(c: &mut Bench) {
    sweep_cores();
    sweep_contention_exponent();
    sweep_camera_rate();

    let config = StackConfig::smoke_test(DetectorKind::Ssd512);
    let quick = RunConfig::seconds(5.0);
    c.bench_function("ablation_baseline/5s_smoke_ssd512", |b| {
        b.iter(|| black_box(run_drive(black_box(&config), black_box(&quick))))
    });
}

fn main() {
    let mut c = Bench::new().sample_size(10);
    bench_ablations(&mut c);
}
