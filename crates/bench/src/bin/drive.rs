//! `drive` — runs one simulated drive, durably checkpointed.
//!
//! ```text
//! drive [--world <smoke|paper>] [--point <json>] [--duration <s>]
//!       [--trace] [--ckpt-dir <dir>] [--ckpt-every <s>]
//!       [--trace-out <file>] [--metrics-out <file>] [--summary-out <file>]
//! ```
//!
//! The single-drive consumer of the durable checkpoint store
//! ([`av_core::ckptstore`]). With `--ckpt-dir`, the run warm-starts
//! from the newest stored barrier of this exact configuration — a
//! barrier some *earlier process* captured — and simulates only the
//! remainder; with `--ckpt-every <s>` it also captures (and persists,
//! crash-safely) a checkpoint at every such interval plus one at the
//! horizon, so a killed process loses at most one interval of work.
//! Because every capture is byte-faithful, the resumed run's outputs —
//! golden hash, Chrome trace, metrics CSV — are identical to a straight
//! cold run; the cross-process store tests pin exactly that.
//!
//! `--summary-out` writes a small JSON whose bytes are a pure function
//! of the configuration (never of how much was resumed), so two
//! processes arriving at the same horizon can be `cmp`-ed directly.

use av_core::ckptstore::CkptStore;
use av_core::determinism::run_hash;
use av_core::stack::{
    checkpoint_drive, drive_fingerprint, resume_drive, resume_drive_checkpointed, run_drive,
    Checkpoint, RunConfig, StackConfig,
};
use av_sweep::{SweepPoint, WorldKind};
use av_trace::export::{render_chrome_trace, render_metrics_csv};
use av_trace::json;
use std::path::PathBuf;

struct Options {
    world: WorldKind,
    point: SweepPoint,
    duration_s: f64,
    trace: bool,
    ckpt_dir: Option<PathBuf>,
    ckpt_every_s: Option<f64>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    summary_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: drive [--world <smoke|paper>] [--point <json>] [--duration <s>] [--trace] \
         [--ckpt-dir <dir>] [--ckpt-every <s>] [--trace-out <file>] [--metrics-out <file>] \
         [--summary-out <file>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        world: WorldKind::Smoke,
        point: SweepPoint::default(),
        duration_s: 8.0,
        trace: false,
        ckpt_dir: None,
        ckpt_every_s: None,
        trace_out: None,
        metrics_out: None,
        summary_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--world" => {
                options.world = match args.next().expect("--world needs a name").as_str() {
                    "smoke" => WorldKind::Smoke,
                    "paper" => WorldKind::Paper,
                    other => {
                        eprintln!("unknown world {other:?} (try smoke, paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--point" => {
                let text = args.next().expect("--point needs a JSON object");
                let value = json::parse(&text).unwrap_or_else(|e| {
                    eprintln!("--point is not valid JSON: {e}");
                    std::process::exit(2);
                });
                options.point = SweepPoint::from_json_value(&value).unwrap_or_else(|e| {
                    eprintln!("invalid --point: {e}");
                    std::process::exit(2);
                });
            }
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                options.duration_s = value.parse().expect("invalid duration");
            }
            "--trace" => options.trace = true,
            "--ckpt-dir" => {
                options.ckpt_dir =
                    Some(PathBuf::from(args.next().expect("--ckpt-dir needs a directory")));
            }
            "--ckpt-every" => {
                let value = args.next().expect("--ckpt-every needs seconds");
                options.ckpt_every_s = Some(value.parse().expect("invalid --ckpt-every value"));
            }
            "--trace-out" => {
                options.trace_out =
                    Some(PathBuf::from(args.next().expect("--trace-out needs a file")));
            }
            "--metrics-out" => {
                options.metrics_out =
                    Some(PathBuf::from(args.next().expect("--metrics-out needs a file")));
            }
            "--summary-out" => {
                options.summary_out =
                    Some(PathBuf::from(args.next().expect("--summary-out needs a file")));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    assert!(
        options.duration_s.is_finite() && options.duration_s > 0.0,
        "--duration must be positive"
    );
    if let Some(every) = options.ckpt_every_s {
        assert!(every.is_finite() && every > 0.0, "--ckpt-every must be positive");
        assert!(options.ckpt_dir.is_some(), "--ckpt-every needs --ckpt-dir");
    }
    options
}

/// Persists a checkpoint, warning instead of dying: losing a snapshot
/// only costs future warm starts, never this run's outputs.
fn persist(store: &CkptStore, checkpoint: &Checkpoint) {
    if let Err(e) = store.put(checkpoint) {
        eprintln!("warning: could not persist checkpoint: {e}");
    }
}

fn main() {
    let options = parse_args();
    let config: StackConfig = options.point.apply(&options.world.base_config());
    let run = if options.trace {
        RunConfig::seconds(options.duration_s).with_trace()
    } else {
        RunConfig::seconds(options.duration_s)
    };
    let fingerprint = drive_fingerprint(&config);
    let horizon_ns = (options.duration_s * 1e9).round() as u64;

    let store = options.ckpt_dir.as_ref().map(|dir| {
        let (store, recovery) = CkptStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open checkpoint store {}: {e}", dir.display()));
        eprint!("{}", recovery.render());
        store
    });

    // Warm start: the newest stored barrier of this exact configuration
    // (and tracing mode) at or before the horizon.
    let mut cursor: Option<Checkpoint> =
        store.as_ref().and_then(|st| st.best_resume(fingerprint, options.trace, horizon_ns));
    if let Some(cp) = &cursor {
        eprintln!(
            "warm start: resuming fingerprint {fingerprint:#018x} from stored barrier {:.1} s",
            cp.barrier_s()
        );
    }
    let resumed_from_s = cursor.as_ref().map(Checkpoint::barrier_s);

    // Periodic captures: run barrier to barrier, persisting each
    // snapshot through the store's crash-safe path. Capture is
    // horizon-independent, so a snapshot taken at the end of a short
    // leg is byte-identical to one taken mid-flight of the full drive.
    if let (Some(st), Some(every)) = (store.as_ref(), options.ckpt_every_s) {
        let mut barrier_s = every;
        while barrier_s < options.duration_s - 1e-9 {
            let already = cursor.as_ref().is_some_and(|cp| cp.barrier_s() >= barrier_s - 1e-9);
            if !already {
                let leg = if options.trace {
                    RunConfig::seconds(barrier_s).with_trace()
                } else {
                    RunConfig::seconds(barrier_s)
                };
                let cp = match &cursor {
                    Some(from) => resume_drive_checkpointed(&config, &leg, from, barrier_s).1,
                    None => checkpoint_drive(&config, &leg, barrier_s).1,
                };
                persist(st, &cp);
                cursor = Some(cp);
            }
            barrier_s += every;
        }
    }

    // The final leg produces the run's actual report; with a store, it
    // also captures the horizon so a later process can reuse or extend
    // this drive without re-simulating anything.
    let report = match (&store, &cursor) {
        // The store already holds the horizon: a pure end-of-run drain,
        // with nothing new to capture.
        (_, Some(from)) if from.barrier_s() >= options.duration_s - 1e-9 => {
            resume_drive(&config, &run, from)
        }
        (Some(st), Some(from)) => {
            let (report, cp) = resume_drive_checkpointed(&config, &run, from, options.duration_s);
            persist(st, &cp);
            report
        }
        (Some(st), None) => {
            let (report, cp) = checkpoint_drive(&config, &run, options.duration_s);
            persist(st, &cp);
            report
        }
        (None, Some(from)) => resume_drive(&config, &run, from),
        (None, None) => run_drive(&config, &run),
    };
    let hash = run_hash(&report);

    if let Some(path) = &options.trace_out {
        let trace = report.trace.as_ref().expect("--trace-out needs --trace");
        std::fs::write(path, render_chrome_trace("drive", trace)).expect("write trace");
    }
    if let Some(path) = &options.metrics_out {
        let trace = report.trace.as_ref().expect("--metrics-out needs --trace");
        std::fs::write(path, render_metrics_csv(trace)).expect("write metrics");
    }
    if let Some(path) = &options.summary_out {
        // Deterministic bytes only: no resume provenance, no store
        // state — two processes reaching the same horizon must agree.
        let summary = format!(
            "{{\n  \"world\": \"{}\",\n  \"point\": \"{}\",\n  \"duration_s\": {:?},\n  \
             \"fingerprint\": \"{fingerprint:#018x}\",\n  \"run_hash\": \"{hash:#018x}\"\n}}\n",
            options.world.name(),
            options.point.label(),
            options.duration_s
        );
        std::fs::write(path, summary).expect("write summary");
    }

    match resumed_from_s {
        Some(s) => println!(
            "drive {}: {:.1} s horizon, resumed at {s:.1} s, run hash {hash:#018x}",
            options.point.label(),
            options.duration_s
        ),
        None => println!(
            "drive {}: {:.1} s horizon, cold, run hash {hash:#018x}",
            options.point.label(),
            options.duration_s
        ),
    }
    if let (Some(st), Some(dir)) = (&store, &options.ckpt_dir) {
        println!(
            "checkpoint store {}: {} entr{} ({} B)",
            dir.display(),
            st.len(),
            if st.len() == 1 { "y" } else { "ies" },
            st.total_bytes()
        );
    }
}
