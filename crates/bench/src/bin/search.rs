//! `search` — runs a scenario-space search and writes its trajectory.
//!
//! ```text
//! search [--spec <file.json> | --builtin <smoke>]
//!        [--jobs <N>] [--check-jobs <N,M,...>]
//!        [--resume <trajectory.json>] [--results <dir>] [--list]
//! ```
//!
//! The spec (see `specs/search_*.json`) names an objective and a
//! strategy — bisection boundary finding along one knob, or seeded
//! worst-case successive halving over several. Each batch of
//! evaluations is an independent set of simulated drives fanned out over
//! `--jobs` worker threads; every batch decision is a pure function of
//! prior run outputs. Artifacts land under `--results` (default
//! `results/search/`):
//!
//! * `search_summary.txt` — the plan, the budget curve, the answer,
//! * `search_trajectory.txt` — every batch and evaluation,
//! * `search_trajectory.json` — the machine-readable trajectory; feed it
//!   back with `--resume` to replay or continue a run without paying for
//!   the already-evaluated batches,
//! * `SEARCH_hashes.json` — the golden-hash manifest.
//!
//! `--check-jobs 1,8` reruns the whole search from scratch at each
//! listed level and **exits nonzero** unless every artifact byte and
//! golden hash is identical.
//!
//! `--bench-resume <file>` runs the search twice — cold (every
//! evaluation simulates its full horizon from virtual time zero) and
//! warm (halving rungs resume their survivors from the previous rung's
//! checkpoints, with the evaluation cache on) — **exits nonzero**
//! unless both produce the identical search hash, and writes the
//! measured counts (evaluations, simulated virtual seconds, wall
//! clock, warm resumes, cache hits) to the given JSON file. This is
//! the E-resume experiment of `EXPERIMENTS.md`.

use av_core::ckptstore::CkptStore;
use av_core::parallel::effective_jobs;
use av_sweep::search::{run_search_with_store, trajectory_from_json};
use av_sweep::{
    run_search, run_search_instrumented, search_artifacts, BatchRecord, SearchArtifacts, SearchSpec,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Options {
    spec: SearchSpec,
    jobs: usize,
    check_jobs: Vec<usize>,
    prior: Vec<BatchRecord>,
    results_dir: PathBuf,
    list: bool,
    bench_resume: Option<PathBuf>,
    ckpt_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: search [--spec <file.json> | --builtin <smoke>] [--jobs <N>] \
         [--check-jobs <N,M,...>] [--resume <trajectory.json>] [--results <dir>] [--list] \
         [--bench-resume <file.json>] [--ckpt-dir <dir>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut spec = None;
    let mut jobs = None;
    let mut check_jobs: Vec<usize> = Vec::new();
    let mut prior = Vec::new();
    let mut results_dir = PathBuf::from("results/search");
    let mut list = false;
    let mut bench_resume = None;
    let mut ckpt_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => {
                let path = args.next().expect("--spec needs a file");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                spec = Some(SearchSpec::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("invalid search spec {path}: {e}");
                    std::process::exit(2);
                }));
            }
            "--builtin" => {
                let name = args.next().expect("--builtin needs a name");
                spec = Some(SearchSpec::builtin(&name).unwrap_or_else(|| {
                    eprintln!("unknown builtin search {name:?} (try smoke)");
                    std::process::exit(2);
                }));
            }
            "--resume" => {
                let path = args.next().expect("--resume needs a trajectory.json");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                prior = trajectory_from_json(&text).unwrap_or_else(|e| {
                    eprintln!("invalid trajectory {path}: {e}");
                    std::process::exit(2);
                });
            }
            "--jobs" | "-j" => {
                let value = args.next().expect("--jobs needs a thread count");
                jobs = Some(value.parse().expect("invalid --jobs value"));
            }
            "--check-jobs" => {
                let value = args.next().expect("--check-jobs needs a comma-separated list");
                check_jobs = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("invalid --check-jobs value"))
                    .collect();
                assert!(!check_jobs.is_empty(), "--check-jobs needs at least one level");
            }
            "--results" => {
                results_dir = PathBuf::from(args.next().expect("--results needs a directory"));
            }
            "--list" => list = true,
            "--bench-resume" => {
                bench_resume =
                    Some(PathBuf::from(args.next().expect("--bench-resume needs a file")));
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(PathBuf::from(args.next().expect("--ckpt-dir needs a directory")));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if jobs.is_none() {
        jobs = check_jobs.first().copied();
    }
    Options {
        spec: spec.unwrap_or_else(SearchSpec::builtin_smoke),
        jobs: effective_jobs(jobs),
        check_jobs,
        prior,
        results_dir,
        list,
        bench_resume,
        ckpt_dir,
    }
}

fn write_artifacts(dir: &Path, artifacts: &SearchArtifacts) {
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(dir.join("search_summary.txt"), &artifacts.summary_txt).expect("write summary");
    std::fs::write(dir.join("search_trajectory.txt"), &artifacts.trajectory_txt)
        .expect("write trajectory");
    std::fs::write(dir.join("search_trajectory.json"), &artifacts.trajectory_json)
        .expect("write trajectory json");
    std::fs::write(dir.join("SEARCH_hashes.json"), &artifacts.hashes_json).expect("write hashes");
}

/// The E-resume experiment: one cold search, one warm search, identical
/// outcome demanded, measured costs written to `path`.
fn bench_resume(options: &Options, path: &Path) {
    println!("# search bench-resume {:?}: jobs {}\n", options.spec.name, options.jobs);
    eprintln!("cold search (no checkpoints, no cache)...");
    let start = Instant::now();
    let (cold, cold_stats) = run_search_instrumented(&options.spec, options.jobs, &[], false);
    let cold_wall_s = start.elapsed().as_secs_f64();
    eprintln!("warm search (checkpointed rungs + evaluation cache)...");
    let start = Instant::now();
    let (warm, warm_stats) = run_search_instrumented(&options.spec, options.jobs, &[], true);
    let warm_wall_s = start.elapsed().as_secs_f64();

    if cold.search_hash != warm.search_hash {
        eprintln!(
            "CHECKPOINT VIOLATION: warm search hash {:#018x} != cold search hash {:#018x}",
            warm.search_hash, cold.search_hash
        );
        std::process::exit(1);
    }
    // Warm artifacts are the canonical ones — they are byte-identical to
    // cold's, which the hash equality above just proved.
    let artifacts = search_artifacts(&options.spec, &warm);
    write_artifacts(&options.results_dir, &artifacts);

    let saved_s = cold_stats.simulated_s - warm_stats.simulated_s;
    let fields = [
        ("spec", format!("\"{}\"", options.spec.name)),
        ("jobs", options.jobs.to_string()),
        ("search_hash", format!("\"{:#018x}\"", warm.search_hash)),
        ("cold_evaluations", cold_stats.evaluations.to_string()),
        ("cold_simulated_s", format!("{:.3}", cold_stats.simulated_s)),
        ("cold_wall_s", format!("{cold_wall_s:.3}")),
        ("warm_evaluations", warm_stats.evaluations.to_string()),
        ("warm_simulated_s", format!("{:.3}", warm_stats.simulated_s)),
        ("warm_wall_s", format!("{warm_wall_s:.3}")),
        ("warm_resumes", warm_stats.warm_resumes.to_string()),
        ("resumed_prefix_s", format!("{:.3}", warm_stats.resumed_prefix_s)),
        ("cache_hits", warm_stats.cache_hits.to_string()),
        ("virtual_seconds_saved", format!("{saved_s:.3}")),
    ];
    let body =
        fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect::<Vec<_>>().join(",\n");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create bench dir");
        }
    }
    std::fs::write(path, format!("{{\n{body}\n}}\n")).expect("write bench-resume json");

    println!(
        "cold: {} evaluation(s), {:.1} virtual s simulated, {cold_wall_s:.1} s wall",
        cold_stats.evaluations, cold_stats.simulated_s
    );
    println!(
        "warm: {} evaluation(s), {:.1} virtual s simulated, {warm_wall_s:.1} s wall \
         ({} warm resume(s) skipping {:.1} virtual s, {} cache hit(s))",
        warm_stats.evaluations,
        warm_stats.simulated_s,
        warm_stats.warm_resumes,
        warm_stats.resumed_prefix_s,
        warm_stats.cache_hits
    );
    println!(
        "identical search hash {:#018x}; warm saved {saved_s:.1} virtual s \
         ({:.0}% of cold); record: {}",
        warm.search_hash,
        100.0 * saved_s / cold_stats.simulated_s.max(f64::MIN_POSITIVE),
        path.display()
    );
}

fn main() {
    let options = parse_args();
    if options.list {
        print!("{}", options.spec.describe());
        return;
    }
    if let Some(path) = options.bench_resume.clone() {
        bench_resume(&options, &path);
        return;
    }
    println!("# search {:?}: jobs {}\n", options.spec.name, options.jobs);

    // A durable checkpoint store survives this process: halving rungs
    // resume from whatever barriers an earlier search left behind, and
    // persist their own. The store never changes an output byte — the
    // cross-jobs check below would catch it if it did.
    let store = options.ckpt_dir.as_ref().map(|dir| {
        let (store, recovery) = CkptStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open checkpoint store {}: {e}", dir.display()));
        eprint!("{}", recovery.render());
        store
    });

    let start = Instant::now();
    let (outcome, stats) =
        run_search_with_store(&options.spec, options.jobs, &options.prior, store.as_ref());
    let search_s = start.elapsed().as_secs_f64();
    let artifacts = search_artifacts(&options.spec, &outcome);

    write_artifacts(&options.results_dir, &artifacts);
    print!("{}", artifacts.summary_txt);
    println!("search golden hash: {:#018x}", artifacts.search_hash);
    println!(
        "artifacts: {} ({} evaluation(s) took {search_s:.1} s)",
        options.results_dir.display(),
        outcome.evaluations()
    );
    if let (Some(store), Some(dir)) = (&store, &options.ckpt_dir) {
        println!(
            "checkpoint store {}: {} entr{} ({} B); {} disk resume(s) skipping {:.1} virtual s, \
             {} evaluation(s) served whole from disk",
            dir.display(),
            store.len(),
            if store.len() == 1 { "y" } else { "ies" },
            store.total_bytes(),
            stats.store_resumes,
            stats.store_prefix_s,
            stats.store_hits
        );
    }

    // Cross-`--jobs` determinism check: rerun the whole search from
    // scratch (no prior) at every other requested level; every artifact
    // byte must match, which also proves any `--resume` prefix above was
    // byte-faithful to a fresh run.
    let verify_levels: Vec<usize> =
        options.check_jobs.iter().copied().filter(|&j| j != options.jobs).collect();
    if !verify_levels.is_empty() {
        for level in verify_levels {
            eprintln!("determinism check: rerunning search with --jobs {level}...");
            let rerun = run_search(&options.spec, level, &[]);
            let other = search_artifacts(&options.spec, &rerun);
            let mut violations = Vec::new();
            if other.search_hash != artifacts.search_hash {
                violations.push(format!(
                    "search hash {:#018x} != {:#018x}",
                    other.search_hash, artifacts.search_hash
                ));
            }
            if other != artifacts {
                violations.push("search artifact bytes differ".to_string());
            }
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!(
                        "DETERMINISM VIOLATION between --jobs {} and --jobs {level}: {v}",
                        options.jobs
                    );
                }
                std::process::exit(1);
            }
        }
        println!(
            "search determinism check passed: jobs {:?} all reproduce hash {:#018x}",
            options.check_jobs, artifacts.search_hash
        );
    }
}
