//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick | --duration <seconds>] [--jobs <N>] [ARTIFACT...]
//!       [--results <dir>] [--csv <dir>] [--trace] [--check-jobs <N,M,...>]
//!
//! ARTIFACT: --fig5 --fig6 --fig7 --fig8 --table3 --table5 --table6
//!           --table7 --findings   (default: all)
//! ```
//!
//! The full (default) run replays the 8-minute drive once per detector
//! plus two isolation runs. Each drive is an independent deterministic
//! simulation, so the matrix fans out over `--jobs` worker threads
//! (default: all cores) without changing a single virtual-time result —
//! the golden determinism hash printed at the end is byte-identical for
//! any `--jobs` value. `--quick` shortens the drive to 60 s.
//!
//! `--trace` records the `av-trace` event timeline during every drive and
//! writes `trace_<detector>.json` (Chrome trace-event format, loadable in
//! Perfetto) plus `metrics_<detector>.csv` per full-stack run; their FNV
//! hashes are recorded in `BENCH_repro.json`. `--check-jobs 1,8` reruns
//! the whole matrix at each listed thread count and **exits nonzero** if
//! the golden hash — or any rendered trace artifact byte — differs
//! between levels.
//!
//! Tables are written under `--results` (default `results/`) with stable
//! ordering and no timestamps, so reruns diff clean; wall-clock timings
//! go to `BENCH_repro.json` in the same directory.

use av_bench::{paper_config, paper_run};
use av_core::determinism::{self, Fnv64};
use av_core::experiments;
use av_core::findings::FindingsReport;
use av_core::parallel::effective_jobs;
use av_core::stack::{RunConfig, RunReport};
use av_profiling::Table;
use av_trace::export::{render_chrome_trace, render_metrics_csv};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    run: RunConfig,
    jobs: usize,
    check_jobs: Vec<usize>,
    artifacts: HashSet<String>,
    results_dir: PathBuf,
    csv_dir: Option<PathBuf>,
}

const ALL_ARTIFACTS: [&str; 9] =
    ["fig5", "fig6", "fig7", "fig8", "table3", "table5", "table6", "table7", "findings"];

fn parse_args() -> Options {
    let mut run = paper_run();
    let mut trace = false;
    let mut jobs = None;
    let mut check_jobs: Vec<usize> = Vec::new();
    let mut artifacts = HashSet::new();
    let mut results_dir = PathBuf::from("results");
    let mut csv_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => run = av_bench::quick_run(),
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                run.duration_s = Some(value.parse().expect("invalid duration"));
            }
            "--trace" => trace = true,
            "--jobs" | "-j" => {
                let value = args.next().expect("--jobs needs a thread count");
                jobs = Some(value.parse().expect("invalid --jobs value"));
            }
            "--check-jobs" => {
                let value = args.next().expect("--check-jobs needs a comma-separated list");
                check_jobs = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("invalid --check-jobs value"))
                    .collect();
                assert!(!check_jobs.is_empty(), "--check-jobs needs at least one level");
            }
            "--results" => {
                results_dir = PathBuf::from(args.next().expect("--results needs a directory"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv needs a directory")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick | --duration <s>] [--jobs <N>] [--trace] \
                     [--check-jobs <N,M,...>] [--results <dir>] [--csv <dir>] \
                     [--fig5 ... --findings]"
                );
                std::process::exit(0);
            }
            other => {
                let name = other.trim_start_matches("--");
                if ALL_ARTIFACTS.contains(&name) {
                    artifacts.insert(name.to_string());
                } else {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    if artifacts.is_empty() {
        artifacts = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }
    if trace {
        run = run.with_trace();
    }
    // With --check-jobs and no explicit --jobs, the primary run uses the
    // first listed level so one of the checked levels comes for free.
    if jobs.is_none() {
        jobs = check_jobs.first().copied();
    }
    Options { run, jobs: effective_jobs(jobs), check_jobs, artifacts, results_dir, csv_dir }
}

/// FNV-1a 64 hash of rendered artifact bytes, formatted like the golden
/// determinism hash.
fn bytes_hash(text: &str) -> String {
    let mut h = Fnv64::new();
    h.write_bytes(text.as_bytes());
    format!("{:#018x}", h.finish())
}

fn emit(options: &Options, name: &str, title: &str, table: &Table) {
    println!("## {title}\n");
    println!("{table}");
    std::fs::create_dir_all(&options.results_dir).expect("create results dir");
    let txt_path = options.results_dir.join(format!("{name}.txt"));
    // Content is fully determined by the run outputs — no timestamps, no
    // host names — so the golden files diff clean between reruns.
    std::fs::write(&txt_path, format!("## {title}\n\n{table}\n")).expect("write table");
    if let Some(dir) = &options.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("(csv: {})\n", path.display());
    }
}

/// Serializes `(key, value)` pairs as a JSON object, preserving the
/// given key order (callers pass keys in a fixed order so the file is
/// stable across reruns).
fn json_object(fields: &[(&str, String)]) -> String {
    let body =
        fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect::<Vec<_>>().join(",\n");
    format!("{{\n{body}\n}}\n")
}

fn main() {
    let options = parse_args();
    let wants = |a: &str| options.artifacts.contains(a);
    let needs_full_runs = wants("fig5")
        || wants("fig6")
        || wants("table3")
        || wants("table5")
        || wants("table6")
        || wants("findings");
    let needs_isolation = wants("fig8") || wants("findings");

    let duration = options
        .run
        .duration_s
        .unwrap_or_else(|| paper_config(av_vision::DetectorKind::Ssd512).scenario.duration_s);
    println!(
        "# AV characterization reproduction (drive: {duration:.0} s per run, jobs: {})\n",
        options.jobs
    );

    let runs_full_matrix = needs_full_runs && needs_isolation;
    if !options.check_jobs.is_empty() && !runs_full_matrix {
        eprintln!("--check-jobs requires the full artifact set (it compares matrix hashes)");
        std::process::exit(2);
    }

    let total_start = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut reports: Vec<RunReport> = Vec::new();
    let mut isolation = Vec::new();
    let mut golden_hash: Option<u64> = None;

    if needs_full_runs && needs_isolation {
        // Fig 8's full-system halves are exactly the detector sweep, so
        // one shared batch covers both: 5 unique drives instead of 7.
        eprintln!("running experiment matrix (3 full + 2 isolated drives)...");
        let start = Instant::now();
        let matrix = experiments::run_matrix(paper_config, &options.run, options.jobs);
        timings.push(("matrix_runs".to_string(), start.elapsed().as_secs_f64()));
        golden_hash = Some(determinism::matrix_hash(&matrix));
        reports = matrix.reports;
        isolation = matrix.isolation;
    } else if needs_full_runs {
        eprintln!("running full-stack drives (3 detectors)...");
        let start = Instant::now();
        reports = experiments::run_all_detectors(paper_config, &options.run, options.jobs);
        timings.push(("full_runs".to_string(), start.elapsed().as_secs_f64()));
    } else if needs_isolation {
        eprintln!("running isolation drives (SSD512, YOLO standalone + full)...");
        let start = Instant::now();
        isolation = experiments::fig8(paper_config, &options.run, options.jobs);
        timings.push(("isolation_runs".to_string(), start.elapsed().as_secs_f64()));
    }
    for r in &reports {
        eprintln!(
            "  {}: {} tasks completed, localization err {:.2} m",
            r.detector, r.cpu.tasks_completed, r.localization_error_m
        );
    }

    if wants("fig5") {
        for report in &reports {
            emit(
                &options,
                &format!("fig5_{}", report.detector.name().to_lowercase()),
                &format!("Fig 5 — single-node latency (with {})", report.detector),
                &experiments::fig5_table(report),
            );
        }
    }

    if wants("table3") {
        emit(&options, "table3", "Table III — dropped messages", &experiments::table3(&reports));
    }

    if wants("fig6") {
        for report in &reports {
            emit(
                &options,
                &format!("fig6_{}", report.detector.name().to_lowercase()),
                &format!("Fig 6 — end-to-end path latency (with {})", report.detector),
                &experiments::fig6_table(report),
            );
        }
    }

    if wants("table5") {
        emit(
            &options,
            "table5",
            "Table V — CPU/GPU utilization share",
            &experiments::table5(&reports),
        );
    }

    if wants("table6") {
        emit(&options, "table6", "Table VI — mean power", &experiments::table6(&reports));
    }

    if wants("fig8") {
        emit(
            &options,
            "fig8",
            "Fig 8 — standalone vs full-system detector latency",
            &experiments::fig8_table(&isolation),
        );
    }

    // Microarchitecture artifacts are platform-independent of the drive.
    let uarch_scale = if options.run.duration_s.is_some() { 8 } else { 30 };
    if wants("table7") {
        let start = Instant::now();
        let table = experiments::table7(uarch_scale, 2020);
        timings.push(("uarch_table7".to_string(), start.elapsed().as_secs_f64()));
        emit(&options, "table7", "Table VII — microarchitecture profiling", &table);
    }

    if wants("fig7") {
        let start = Instant::now();
        let table = experiments::fig7(uarch_scale, 2020);
        timings.push(("uarch_fig7".to_string(), start.elapsed().as_secs_f64()));
        emit(&options, "fig7", "Fig 7 — instruction mix", &table);
    }

    if wants("findings") {
        let findings = FindingsReport::from_runs(&reports, isolation.clone());
        emit(&options, "findings", "Findings 1-5", &findings.to_table());
    }

    if let Some(hash) = golden_hash {
        println!("golden determinism hash: {hash:#018x}");
    }

    // Trace artifacts: one Chrome trace + metrics CSV per full-stack run,
    // with byte hashes recorded so reruns can be compared without the
    // (large) files themselves.
    let mut rendered: Vec<(String, String, String)> = Vec::new();
    let mut artifact_hashes: Vec<(String, String)> = Vec::new();
    if options.run.trace.is_some() {
        std::fs::create_dir_all(&options.results_dir).expect("create results dir");
        for report in &reports {
            let trace = report.trace.as_ref().expect("traced run without trace data");
            let name = report.detector.name().to_lowercase();
            let json = render_chrome_trace(&name, trace);
            let csv = render_metrics_csv(trace);
            let json_path = options.results_dir.join(format!("trace_{name}.json"));
            let csv_path = options.results_dir.join(format!("metrics_{name}.csv"));
            std::fs::write(&json_path, &json).expect("write trace json");
            std::fs::write(&csv_path, &csv).expect("write metrics csv");
            println!(
                "trace: {} ({} callbacks, {} drops); metrics: {} ({} samples)",
                json_path.display(),
                trace.callback_count(),
                trace.dropped_total(),
                csv_path.display(),
                trace.samples.len()
            );
            artifact_hashes.push((format!("trace_{name}.json"), bytes_hash(&json)));
            artifact_hashes.push((format!("metrics_{name}.csv"), bytes_hash(&csv)));
            rendered.push((name, json, csv));
        }
    }

    // Cross-`--jobs` determinism check: rerun the matrix at every other
    // requested level and demand an identical golden hash and (when
    // tracing) byte-identical rendered artifacts.
    let verify_levels: Vec<usize> =
        options.check_jobs.iter().copied().filter(|&j| j != options.jobs).collect();
    if !verify_levels.is_empty() {
        let base_hash = golden_hash.expect("--check-jobs runs the full matrix");
        for level in verify_levels {
            eprintln!("determinism check: rerunning matrix with --jobs {level}...");
            let start = Instant::now();
            let matrix = experiments::run_matrix(paper_config, &options.run, level);
            timings.push((format!("check_jobs_{level}"), start.elapsed().as_secs_f64()));
            let hash = determinism::matrix_hash(&matrix);
            if hash != base_hash {
                eprintln!(
                    "DETERMINISM VIOLATION: --jobs {} hash {:#018x} != --jobs {} hash {:#018x}",
                    level, hash, options.jobs, base_hash
                );
                std::process::exit(1);
            }
            for (report, (name, base_json, base_csv)) in matrix.reports.iter().zip(&rendered) {
                let trace = report.trace.as_ref().expect("traced run without trace data");
                if &render_chrome_trace(name, trace) != base_json
                    || &render_metrics_csv(trace) != base_csv
                {
                    eprintln!(
                        "DETERMINISM VIOLATION: trace artifacts for {name} differ between \
                         --jobs {} and --jobs {level}",
                        options.jobs
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "determinism check passed: jobs {:?} all reproduce hash {base_hash:#018x}",
            options.check_jobs
        );
    }

    // Wall-clock benchmark record: per-experiment timings so the perf
    // trajectory is tracked from run to run. This file is *about* wall
    // time, so it is the one results/ artifact that legitimately varies
    // between reruns; keys and their order stay fixed.
    timings.push(("total".to_string(), total_start.elapsed().as_secs_f64()));
    let mut fields: Vec<(&str, String)> =
        vec![("jobs", options.jobs.to_string()), ("drive_duration_s", format!("{duration:.1}"))];
    if let Some(hash) = golden_hash {
        fields.push(("golden_hash", format!("\"{hash:#018x}\"")));
    }
    if !artifact_hashes.is_empty() {
        let body = artifact_hashes
            .iter()
            .map(|(k, v)| format!("    \"{k}\": \"{v}\""))
            .collect::<Vec<_>>()
            .join(",\n");
        fields.push(("artifact_hashes", format!("{{\n{body}\n  }}")));
    }
    let timing_body =
        timings.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect::<Vec<_>>().join(",\n");
    fields.push(("wall_clock_s", format!("{{\n{timing_body}\n  }}")));
    std::fs::create_dir_all(&options.results_dir).expect("create results dir");
    let bench_path = options.results_dir.join("BENCH_repro.json");
    std::fs::write(&bench_path, json_object(&fields)).expect("write BENCH_repro.json");
    eprintln!("wall-clock record: {}", bench_path.display());
}
