//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick | --duration <seconds>] [ARTIFACT...] [--csv <dir>]
//!
//! ARTIFACT: --fig5 --fig6 --fig7 --fig8 --table3 --table5 --table6
//!           --table7 --findings   (default: all)
//! ```
//!
//! The full (default) run replays the 8-minute drive once per detector
//! plus two isolation runs — a few minutes of wall-clock time in release
//! mode. `--quick` shortens the drive to 60 s.

use av_bench::{paper_config, paper_run};
use av_core::experiments;
use av_core::findings::FindingsReport;
use av_core::stack::{RunConfig, RunReport};
use av_profiling::Table;
use std::collections::HashSet;
use std::path::PathBuf;

struct Options {
    run: RunConfig,
    artifacts: HashSet<String>,
    csv_dir: Option<PathBuf>,
}

const ALL_ARTIFACTS: [&str; 9] =
    ["fig5", "fig6", "fig7", "fig8", "table3", "table5", "table6", "table7", "findings"];

fn parse_args() -> Options {
    let mut run = paper_run();
    let mut artifacts = HashSet::new();
    let mut csv_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => run = av_bench::quick_run(),
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                run = RunConfig { duration_s: Some(value.parse().expect("invalid duration")) };
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv needs a directory")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick | --duration <s>] [--csv <dir>] [--fig5 ... --findings]"
                );
                std::process::exit(0);
            }
            other => {
                let name = other.trim_start_matches("--");
                if ALL_ARTIFACTS.contains(&name) {
                    artifacts.insert(name.to_string());
                } else {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    if artifacts.is_empty() {
        artifacts = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }
    Options { run, artifacts, csv_dir }
}

fn emit(options: &Options, name: &str, title: &str, table: &Table) {
    println!("## {title}\n");
    println!("{table}");
    if let Some(dir) = &options.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("(csv: {})\n", path.display());
    }
}

fn main() {
    let options = parse_args();
    let wants = |a: &str| options.artifacts.contains(a);
    let needs_full_runs =
        wants("fig5") || wants("fig6") || wants("table3") || wants("table5") || wants("table6")
            || wants("findings");
    let needs_isolation = wants("fig8") || wants("findings");

    let duration = options
        .run
        .duration_s
        .unwrap_or_else(|| paper_config(av_vision::DetectorKind::Ssd512).scenario.duration_s);
    println!("# AV characterization reproduction (drive: {duration:.0} s per run)\n");

    let mut reports: Vec<RunReport> = Vec::new();
    if needs_full_runs {
        eprintln!("running full-stack drives (3 detectors)...");
        reports = experiments::run_all_detectors(paper_config, &options.run);
        for r in &reports {
            eprintln!(
                "  {}: {} frames dropped stats ok, localization err {:.2} m",
                r.detector,
                r.cpu.tasks_completed,
                r.localization_error_m
            );
        }
    }

    if wants("fig5") {
        for report in &reports {
            emit(
                &options,
                &format!("fig5_{}", report.detector.name().to_lowercase()),
                &format!("Fig 5 — single-node latency (with {})", report.detector),
                &experiments::fig5_table(report),
            );
        }
    }

    if wants("table3") {
        emit(&options, "table3", "Table III — dropped messages", &experiments::table3(&reports));
    }

    if wants("fig6") {
        for report in &reports {
            emit(
                &options,
                &format!("fig6_{}", report.detector.name().to_lowercase()),
                &format!("Fig 6 — end-to-end path latency (with {})", report.detector),
                &experiments::fig6_table(report),
            );
        }
    }

    if wants("table5") {
        emit(
            &options,
            "table5",
            "Table V — CPU/GPU utilization share",
            &experiments::table5(&reports),
        );
    }

    if wants("table6") {
        emit(&options, "table6", "Table VI — mean power", &experiments::table6(&reports));
    }

    let mut isolation = Vec::new();
    if needs_isolation {
        eprintln!("running isolation drives (SSD512, YOLO standalone + full)...");
        isolation = experiments::fig8(paper_config, &options.run);
    }

    if wants("fig8") {
        emit(
            &options,
            "fig8",
            "Fig 8 — standalone vs full-system detector latency",
            &experiments::fig8_table(&isolation),
        );
    }

    // Microarchitecture artifacts are platform-independent of the drive.
    let uarch_scale = if options.run.duration_s.is_some() { 8 } else { 30 };
    if wants("table7") {
        emit(
            &options,
            "table7",
            "Table VII — microarchitecture profiling",
            &experiments::table7(uarch_scale, 2020),
        );
    }

    if wants("fig7") {
        emit(&options, "fig7", "Fig 7 — instruction mix", &experiments::fig7(uarch_scale, 2020));
    }

    if wants("findings") {
        let findings = FindingsReport::from_runs(&reports, isolation.clone());
        emit(&options, "findings", "Findings 1-5", &findings.to_table());
    }
}
