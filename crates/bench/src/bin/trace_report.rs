//! `trace_report` — recomputes the paper's tables from a trace file alone.
//!
//! ```text
//! trace_report <trace.json> [--paths-csv <out.csv>]  # analyze a trace
//! trace_report --verify [--duration <s>] [--detector <name>]
//! ```
//!
//! File mode loads a Chrome trace written by `repro --trace` (or the
//! `trace_capture` example) and reprints the Fig 6 path latencies, the
//! Fig 5 per-node processing latencies, and the Table III drop counts —
//! all derived purely from the trace events, without access to the run.
//!
//! `--verify` is the internal consistency oracle: it runs one traced
//! drive, renders the trace to JSON, parses it back, recomputes the same
//! quantities, and asserts **exact** (bit-level, not epsilon) agreement
//! with what the live `LatencyRecorder` and the bus drop counters
//! measured. Any disagreement exits nonzero.

use av_bench::paper_config;
use av_core::stack::{computation_paths, run_drive, RunConfig};
use av_profiling::Table;
use av_trace::analysis::{analyze_trace, TracePathSpec, TraceReport};
use av_trace::export::render_chrome_trace;
use av_trace::json;
use av_vision::DetectorKind;

fn trace_specs() -> Vec<TracePathSpec> {
    computation_paths()
        .into_iter()
        .map(|p| TracePathSpec::new(p.name, p.sink_node, p.source.name()))
        .collect()
}

fn path_table(report: &TraceReport) -> Table {
    let mut table =
        Table::with_headers(&["Path", "Verdict", "Count", "Mean (ms)", "p99 (ms)", "Max (ms)"]);
    for path in &report.paths {
        let s = path.latency.summary();
        table.add_row(vec![
            path.name.clone(),
            path.verdict.describe(),
            s.count.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.p99),
            format!("{:.2}", s.max),
        ]);
    }
    table
}

fn node_table(report: &TraceReport) -> Table {
    let mut table = Table::with_headers(&["Node", "Count", "Mean (ms)", "p99 (ms)", "Max (ms)"]);
    for (name, dist) in &report.nodes {
        let s = dist.summary();
        table.add_row(vec![
            name.clone(),
            s.count.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.p99),
            format!("{:.2}", s.max),
        ]);
    }
    table
}

fn drop_table(report: &TraceReport) -> Table {
    let mut table = Table::with_headers(&["Topic", "Node", "Dropped"]);
    for ((topic, node), count) in &report.drops {
        table.add_row(vec![topic.clone(), node.clone(), count.to_string()]);
    }
    table
}

/// Per-path CSV for the E-sched study: one row per computation path with
/// the deadline-miss fraction against the paper's 100 ms budget. The
/// `policy` column comes from the trace's own header (`fifo` when the
/// run predates or omits scheduling policies).
fn render_paths_csv(report: &TraceReport) -> String {
    use std::fmt::Write as _;
    let policy = report.policy.as_deref().unwrap_or("fifo");
    let mut out = String::from("policy,path,count,p50_ms,p99_ms,max_ms,miss_frac\n");
    for path in &report.paths {
        let d = &path.latency;
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{:.3},{:.4}",
            policy,
            path.name,
            d.samples().len(),
            d.percentile(50.0),
            d.percentile(99.0),
            d.summary().max,
            d.fraction_above(av_core::metrics::DEADLINE_MS),
        );
    }
    out
}

fn print_report(title: &str, report: &TraceReport) {
    println!("# Trace report — {title}\n");
    println!("callback slices: {}\n", report.callbacks);
    if let Some(policy) = &report.policy {
        println!("sched policy: {policy} ({} decision events)\n", report.sched_decisions);
    }
    println!("## Fig 6 — end-to-end path latency (from trace)\n");
    println!("{}", path_table(report));
    println!("## Fig 5 — node processing latency (from trace)\n");
    println!("{}", node_table(report));
    println!("## Table III — dropped messages (from trace)\n");
    if report.drops.is_empty() {
        println!("(no drops recorded)\n");
    } else {
        println!("{}", drop_table(report));
    }
}

fn analyze_file(path: &str, paths_csv: Option<&str>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let report = analyze_trace(&doc, &trace_specs()).unwrap_or_else(|e| {
        eprintln!("not a stack trace: {e}");
        std::process::exit(2);
    });
    print_report(path, &report);
    if let Some(out) = paths_csv {
        std::fs::write(out, render_paths_csv(&report)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        });
        println!("paths csv: {out}");
    }
    let broken: Vec<&av_trace::analysis::PathReport> =
        report.paths.iter().filter(|p| !p.verdict.is_ok()).collect();
    if !broken.is_empty() {
        for p in &broken {
            eprintln!("path {}: {}", p.name, p.verdict.describe());
        }
        eprintln!("{} path(s) not fully anchored", broken.len());
        std::process::exit(1);
    }
    // A trace carrying scheduler decisions must also name the policy in
    // its run header — anonymous reordering is as loud as missing
    // lineage, not something to silently accept.
    if !report.sched_header_consistent() {
        eprintln!(
            "trace has {} sched-decision event(s) but no sched_policy run header",
            report.sched_decisions
        );
        std::process::exit(1);
    }
}

fn verify(duration_s: f64, detector: DetectorKind) {
    eprintln!("verify: running a traced {duration_s:.0} s drive with {detector}...");
    let config = paper_config(detector);
    let run = RunConfig::seconds(duration_s).with_trace();
    let live = run_drive(&config, &run);
    let trace = live.trace.as_ref().expect("traced run without trace data");

    // Round-trip through the exported bytes: the analysis must see exactly
    // what an external tool would.
    let rendered = render_chrome_trace(detector.name(), trace);
    let doc = json::parse(&rendered).expect("exported trace must parse");
    let recomputed = analyze_trace(&doc, &trace_specs()).expect("exported trace must analyze");

    let mut failures = 0;
    let mut check = |label: String, ok: bool| {
        if ok {
            println!("  ok: {label}");
        } else {
            println!("  MISMATCH: {label}");
            failures += 1;
        }
    };

    // Fig 6: every path's sample vector must match the live recorder
    // bit-for-bit (hence so do mean, p99, ... — summaries are pure
    // functions of the samples).
    for path in &recomputed.paths {
        let name = &path.name;
        let live_samples =
            live.recorder.path_latencies(name).map(|d| d.samples().to_vec()).unwrap_or_default();
        check(
            format!(
                "path {name}: {} samples, mean {:.3} ms",
                live_samples.len(),
                path.latency.summary().mean
            ),
            path.latency.samples() == live_samples.as_slice(),
        );
        // A silently-empty path (missing lineage source) fails loudly.
        check(format!("path {name}: verdict {}", path.verdict.describe()), path.verdict.is_ok());
    }

    // Fig 5: per-node processing latencies.
    for node in live.recorder.nodes() {
        let live_samples =
            live.recorder.node_latencies(&node).map(|d| d.samples().to_vec()).unwrap_or_default();
        let from_trace =
            recomputed.nodes.get(&node).map(|d| d.samples().to_vec()).unwrap_or_default();
        check(format!("node {node}: {} samples", live_samples.len()), from_trace == live_samples);
    }
    check(
        "node set matches".to_string(),
        recomputed.nodes.keys().cloned().collect::<Vec<_>>() == {
            let mut n = live.recorder.nodes();
            n.sort();
            n
        },
    );

    // Table III: trace drop instants vs the recorder's observed drops and
    // the bus's own subscription counters.
    let observed: std::collections::BTreeMap<(String, String), u64> =
        live.recorder.observed_drops().iter().map(|(k, &v)| (k.clone(), v)).collect();
    check(
        format!("drop counts per subscription ({} dropping subscriptions)", observed.len()),
        recomputed.drops == observed,
    );
    let bus_dropped: u64 = live.drops.iter().map(|d| d.dropped).sum();
    let trace_dropped: u64 = recomputed.drops.values().sum();
    check(
        format!("total drops: trace {trace_dropped} == bus counters {bus_dropped}"),
        trace_dropped == bus_dropped,
    );

    // Scheduler header: the policy name must survive the JSON round-trip,
    // and decision events must never appear without it.
    check(
        format!(
            "sched policy header round-trips ({})",
            trace.policy.as_deref().unwrap_or("fifo, omitted")
        ),
        recomputed.policy == trace.policy,
    );
    check(
        format!("sched decisions ({}) only under a declared policy", recomputed.sched_decisions),
        recomputed.sched_header_consistent(),
    );
    check(
        format!("sched decision count round-trips ({})", trace.sched_decision_count()),
        recomputed.sched_decisions == trace.sched_decision_count(),
    );

    println!();
    print_report(&format!("{detector} ({duration_s:.0} s verify run)"), &recomputed);
    if failures > 0 {
        eprintln!("verify FAILED: {failures} mismatch(es)");
        std::process::exit(1);
    }
    println!("verify passed: trace-derived tables match the live recorder exactly");
}

fn main() {
    let mut file: Option<String> = None;
    let mut do_verify = false;
    let mut duration_s = 10.0;
    let mut detector = DetectorKind::Ssd512;
    let mut paths_csv: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify" => do_verify = true,
            "--paths-csv" => {
                paths_csv = Some(args.next().expect("--paths-csv needs an output path"));
            }
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                duration_s = value.parse().expect("invalid duration");
            }
            "--detector" => {
                let value = args.next().expect("--detector needs a name");
                detector = DetectorKind::ALL
                    .into_iter()
                    .find(|d| d.name().eq_ignore_ascii_case(&value))
                    .unwrap_or_else(|| {
                        eprintln!("unknown detector: {value} (try ssd512, ssd300, yolov3)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_report <trace.json> [--paths-csv <out.csv>] | \
                     --verify [--duration <s>] [--detector <name>]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    match (file, do_verify) {
        (Some(path), false) => analyze_file(&path, paths_csv.as_deref()),
        (None, true) => verify(duration_s, detector),
        (Some(_), true) => {
            eprintln!("--verify runs its own drive; do not also pass a trace file");
            std::process::exit(2);
        }
        (None, false) => {
            eprintln!("usage: trace_report <trace.json> | --verify");
            std::process::exit(2);
        }
    }
}
