//! `sweep` — runs a batched scenario sweep and writes its artifacts.
//!
//! ```text
//! sweep [--spec <file.json> | --builtin <smoke|detector-camera>]
//!       [--jobs <N>] [--check-jobs <N,M,...>] [--duration <seconds>]
//!       [--trace] [--results <dir>] [--list]
//! ```
//!
//! The spec (see `specs/` for examples) expands into a deterministic
//! point list; every point is an independent simulated drive, fanned out
//! over `--jobs` worker threads. Artifacts land under `--results`
//! (default `results/sweep/`):
//!
//! * `sweep_summary.txt` / `.csv` — one row per point (worst path, e2e
//!   mean/p99, drop %, power, localization error, golden run hash),
//! * `sweep_effects.txt` — which knobs move tail latency and drop rate,
//! * `point_<id>.txt` — per-point Fig 6 / Table III / Table VI report,
//! * `SWEEP_hashes.json` — the golden-hash manifest,
//! * with `--trace`, `trace_<id>.json` per point (Chrome trace format —
//!   feed any two to `trace_diff`).
//!
//! Everything is a pure function of the spec: `--check-jobs 1,8` reruns
//! the batch at each listed level and **exits nonzero** unless every
//! artifact byte and golden hash is identical.

use av_core::ckptstore::CkptStore;
use av_core::determinism::Fnv64;
use av_core::parallel::effective_jobs;
use av_core::stack::RunConfig;
use av_sweep::runner::run_sweep_streamed_with_store;
use av_sweep::{aggregate, run_sweep, PointResult, SweepArtifacts, SweepSpec};
use av_trace::export::render_chrome_trace;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Options {
    spec: SweepSpec,
    run: RunConfig,
    jobs: usize,
    check_jobs: Vec<usize>,
    results_dir: PathBuf,
    list: bool,
    ckpt_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--spec <file.json> | --builtin <smoke|detector-camera>] \
         [--jobs <N>] [--check-jobs <N,M,...>] [--duration <s>] [--trace] \
         [--results <dir>] [--list] [--ckpt-dir <dir>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut spec = None;
    let mut run = RunConfig::default();
    let mut trace = false;
    let mut jobs = None;
    let mut check_jobs: Vec<usize> = Vec::new();
    let mut results_dir = PathBuf::from("results/sweep");
    let mut list = false;
    let mut ckpt_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => {
                let path = args.next().expect("--spec needs a file");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                spec = Some(SweepSpec::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("invalid sweep spec {path}: {e}");
                    std::process::exit(2);
                }));
            }
            "--builtin" => {
                let name = args.next().expect("--builtin needs a name");
                spec = Some(SweepSpec::builtin(&name).unwrap_or_else(|| {
                    eprintln!("unknown builtin sweep {name:?} (try smoke, detector-camera)");
                    std::process::exit(2);
                }));
            }
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                run.duration_s = Some(value.parse().expect("invalid duration"));
            }
            "--trace" => trace = true,
            "--jobs" | "-j" => {
                let value = args.next().expect("--jobs needs a thread count");
                jobs = Some(value.parse().expect("invalid --jobs value"));
            }
            "--check-jobs" => {
                let value = args.next().expect("--check-jobs needs a comma-separated list");
                check_jobs = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("invalid --check-jobs value"))
                    .collect();
                assert!(!check_jobs.is_empty(), "--check-jobs needs at least one level");
            }
            "--results" => {
                results_dir = PathBuf::from(args.next().expect("--results needs a directory"));
            }
            "--list" => list = true,
            "--ckpt-dir" => {
                ckpt_dir = Some(PathBuf::from(args.next().expect("--ckpt-dir needs a directory")));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if trace {
        run = run.with_trace();
    }
    if jobs.is_none() {
        jobs = check_jobs.first().copied();
    }
    Options {
        spec: spec.unwrap_or_else(SweepSpec::builtin_smoke),
        run,
        jobs: effective_jobs(jobs),
        check_jobs,
        results_dir,
        list,
        ckpt_dir,
    }
}

/// FNV-1a 64 hash of rendered artifact bytes, formatted like the golden
/// determinism hash.
fn bytes_hash(text: &str) -> String {
    let mut h = Fnv64::new();
    h.write_bytes(text.as_bytes());
    format!("{:#018x}", h.finish())
}

/// Renders every point's Chrome trace, in ordinal order.
fn render_traces(results: &[PointResult]) -> Vec<(String, String)> {
    let mut ordered: Vec<&PointResult> = results.iter().collect();
    ordered.sort_by_key(|r| r.point.ordinal);
    ordered
        .iter()
        .filter_map(|r| {
            r.report.trace.as_ref().map(|t| {
                let id = r.point.id();
                (id.clone(), render_chrome_trace(&format!("sweep_{id}"), t))
            })
        })
        .collect()
}

fn write_artifacts(dir: &Path, artifacts: &SweepArtifacts, traces: &[(String, String)]) {
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(dir.join("sweep_summary.txt"), &artifacts.summary_txt).expect("write summary");
    std::fs::write(dir.join("sweep_summary.csv"), &artifacts.summary_csv).expect("write csv");
    std::fs::write(dir.join("sweep_effects.txt"), &artifacts.effects_txt).expect("write effects");
    std::fs::write(dir.join("SWEEP_hashes.json"), &artifacts.hashes_json).expect("write hashes");
    for (id, text) in &artifacts.per_point {
        std::fs::write(dir.join(format!("point_{id}.txt")), text).expect("write point report");
    }
    for (id, json) in traces {
        std::fs::write(dir.join(format!("trace_{id}.json")), json).expect("write trace");
    }
}

fn main() {
    let options = parse_args();
    if options.list {
        print!("{}", options.spec.describe());
        return;
    }
    let point_count = options.spec.points().len();
    println!("# sweep {:?}: {} point(s), jobs {}\n", options.spec.name, point_count, options.jobs);

    // A durable checkpoint store survives this process: prefix-sharing
    // groups restore their barrier from whatever an earlier sweep left
    // behind and persist their own. It never changes an output byte —
    // the cross-jobs check below would catch it if it did.
    let store = options.ckpt_dir.as_ref().map(|dir| {
        let (store, recovery) = CkptStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open checkpoint store {}: {e}", dir.display()));
        eprint!("{}", recovery.render());
        store
    });

    let start = Instant::now();
    let (results, stats) = run_sweep_streamed_with_store(
        &options.spec,
        &options.run,
        options.jobs,
        store.as_ref(),
        |_| {},
    );
    let batch_s = start.elapsed().as_secs_f64();
    let artifacts = aggregate(&options.spec, &results);
    let traces = render_traces(&results);

    write_artifacts(&options.results_dir, &artifacts, &traces);
    print!("{}", artifacts.summary_txt);
    println!("sweep golden hash: {:#018x}", artifacts.sweep_hash);
    println!("artifacts: {} (batch took {batch_s:.1} s)", options.results_dir.display());
    if let (Some(store), Some(dir)) = (&store, &options.ckpt_dir) {
        println!(
            "checkpoint store {}: {} entr{} ({} B); {} of {} prefix group(s) restored from \
             disk, skipping {:.1} virtual s of leader prefix",
            dir.display(),
            store.len(),
            if store.len() == 1 { "y" } else { "ies" },
            store.total_bytes(),
            stats.store_prefix_hits,
            stats.prefix_groups,
            stats.store_saved_s
        );
    }
    for (id, json) in &traces {
        println!("trace_{id}.json: {}", bytes_hash(json));
    }

    // Cross-`--jobs` determinism check: rerun the whole batch at every
    // other requested level; every artifact byte must match.
    let verify_levels: Vec<usize> =
        options.check_jobs.iter().copied().filter(|&j| j != options.jobs).collect();
    if !verify_levels.is_empty() {
        for level in verify_levels {
            eprintln!("determinism check: rerunning sweep with --jobs {level}...");
            let rerun = run_sweep(&options.spec, &options.run, level);
            let other = aggregate(&options.spec, &rerun);
            let mut violations = Vec::new();
            if other.sweep_hash != artifacts.sweep_hash {
                violations.push(format!(
                    "sweep hash {:#018x} != {:#018x}",
                    other.sweep_hash, artifacts.sweep_hash
                ));
            }
            if other.summary_txt != artifacts.summary_txt
                || other.summary_csv != artifacts.summary_csv
                || other.effects_txt != artifacts.effects_txt
                || other.hashes_json != artifacts.hashes_json
                || other.per_point != artifacts.per_point
            {
                violations.push("aggregate artifact bytes differ".to_string());
            }
            if render_traces(&rerun) != traces {
                violations.push("trace artifact bytes differ".to_string());
            }
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!(
                        "DETERMINISM VIOLATION between --jobs {} and --jobs {level}: {v}",
                        options.jobs
                    );
                }
                std::process::exit(1);
            }
        }
        println!(
            "sweep determinism check passed: jobs {:?} all reproduce hash {:#018x}",
            options.check_jobs, artifacts.sweep_hash
        );
    }
}
