//! `resume_check` — the tier-1 checkpoint/resume gate.
//!
//! ```text
//! resume_check [--duration <seconds>] [--barrier <seconds>]
//! ```
//!
//! Runs one short traced smoke drive (with a planned node crash, so the
//! supervisor is active across the barrier) twice: straight through,
//! and checkpointed at the barrier then resumed. The two runs must be
//! byte-identical — same golden determinism hash (which folds the full
//! structured trace and the fault statistics) and same rendered Chrome
//! trace and metrics CSV bytes. Any divergence prints a diagnosis and
//! **exits nonzero**; `scripts/tier1.sh` treats that as a failed gate.

use av_core::determinism::run_hash;
use av_core::fault::FaultPlan;
use av_core::stack::{checkpoint_drive, resume_drive, run_drive, RunConfig, StackConfig};
use av_trace::export::{render_chrome_trace, render_metrics_csv};
use av_vision::DetectorKind;

fn main() {
    let mut duration_s = 8.0;
    let mut barrier_s = 4.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                duration_s = value.parse().expect("invalid duration");
            }
            "--barrier" => {
                let value = args.next().expect("--barrier needs seconds");
                barrier_s = value.parse().expect("invalid barrier");
            }
            "--help" | "-h" => {
                eprintln!("usage: resume_check [--duration <s>] [--barrier <s>]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(barrier_s < duration_s, "barrier must land inside the drive");

    // Crash at 3 s: the default 4 s barrier checkpoints mid-recovery,
    // with the fallback localizer active and the restart timer pending —
    // the hardest state the snapshot has to carry.
    let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
    config.faults = FaultPlan::parse("crash:ndt_matching@3").expect("builtin fault plan");
    let run = RunConfig::seconds(duration_s).with_trace();

    eprintln!("resume check: {duration_s} s smoke drive, checkpoint at {barrier_s} s...");
    let straight = run_drive(&config, &run);
    let (_, checkpoint) = checkpoint_drive(&config, &run, barrier_s);
    let resumed = resume_drive(&config, &run, &checkpoint);

    let mut failures = 0;
    let straight_hash = run_hash(&straight);
    let resumed_hash = run_hash(&resumed);
    if straight_hash != resumed_hash {
        eprintln!(
            "CHECKPOINT VIOLATION: golden hash {straight_hash:#018x} (straight) != \
             {resumed_hash:#018x} (resumed)"
        );
        failures += 1;
    }
    let straight_trace = straight.trace.as_ref().expect("traced run without trace data");
    let resumed_trace = resumed.trace.as_ref().expect("traced run without trace data");
    if render_chrome_trace("gate", straight_trace) != render_chrome_trace("gate", resumed_trace) {
        eprintln!("CHECKPOINT VIOLATION: Chrome trace bytes differ between straight and resumed");
        failures += 1;
    }
    if render_metrics_csv(straight_trace) != render_metrics_csv(resumed_trace) {
        eprintln!("CHECKPOINT VIOLATION: metrics CSV bytes differ between straight and resumed");
        failures += 1;
    }
    if straight.fault != resumed.fault {
        eprintln!("CHECKPOINT VIOLATION: fault statistics differ between straight and resumed");
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "resume check passed: straight and checkpointed runs reproduce hash \
         {straight_hash:#018x} ({} checkpoint bytes at {barrier_s} s)",
        checkpoint.size_bytes()
    );
}
