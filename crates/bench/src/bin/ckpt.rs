//! `ckpt` — operator tooling for the durable checkpoint store.
//!
//! ```text
//! ckpt ls     --dir <store>
//! ckpt verify --dir <store>
//! ckpt gc     --dir <store> --max-bytes <N>
//! ckpt rm     --dir <store> --fingerprint <hex> [--barrier-ns <N>]
//! ```
//!
//! Every subcommand opens the store, which runs the full recovery scan:
//! entries that fail verification are renamed into `quarantine/` (with a
//! `.reason` sidecar) and reported loudly — never deleted silently.
//!
//! * `ls` — one line per verified entry (fingerprint, barrier, traced,
//!   bytes), plus anything sitting in quarantine.
//! * `verify` — like `ls`, but **exits nonzero** if this scan
//!   quarantined anything *or* quarantine already holds entries: a red
//!   gate until an operator inspects and clears them.
//! * `gc` — deterministic eviction down to `--max-bytes`: newest
//!   barrier per fingerprint survives first; eviction order is
//!   (barrier, fingerprint) ascending. Prints every evicted entry.
//! * `rm` — deletes all entries of a fingerprint, or one exact
//!   `(fingerprint, barrier)` entry.

use av_core::ckptstore::CkptStore;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: ckpt <ls|verify|gc|rm> --dir <store> [--max-bytes <N>] \
         [--fingerprint <hex>] [--barrier-ns <N>]"
    );
    std::process::exit(2);
}

struct Options {
    command: String,
    dir: PathBuf,
    max_bytes: Option<u64>,
    fingerprint: Option<u64>,
    barrier_ns: Option<u64>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) if ["ls", "verify", "gc", "rm"].contains(&c.as_str()) => c,
        Some(c) if c == "--help" || c == "-h" => usage(),
        Some(c) => {
            eprintln!("unknown command {c:?}");
            usage();
        }
        None => usage(),
    };
    let mut dir = None;
    let mut max_bytes = None;
    let mut fingerprint = None;
    let mut barrier_ns = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir needs a directory"))),
            "--max-bytes" => {
                let value = args.next().expect("--max-bytes needs a byte count");
                max_bytes = Some(value.parse().expect("invalid --max-bytes value"));
            }
            "--fingerprint" => {
                let value = args.next().expect("--fingerprint needs a hex id");
                let digits = value.strip_prefix("0x").unwrap_or(&value);
                fingerprint =
                    Some(u64::from_str_radix(digits, 16).expect("invalid --fingerprint value"));
            }
            "--barrier-ns" => {
                let value = args.next().expect("--barrier-ns needs nanoseconds");
                barrier_ns = Some(value.parse().expect("invalid --barrier-ns value"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let dir = dir.unwrap_or_else(|| {
        eprintln!("ckpt {command}: --dir is required");
        usage();
    });
    Options { command, dir, max_bytes, fingerprint, barrier_ns }
}

fn main() {
    let options = parse_args();
    let (store, recovery) = CkptStore::open(&options.dir)
        .unwrap_or_else(|e| panic!("cannot open checkpoint store {}: {e}", options.dir.display()));
    eprint!("{}", recovery.render());

    match options.command.as_str() {
        "ls" | "verify" => {
            let entries = store.entries();
            println!(
                "store {}: {} entr{}, {} B",
                options.dir.display(),
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" },
                store.total_bytes()
            );
            for e in &entries {
                println!(
                    "  {}  barrier {:>8.1} s  {}  {:>8} B",
                    e.file_name(),
                    e.barrier_s(),
                    if e.traced { "traced  " } else { "untraced" },
                    e.file_bytes
                );
            }
            let quarantined = store.quarantined().expect("list quarantine");
            for name in &quarantined {
                let reason =
                    std::fs::read_to_string(store.quarantine_dir().join(format!("{name}.reason")))
                        .unwrap_or_else(|_| "(no reason sidecar)".to_string());
                println!("  quarantine/{name}: {}", reason.trim());
            }
            if options.command == "verify" {
                if !recovery.is_clean() || !quarantined.is_empty() {
                    eprintln!(
                        "verify FAILED: {} entr{} in quarantine (inspect and clear {})",
                        quarantined.len(),
                        if quarantined.len() == 1 { "y" } else { "ies" },
                        store.quarantine_dir().display()
                    );
                    std::process::exit(1);
                }
                println!("verify passed: every entry checksums clean");
            }
        }
        "gc" => {
            let max_bytes = options.max_bytes.unwrap_or_else(|| {
                eprintln!("ckpt gc: --max-bytes is required");
                usage();
            });
            let report = store.gc(max_bytes).expect("gc");
            for e in &report.evicted {
                println!(
                    "evicted {}  barrier {:>8.1} s  {:>8} B",
                    e.file_name(),
                    e.barrier_s(),
                    e.file_bytes
                );
            }
            println!(
                "gc: {} B -> {} B ({} kept, {} evicted, budget {} B)",
                report.bytes_before,
                report.bytes_after,
                report.kept,
                report.evicted.len(),
                max_bytes
            );
        }
        "rm" => {
            let fingerprint = options.fingerprint.unwrap_or_else(|| {
                eprintln!("ckpt rm: --fingerprint is required");
                usage();
            });
            let removed = store.remove(fingerprint, options.barrier_ns).expect("rm");
            for e in &removed {
                println!("removed {}", e.file_name());
            }
            if removed.is_empty() {
                eprintln!("ckpt rm: no matching entry");
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
