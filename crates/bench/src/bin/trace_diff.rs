//! `trace_diff` — regression hunting between two exported traces.
//!
//! ```text
//! trace_diff <a.json> <b.json>
//! ```
//!
//! Loads two Chrome-format traces exported by this repo (`repro --trace`,
//! `sweep --trace`, or `trace_report`), aligns them by node name and by
//! lineage-anchored computation path, and reports per-node and per-path
//! latency-distribution shifts, drops that appeared or vanished,
//! queue-depth divergence, and critical-path composition shifts (the
//! dominant blame component flipped, or a node's blame share moved more
//! than 5 points — the tail moved even if the mean did not).
//!
//! Exit status: `0` when the traces are behaviourally identical (the
//! report says `traces identical: 0 differences`), `1` when differences
//! were found, `2` on usage or parse errors — so the self-diff doubles
//! as a determinism gate and a CI diff fails loudly.

use av_core::stack::computation_paths;
use av_trace::analysis::{analyze_trace, TracePathSpec, TraceReport};
use av_trace::blame::{analyze_blame, trace_from_chrome, BlamePathSpec, BlameReport};
use av_trace::diff::{diff_blame, diff_reports, render_diff, BLAME_SHIFT_EPSILON};
use av_trace::json;

fn trace_specs() -> Vec<TracePathSpec> {
    computation_paths()
        .into_iter()
        .map(|p| TracePathSpec::new(p.name, p.sink_node, p.source.name()))
        .collect()
}

fn blame_specs() -> Vec<BlamePathSpec> {
    computation_paths()
        .into_iter()
        .map(|p| BlamePathSpec::new(p.name, p.sink_node, p.source))
        .collect()
}

fn load(path: &str) -> (TraceReport, BlameReport) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let report = analyze_trace(&doc, &trace_specs()).unwrap_or_else(|e| {
        eprintln!("{path} is not a stack trace: {e}");
        std::process::exit(2);
    });
    let data = trace_from_chrome(&doc).unwrap_or_else(|e| {
        eprintln!("{path} cannot be rehydrated for blame attribution: {e}");
        std::process::exit(2);
    });
    let blame = analyze_blame(&data, &blame_specs()).unwrap_or_else(|e| {
        eprintln!("{path} blame attribution failed: {e}");
        std::process::exit(2);
    });
    (report, blame)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = match args.as_slice() {
        [a, b] => (a, b),
        _ => {
            eprintln!("usage: trace_diff <a.json> <b.json>");
            std::process::exit(2);
        }
    };
    let (report_a, blame_a) = load(a);
    let (report_b, blame_b) = load(b);
    let mut diff = diff_reports(&report_a, &report_b);
    diff.blame_shifts = diff_blame(&blame_a, &blame_b, BLAME_SHIFT_EPSILON);
    print!("{}", render_diff(a, b, &diff));
    std::process::exit(i32::from(!diff.is_identical()));
}
