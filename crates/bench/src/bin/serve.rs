//! `serve` — the long-lived scenario service.
//!
//! ```text
//! serve [--port N] [--port-file FILE] [--workers N] [--queue N]
//!       [--spool DIR] [--event-log FILE] [--ckpt-dir DIR]
//! serve --check
//! serve --bench [--out DIR] [--levels N,M,...] [--duration <s>]
//! ```
//!
//! The default mode binds localhost (`--port 0` picks an ephemeral
//! port), prints `host:port` on stdout (and to `--port-file` for
//! scripts), and serves until a `shutdown` request arrives. `--spool`
//! makes the content-addressed result store durable across restarts;
//! `--event-log` appends every streamed event frame to a file;
//! `--ckpt-dir` opens a durable checkpoint store so drive sessions
//! warm-start from stored barriers and `extend` requests resume prior
//! drives to longer horizons byte-identically to cold runs.
//!
//! `--check` runs the built-in protocol self-test (ping, malformed
//! frame, cold drive, byte-identical store-served repeat, oversized
//! frame, graceful drain) against a private in-process service and
//! exits nonzero on any failure — the tier-1 gate.
//!
//! `--bench` runs the E-serve load harness: a fresh service per worker
//! level under concurrent synthetic tenants, reporting throughput,
//! queue wait, cache hit-rate, and repeat byte-identity. On a
//! single-core host it *warns* rather than pretending worker scaling is
//! measurable.

use av_serve::bench::{render_csv, render_json, run_load, BenchOptions};
use av_serve::server::run_check;
use av_serve::{ServeConfig, Server};
use std::path::PathBuf;

enum Mode {
    Serve,
    Check,
    Bench,
}

struct Options {
    mode: Mode,
    config: ServeConfig,
    port_file: Option<PathBuf>,
    out_dir: PathBuf,
    bench: BenchOptions,
}

fn parse_args() -> Options {
    let mut options = Options {
        mode: Mode::Serve,
        config: ServeConfig::default(),
        port_file: None,
        out_dir: PathBuf::from("results/serve"),
        bench: BenchOptions::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--check" => options.mode = Mode::Check,
            "--bench" => options.mode = Mode::Bench,
            "--port" => options.config.port = value("a port").parse().expect("invalid --port"),
            "--port-file" => options.port_file = Some(PathBuf::from(value("a path"))),
            "--workers" => {
                options.config.workers = value("a count").parse().expect("invalid --workers");
            }
            "--queue" => {
                options.config.queue_capacity = value("a depth").parse().expect("invalid --queue");
            }
            "--spool" => options.config.spool = Some(PathBuf::from(value("a directory"))),
            "--event-log" => options.config.event_log = Some(PathBuf::from(value("a path"))),
            "--ckpt-dir" => options.config.ckpt_dir = Some(PathBuf::from(value("a directory"))),
            "--out" => options.out_dir = PathBuf::from(value("a directory")),
            "--levels" => {
                options.bench.worker_levels = value("a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("invalid --levels entry"))
                    .collect();
                assert!(!options.bench.worker_levels.is_empty(), "--levels needs at least one");
            }
            "--duration" => {
                options.bench.duration_s =
                    value("seconds").parse().expect("invalid --duration value");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--port N] [--port-file FILE] [--workers N] [--queue N] \
                     [--spool DIR] [--event-log FILE] [--ckpt-dir DIR] | serve --check | \
                     serve --bench [--out DIR] [--levels N,M,...] [--duration <s>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

fn main() {
    let options = parse_args();
    match options.mode {
        Mode::Check => match run_check() {
            Ok(summary) => println!("{summary}"),
            Err(reason) => {
                eprintln!("{reason}");
                std::process::exit(1);
            }
        },
        Mode::Bench => {
            let (levels, cores) = run_load(&options.bench).expect("load harness");
            if cores <= 1 {
                eprintln!(
                    "WARNING: single-core host ({cores} core) — worker-pool levels measure \
                     queueing behaviour, not parallel speedup; do not read throughput \
                     deltas as scaling."
                );
            }
            std::fs::create_dir_all(&options.out_dir).expect("create bench output dir");
            let json_path = options.out_dir.join("BENCH_serve.json");
            let csv_path = options.out_dir.join("BENCH_serve.csv");
            std::fs::write(&json_path, render_json(&options.bench, &levels, cores))
                .expect("write BENCH_serve.json");
            std::fs::write(&csv_path, render_csv(&levels)).expect("write BENCH_serve.csv");
            for level in &levels {
                println!(
                    "workers {}: {} requests in {:.0} ms ({:.2} req/s), cache hit rate \
                     {:.2}, queue wait mean {:.1} ms, byte_identical {}",
                    level.workers,
                    level.requests,
                    level.wall_ms,
                    level.throughput_rps,
                    level.cache_hit_rate,
                    level.queue_wait_ms_mean,
                    level.byte_identical
                );
                assert!(level.byte_identical, "store-served repeats must be byte-identical");
            }
            println!("wrote {} and {}", json_path.display(), csv_path.display());
        }
        Mode::Serve => {
            let server = Server::start(options.config).expect("bind service port");
            let addr = server.addr();
            println!("{addr}");
            if let Some(path) = &options.port_file {
                std::fs::write(path, format!("{addr}\n")).expect("write port file");
            }
            eprintln!("av-serve listening on {addr} (send a shutdown request to stop)");
            server.wait().expect("service threads");
        }
    }
}
