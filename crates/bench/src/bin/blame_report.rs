//! `blame_report` — critical-path extraction and blame attribution from a
//! trace file alone.
//!
//! ```text
//! blame_report <trace.json> [--csv <out>] [--paths-csv <out>] [--label <l>]
//!              [--track <out>]
//! blame_report --verify [--duration <s>] [--detector <name>]
//! ```
//!
//! File mode loads a Chrome trace written by `repro --trace` (or `sweep
//! --trace`), reconstructs every computation path's causal chain, and
//! prints the blame summary: per-instance latency decomposed into
//! compute / queue-wait / transport / alignment / degraded, tail-instance
//! blame by node, edge slack, and attributed energy per frame. `--csv`
//! writes the per-instance decomposition, `--paths-csv` the per-path
//! summary rows (with `--label` filling the label column), `--track` the
//! Perfetto critical-path highlight track.
//!
//! `--verify` is the attribution oracle: it runs one clean and one
//! crash-faulted traced drive and asserts, for every path instance, that
//! the components sum **exactly** (integer nanoseconds, no epsilon) to the
//! recorded end-to-end latency, that blame shares sum to 1, that the
//! blame-derived latency distribution reproduces the live recorder's
//! samples bit-for-bit (hence p50/p99/max), and that the whole attribution
//! survives a Chrome-JSON round trip byte-identically. Any disagreement
//! exits nonzero.

use av_bench::paper_config;
use av_core::fault::FaultPlan;
use av_core::stack::{computation_paths, run_drive, RunConfig, StackConfig};
use av_trace::blame::{
    analyze_blame, render_blame_csv, render_blame_summary, render_blame_track, render_paths_csv,
    trace_from_chrome, BlamePathSpec, BlameReport,
};
use av_trace::export::render_chrome_trace;
use av_trace::json;
use av_vision::DetectorKind;

fn blame_specs() -> Vec<BlamePathSpec> {
    computation_paths()
        .into_iter()
        .map(|p| BlamePathSpec::new(p.name, p.sink_node, p.source))
        .collect()
}

fn write_out(path: &str, bytes: &str) {
    std::fs::write(path, bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {path}");
}

struct FileOpts {
    csv: Option<String>,
    paths_csv: Option<String>,
    label: String,
    track: Option<String>,
}

fn analyze_file(path: &str, opts: &FileOpts) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let data = trace_from_chrome(&doc).unwrap_or_else(|e| {
        eprintln!("not a stack trace: {e}");
        std::process::exit(2);
    });
    let report = analyze_blame(&data, &blame_specs()).unwrap_or_else(|e| {
        eprintln!("blame attribution failed: {e}");
        std::process::exit(1);
    });
    println!("# Blame report — {path}\n");
    print!("{}", render_blame_summary(&report));
    if let Some(out) = &opts.csv {
        write_out(out, &render_blame_csv(&report));
    }
    if let Some(out) = &opts.paths_csv {
        write_out(out, &render_paths_csv(&report, &opts.label));
    }
    if let Some(out) = &opts.track {
        // Label by file name, not path: the track bytes must not depend
        // on which directory the trace was read from.
        let run =
            std::path::Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        write_out(out, &render_blame_track(run, &report));
    }
}

/// One verified attribution: the run's label, the live report, and the
/// blame computed from its trace.
fn verify_run(
    label: &str,
    config: &StackConfig,
    duration_s: f64,
    failures: &mut usize,
) -> BlameReport {
    eprintln!("verify: running a traced {duration_s:.0} s {label} drive...");
    let live = run_drive(config, &RunConfig::seconds(duration_s).with_trace());
    let trace = live.trace.as_ref().expect("traced run without trace data");
    let blame = analyze_blame(trace, &blame_specs()).unwrap_or_else(|e| {
        eprintln!("  FAIL: {label}: blame attribution failed: {e}");
        std::process::exit(1);
    });

    let mut check = |what: String, ok: bool| {
        if ok {
            println!("  ok: {label}: {what}");
        } else {
            println!("  MISMATCH: {label}: {what}");
            *failures += 1;
        }
    };

    for path in &blame.paths {
        let name = &path.name;
        // Exact additivity: integer nanoseconds, every instance.
        let broken =
            path.instances.iter().filter(|i| i.components_sum_ns() != i.total_ns()).count();
        check(
            format!("path {name}: components sum to e2e on all {} instances", path.instances.len()),
            broken == 0,
        );
        // Node blame covers the whole instance too.
        let uncovered = path
            .instances
            .iter()
            .filter(|i| i.node_ns().values().sum::<u64>() != i.total_ns())
            .count();
        check(format!("path {name}: node blame covers every instance"), uncovered == 0);
        // The blame-side latency distribution is the recorder's, bit-exact.
        let live_samples =
            live.recorder.path_latencies(name).map(|d| d.samples().to_vec()).unwrap_or_default();
        let dist = path.latency_distribution();
        check(
            format!("path {name}: {} samples match the live recorder", live_samples.len()),
            dist.samples() == live_samples.as_slice(),
        );
        let (live_p99, blame_p99) = (
            live.recorder.path_latencies(name).map(|d| d.summary().p99).unwrap_or(0.0),
            dist.summary().p99,
        );
        check(
            format!("path {name}: p99 {blame_p99:.3} ms reproduced exactly"),
            blame_p99 == live_p99,
        );
        // Attributed energy is finite and non-negative.
        check(
            format!("path {name}: attributed energy finite"),
            path.instances.iter().all(|i| i.energy_mj().is_finite() && i.energy_mj() >= 0.0),
        );
    }

    // Byte-determinism across the Chrome round trip: an external tool
    // reading the exported JSON must reproduce the attribution exactly.
    let rendered = render_chrome_trace(label, trace);
    let doc = json::parse(&rendered).expect("exported trace must parse");
    let rehydrated = trace_from_chrome(&doc).expect("exported trace must rehydrate");
    let reblamed = analyze_blame(&rehydrated, &blame_specs()).expect("rehydrated trace blames");
    check(
        "blame CSV is byte-identical across the Chrome round trip".to_string(),
        render_blame_csv(&blame) == render_blame_csv(&reblamed),
    );
    check(
        "blame track is byte-identical across the Chrome round trip".to_string(),
        render_blame_track(label, &blame) == render_blame_track(label, &reblamed),
    );
    blame
}

fn verify(duration_s: f64, detector: DetectorKind) {
    let mut failures = 0usize;
    let clean = paper_config(detector);
    let blame = verify_run("clean", &clean, duration_s, &mut failures);

    let mut faulted = paper_config(detector);
    faulted.faults = FaultPlan::parse("crash:ndt_matching@3").unwrap();
    let fault_blame = verify_run("crash-faulted", &faulted, duration_s, &mut failures);
    // The crash must surface as degraded blame somewhere, not silently
    // vanish from the attribution.
    let degraded: u64 = fault_blame
        .paths
        .iter()
        .flat_map(|p| &p.instances)
        .map(|i| i.component_ns()[av_trace::blame::Component::Degraded.idx()])
        .sum();
    if degraded == 0 {
        println!("  MISMATCH: crash-faulted: no degraded time attributed");
        failures += 1;
    } else {
        println!("  ok: crash-faulted: {degraded} ns attributed as degraded");
    }

    println!();
    print!("{}", render_blame_summary(&blame));
    if failures > 0 {
        eprintln!("blame verify FAILED: {failures} mismatch(es)");
        std::process::exit(1);
    }
    println!("blame verify passed: attribution is exact, additive, and byte-stable");
}

fn main() {
    let mut file: Option<String> = None;
    let mut do_verify = false;
    let mut duration_s = 10.0;
    let mut detector = DetectorKind::Ssd512;
    let mut opts = FileOpts { csv: None, paths_csv: None, label: "trace".to_string(), track: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify" => do_verify = true,
            "--duration" => {
                let value = args.next().expect("--duration needs seconds");
                duration_s = value.parse().expect("invalid duration");
            }
            "--detector" => {
                let value = args.next().expect("--detector needs a name");
                detector = DetectorKind::ALL
                    .into_iter()
                    .find(|d| d.name().eq_ignore_ascii_case(&value))
                    .unwrap_or_else(|| {
                        eprintln!("unknown detector: {value} (try ssd512, ssd300, yolov3)");
                        std::process::exit(2);
                    });
            }
            "--csv" => opts.csv = Some(args.next().expect("--csv needs a path")),
            "--paths-csv" => {
                opts.paths_csv = Some(args.next().expect("--paths-csv needs a path"));
            }
            "--label" => opts.label = args.next().expect("--label needs a value"),
            "--track" => opts.track = Some(args.next().expect("--track needs a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: blame_report <trace.json> [--csv <out>] [--paths-csv <out>] \
                     [--label <l>] [--track <out>] | --verify [--duration <s>] \
                     [--detector <name>]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    match (file, do_verify) {
        (Some(path), false) => analyze_file(&path, &opts),
        (None, true) => verify(duration_s, detector),
        (Some(_), true) => {
            eprintln!("--verify runs its own drive; do not also pass a trace file");
            std::process::exit(2);
        }
        (None, false) => {
            eprintln!("usage: blame_report <trace.json> | --verify");
            std::process::exit(2);
        }
    }
}
