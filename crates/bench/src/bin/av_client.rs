//! `av_client` — command-line client for the scenario service.
//!
//! ```text
//! av_client --addr HOST:PORT --ping
//! av_client --addr HOST:PORT --shutdown [--no-drain]
//! av_client --addr HOST:PORT (--line JSON | --request FILE)
//!           [--out FILE] [--events FILE] [--quiet]
//! ```
//!
//! Work requests stream: each `event` frame's payload is printed as it
//! arrives (suppress with `--quiet`), and the terminal `result` body is
//! printed last. `--out` writes the raw body bytes to a file and
//! `--events` the raw event payloads (one per line) — exactly as sent,
//! so two invocations can be byte-compared with `cmp`. The serving
//! stats (queue wait, execution time, whether the content-addressed
//! store answered) go to stderr. Exits nonzero on reject or error.

use av_serve::client::Outcome;
use av_serve::Client;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;

struct Options {
    addr: SocketAddr,
    action: Action,
    out: Option<PathBuf>,
    events: Option<PathBuf>,
    quiet: bool,
}

enum Action {
    Ping,
    Shutdown { drain: bool },
    Run { line: String },
}

fn parse_args() -> Options {
    let mut addr = None;
    let mut action = None;
    let mut out = None;
    let mut events = None;
    let mut quiet = false;
    let mut drain = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--addr" => {
                let spec = value("host:port");
                addr = Some(
                    spec.to_socket_addrs()
                        .unwrap_or_else(|e| panic!("cannot resolve {spec}: {e}"))
                        .next()
                        .expect("resolved address"),
                );
            }
            "--ping" => action = Some(Action::Ping),
            "--shutdown" => action = Some(Action::Shutdown { drain: true }),
            "--no-drain" => drain = false,
            "--line" => action = Some(Action::Run { line: value("a request JSON line") }),
            "--request" => {
                let path = value("a file");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                let line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("").to_string();
                action = Some(Action::Run { line });
            }
            "--out" => out = Some(PathBuf::from(value("a file"))),
            "--events" => events = Some(PathBuf::from(value("a file"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: av_client --addr HOST:PORT (--ping | --shutdown [--no-drain] | \
                     --line JSON | --request FILE) [--out FILE] [--events FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let mut action = action.unwrap_or_else(|| {
        eprintln!("one of --ping / --shutdown / --line / --request is required");
        std::process::exit(2);
    });
    if let Action::Shutdown { drain: d } = &mut action {
        *d = drain;
    }
    Options {
        addr: addr.unwrap_or_else(|| {
            eprintln!("--addr HOST:PORT is required");
            std::process::exit(2);
        }),
        action,
        out,
        events,
        quiet,
    }
}

fn main() {
    let options = parse_args();
    let mut client = Client::connect(options.addr).expect("connect to service");
    match options.action {
        Action::Ping => {
            let pong = client.ping("cli-ping").expect("ping");
            println!("{pong}");
        }
        Action::Shutdown { drain } => {
            let bye = client.shutdown("cli-shutdown", drain).expect("shutdown");
            println!("{bye}");
        }
        Action::Run { line } => {
            let response = client.run(&line).expect("request round-trip");
            if !options.quiet {
                for payload in &response.events {
                    println!("{payload}");
                }
            }
            if let Some(path) = &options.events {
                let mut text = response.events.join("\n");
                if !text.is_empty() {
                    text.push('\n');
                }
                std::fs::write(path, text).expect("write events file");
            }
            match (&response.cached, &response.queue_wait_ms, &response.exec_ms) {
                (Some(cached), Some(wait), Some(exec)) => eprintln!(
                    "stats: cached={cached} queue_wait_ms={wait:.2} exec_ms={exec:.2} \
                     events={}",
                    response.events.len()
                ),
                _ => eprintln!("stats: none reported ({} events)", response.events.len()),
            }
            match &response.outcome {
                Outcome::Completed { body } => {
                    println!("{body}");
                    if let Some(path) = &options.out {
                        std::fs::write(path, body).expect("write body file");
                    }
                }
                Outcome::Rejected { verdict, reason } => {
                    eprintln!("rejected ({verdict}): {reason}");
                    std::process::exit(3);
                }
                Outcome::Failed { reason } => {
                    eprintln!("error: {reason}");
                    std::process::exit(1);
                }
            }
        }
    }
}
