//! Minimal wall-clock micro-benchmark harness — the in-house stand-in for
//! Criterion, keeping bench targets hermetic (no registry access).
//!
//! The API mirrors the small slice of Criterion the benches use
//! (`bench_function` + `b.iter(..)`), so a target reads the same either
//! way: each sample invokes the closure once, the closure times the work
//! it wraps with `iter`, and the harness prints median/min/max across
//! samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A benchmark runner: collects `sample_size` timed samples per
/// registered function and prints a summary line.
pub struct Bench {
    sample_size: u32,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::new()
    }
}

impl Bench {
    /// Creates a runner with the default sample count (20).
    pub fn new() -> Bench {
        Bench { sample_size: 20 }
    }

    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: u32) -> Bench {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up invocation, then `sample_size` timed
    /// samples, then a `name ... median [min .. max]` report.
    pub fn bench_function<F: FnMut(&mut Sampler)>(&mut self, name: &str, mut f: F) {
        let mut warmup = Sampler::new();
        f(&mut warmup);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let mut sampler = Sampler::new();
            f(&mut sampler);
            if sampler.iters > 0 {
                per_iter.push(sampler.total.as_secs_f64() / sampler.iters as f64);
            }
        }
        per_iter.sort_by(f64::total_cmp);
        if per_iter.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<40} {:>12} [{} .. {}]",
            format_time(median),
            format_time(min),
            format_time(max),
        );
    }
}

/// Handed to each benchmark closure; [`Sampler::iter`] times one
/// execution of the wrapped work.
pub struct Sampler {
    total: Duration,
    iters: u64,
}

impl Sampler {
    fn new() -> Sampler {
        Sampler { total: Duration::ZERO, iters: 0 }
    }

    /// Times one execution of `f`, keeping its result opaque to the
    /// optimizer.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let value = f();
        self.total += start.elapsed();
        self.iters += 1;
        black_box(value);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_counts_iterations() {
        let mut s = Sampler::new();
        s.iter(|| 1 + 1);
        s.iter(|| 2 + 2);
        assert_eq!(s.iters, 2);
    }

    #[test]
    fn bench_function_runs_all_samples() {
        let mut calls = 0u32;
        Bench::new().sample_size(5).bench_function("noop", |b| {
            calls += 1;
            b.iter(|| ());
        });
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
