//! Benchmark support: shared configuration helpers for the bench
//! targets and the `repro` binary, plus the in-house micro-benchmark
//! harness in [`microbench`].

#![warn(missing_docs)]

pub mod microbench;

use av_core::stack::{RunConfig, StackConfig};
use av_vision::DetectorKind;

/// The paper-scale configuration (8-minute drive, full sensors).
pub fn paper_config(detector: DetectorKind) -> StackConfig {
    StackConfig::paper_default(detector)
}

/// A reduced configuration for quick runs (`repro --quick`): the same
/// world and sensors, shorter drive.
pub fn quick_run() -> RunConfig {
    RunConfig::seconds(60.0)
}

/// The full paper-scale run config.
pub fn paper_run() -> RunConfig {
    RunConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_consistent() {
        let c = paper_config(DetectorKind::Ssd512);
        assert_eq!(c.scenario.duration_s, 480.0);
        assert_eq!(quick_run().duration_s, Some(60.0));
        assert_eq!(paper_run().duration_s, None);
    }
}
