//! The assembled autonomous-driving stack and its characterization
//! harness — the reproduction's equivalent of "Autoware + the paper's
//! profiling methodology".
//!
//! # What lives here
//!
//! * [`msg`] — the message payloads flowing between nodes.
//! * [`topics`] — topic names, matching the paper's Table IV spellings.
//! * [`calib`] — the calibrated per-node cost models mapping real
//!   algorithm work (points, iterations, candidates, objects) to modeled
//!   CPU/GPU service demands, plus the platform parameters.
//! * [`nodes`] — every Autoware node as an [`av_ros::Node`]: the real
//!   algorithm runs in the callback, its work profile feeds the cost
//!   model, its outputs are published with lineage.
//! * [`stack`] — scenario + sensors + node graph assembly; launch a full
//!   stack (or a single node in isolation, for Fig 8) and run a drive.
//! * [`experiments`] — one function per paper artifact (Fig 5–8,
//!   Tables III–VII), each returning the paper-style rows.
//! * [`findings`] — quantitative checks of the paper's Findings 1–5.
//! * [`metrics`] — scalar per-run facts (tail latency, deadline factor,
//!   drop rate) shared by the sweep aggregator and the search objective.
//! * [`ckptstore`] — the crash-safe on-disk checkpoint store: persist,
//!   verify, quarantine and resume drives across processes.
//! * [`fault`] — the deterministic fault plan: seeded crashes, stalls,
//!   slowdowns, edge drops/duplicates and timer skews, parsed from a
//!   compact DSL.
//! * [`supervision`] — the layer that reacts: heartbeat/liveness
//!   tracking, restart with exponential backoff, and graceful
//!   degradation (dead-reckoning localization, cheapest-detector
//!   fallback, planner safe-stop).
//!
//! # Quickstart
//!
//! ```no_run
//! use av_core::stack::{RunConfig, StackConfig};
//! use av_vision::DetectorKind;
//!
//! let config = StackConfig::smoke_test(DetectorKind::YoloV3);
//! let report = av_core::stack::run_drive(&config, &RunConfig::default());
//! println!("{}", report.node_table());
//! ```

#![warn(missing_docs)]

pub mod calib;
pub mod ckptstore;
pub mod determinism;
pub mod experiments;
pub mod fault;
pub mod findings;
pub mod metrics;
pub mod msg;
pub mod nodes;
pub mod parallel;
pub mod snapshot;
pub mod stack;
pub mod supervision;
pub mod topics;

pub use msg::Msg;
pub use stack::{RunConfig, RunReport, StackConfig};
