//! Stack assembly and drive execution.
//!
//! [`run_drive`] is the reproduction's experiment engine: generate the
//! world, build the HD map (the paper's `ndt_mapping` step), register the
//! node graph on the bus, replay the sensor streams in virtual time, and
//! return a [`RunReport`] with everything the paper's tables and figures
//! are derived from.

use crate::calib::Calibration;
use crate::fault::{FaultPlan, FaultSpec};
use crate::msg::Msg;
use crate::nodes::*;
use crate::supervision::{FallbackLocalizer, FaultReport, SupervisionPolicy, Supervisor};
use crate::topics::{self, nodes as node_names};
use av_des::{RngStreams, Sim, SimDuration, SimTime, SnapReader, SnapWriter, StreamRng};
use av_perception::{
    ClusterParams, CostmapParams, FusionParams, NdtMappingBuilder, RayGroundParams,
};
use av_planning::{LocalPlannerParams, PurePursuitParams, TwistFilterParams, Waypoint};
use av_platform::{CpuStats, GpuStats, Platform, PowerReport};
use av_profiling::{LatencyRecorder, PathSpec, SharedRecorder, Summary, Table};
use av_ros::{
    Bus, BusObserver, DropStats, FanoutObserver, FaultKind, Lineage, Message, Node, Outbox,
    RestoredContinuation, Source, SubscriptionSpec,
};
use av_trace::{MetricSample, SharedTracer, TraceConfig, TraceData, TraceEvent};
use av_tracking::{PredictParams, TrackerParams};
use av_vision::DetectorKind;
use av_world::{CameraConfig, CameraModel, LidarConfig, LidarModel, ScenarioConfig, World};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

pub use av_des::SchedPolicyKind;

/// The computation paths of Table IV, as [`PathSpec`]s.
pub fn computation_paths() -> Vec<PathSpec> {
    vec![
        PathSpec::new("localization", node_names::NDT_MATCHING, Source::Lidar),
        PathSpec::new("costmap_points", node_names::COSTMAP_GENERATOR, Source::Lidar),
        PathSpec::new("costmap_vision_obj", node_names::COSTMAP_GENERATOR_OBJ, Source::Camera),
        PathSpec::new("costmap_cluster_obj", node_names::COSTMAP_GENERATOR_OBJ, Source::Lidar),
    ]
}

/// Static scheduler metadata per subscription: `(node, topic, rank,
/// downstream_ms)`. `rank` is the Priority policy's static urgency
/// (lower = dispatched first); `downstream_ms` is the estimated
/// remaining chain cost past this node, the slack term the chain-aware
/// policy subtracts from the path deadline. Both are calibrated against
/// the default cost model; they are scheduling hints, not measurements,
/// so they stay static across detectors. Entries for nodes a
/// configuration does not launch are skipped at wiring time.
pub fn sched_metadata() -> Vec<(&'static str, &'static str, u64, u64)> {
    use crate::topics::*;
    vec![
        // Localization chain: the paper's deadline-defining path.
        (node_names::VOXEL_GRID_FILTER, POINTS_RAW, 10, 60),
        (node_names::NDT_MATCHING, FILTERED_POINTS, 10, 15),
        (node_names::NDT_MATCHING, GNSS_POSE, 40, 15),
        (node_names::NDT_MATCHING, IMU_RAW, 40, 15),
        (node_names::FALLBACK_LOCALIZER, GNSS_POSE, 40, 10),
        (node_names::FALLBACK_LOCALIZER, IMU_RAW, 40, 10),
        // LiDAR perception chain.
        (node_names::RAY_GROUND_FILTER, POINTS_RAW, 20, 45),
        (node_names::EUCLIDEAN_CLUSTER, POINTS_NO_GROUND, 20, 20),
        // Vision chain (heaviest single node).
        (node_names::VISION_DETECTION, IMAGE_RAW, 20, 25),
        // Fusion / tracking mid-chain.
        (node_names::RANGE_VISION_FUSION, LIDAR_DETECTOR_OBJECTS, 25, 20),
        (node_names::RANGE_VISION_FUSION, IMAGE_DETECTOR_OBJECTS, 25, 20),
        (node_names::RANGE_VISION_FUSION, NDT_POSE, 35, 20),
        (node_names::IMM_UKF_PDA_TRACKER, FUSION_TOOLS_OBJECTS, 25, 15),
        (node_names::IMM_UKF_PDA_TRACKER, RADAR_DETECTOR_OBJECTS, 25, 15),
        (node_names::UKF_TRACK_RELAY, OBJECT_TRACKER_OBJECTS, 25, 12),
        (node_names::NAIVE_MOTION_PREDICT, DETECTION_OBJECTS, 25, 10),
        // Costmap sinks (path terminals).
        (node_names::COSTMAP_GENERATOR, POINTS_NO_GROUND, 15, 2),
        (node_names::COSTMAP_GENERATOR_OBJ, MOTION_PREDICTOR_OBJECTS, 15, 2),
        (node_names::COSTMAP_GENERATOR_OBJ, NDT_POSE, 35, 2),
        // Extensions.
        (node_names::TRAFFIC_LIGHT_RECOGNITION, IMAGE_RAW, 30, 5),
        (node_names::TRAFFIC_LIGHT_RECOGNITION, NDT_POSE, 35, 5),
        (node_names::RADAR_DETECTION, RADAR_RAW, 20, 18),
        (node_names::RADAR_DETECTION, NDT_POSE, 35, 18),
        // Actuation: most control-critical, cheapest remaining work.
        (node_names::OP_LOCAL_PLANNER, COSTMAP_OBJECTS, 5, 8),
        (node_names::OP_LOCAL_PLANNER, NDT_POSE, 35, 8),
        (node_names::PURE_PURSUIT, FINAL_WAYPOINTS, 5, 3),
        (node_names::PURE_PURSUIT, NDT_POSE, 35, 3),
        (node_names::TWIST_FILTER, TWIST_RAW, 5, 1),
    ]
}

/// A sensor outage window for failure injection ("stimulating the AV
/// system on a varied number of situations to capture such flaws",
/// §IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Blackout {
    /// Which sensor goes dark.
    pub source: Source,
    /// Outage start, seconds into the drive.
    pub from_s: f64,
    /// Outage end, seconds into the drive.
    pub to_s: f64,
}

impl Blackout {
    /// `true` while `t` (seconds) is inside the outage. The window is
    /// half-open, `[from_s, to_s)`: a sensor tick exactly at `from_s` is
    /// suppressed, a tick exactly at `to_s` publishes again — so
    /// back-to-back windows `[a, b)` + `[b, c)` compose without double-
    /// covering or leaking the boundary instant.
    pub fn covers(&self, t: f64) -> bool {
        t >= self.from_s && t < self.to_s
    }

    /// Validates the window: both endpoints finite, `from_s >= 0`, and
    /// `from_s < to_s` (empty and inverted windows are configuration
    /// bugs, not no-ops).
    pub fn validate(&self) -> Result<(), String> {
        if !self.from_s.is_finite() || !self.to_s.is_finite() {
            return Err(format!(
                "blackout window must be finite, got {}-{}",
                self.from_s, self.to_s
            ));
        }
        if self.from_s < 0.0 {
            return Err(format!("blackout start must be >= 0, got {}", self.from_s));
        }
        if self.from_s >= self.to_s {
            return Err(format!(
                "blackout window must have from < to, got {}-{}",
                self.from_s, self.to_s
            ));
        }
        Ok(())
    }
}

fn blacked_out(blackouts: &[Blackout], source: Source, t: f64) -> bool {
    blackouts.iter().any(|b| b.source == source && b.covers(t))
}

/// Which nodes to launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSelection {
    /// The full perception stack (the paper's measurement setup).
    FullStack,
    /// A single node "running standalone" (Fig 8's isolation runs).
    Isolated(String),
}

/// Full configuration of one characterization run.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Vision detector choice — the experimental variable.
    pub detector: DetectorKind,
    /// Drive scenario.
    pub scenario: ScenarioConfig,
    /// LiDAR sensor parameters.
    pub lidar: LidarConfig,
    /// Camera sensor parameters.
    pub camera: CameraConfig,
    /// Cost-model calibration.
    pub calib: Calibration,
    /// Master seed for all run-level randomness (sensor noise, jitter).
    pub seed: u64,
    /// Node selection (full stack vs isolation).
    pub selection: NodeSelection,
    /// Also launch the actuation layer (planner, pure pursuit, twist
    /// filter). Off for the headline experiments, like the paper.
    pub with_actuation: bool,
    /// Also launch `traffic_light_recognition` (extension: needs the
    /// HD-map light annotations the paper's map lacked). Off for the
    /// headline experiments.
    pub with_traffic_lights: bool,
    /// Also launch the radar pipeline (extension: the sensor interface
    /// the paper's Autoware had "under development"). Off for the
    /// headline experiments.
    pub with_radar: bool,
    /// Radar sensor parameters (used when `with_radar`).
    pub radar: av_world::RadarConfig,
    /// Sensor blackout windows for failure injection: during each window
    /// the named sensor's driver publishes nothing.
    pub blackouts: Vec<Blackout>,
    /// Node-fault plan (crashes, stalls, slowdowns, edge drops, timer
    /// skews). An empty plan arms nothing: the run is bit-identical to
    /// one built before the fault plane existed.
    pub faults: FaultPlan,
    /// Supervision-layer policy (liveness, restart backoff, fallbacks).
    /// Only consulted when the fault plan is non-empty.
    pub supervision: SupervisionPolicy,
    /// Queue capacity of the single-depth data subscriptions (the paper's
    /// Autoware launch files use depth 1 everywhere on the perception
    /// chain; sweeps vary this to study head-of-line drops). The GNSS and
    /// IMU side channels keep their own fixed depths.
    pub queue_capacity: usize,
    /// Callback scheduling policy: how a node picks among several ready
    /// messages when it frees up (and which sensor clock wins an
    /// exact-tie). [`SchedPolicyKind::Fifo`] reproduces the historical
    /// arrival order bit-for-bit; the other policies reorder only
    /// same-instant choices, never time itself.
    pub sched_policy: SchedPolicyKind,
    /// Voxel leaf size for `voxel_grid_filter`, meters.
    pub voxel_leaf: f64,
    /// NDT map cell size, meters.
    pub map_cell_size: f64,
}

impl StackConfig {
    /// The paper-scale configuration: 8-minute urban drive, default
    /// sensors.
    pub fn paper_default(detector: DetectorKind) -> StackConfig {
        StackConfig {
            detector,
            scenario: ScenarioConfig::urban_drive(),
            lidar: LidarConfig::default(),
            camera: CameraConfig::default(),
            calib: Calibration::default(),
            seed: 2020,
            selection: NodeSelection::FullStack,
            with_actuation: false,
            with_traffic_lights: false,
            with_radar: false,
            radar: av_world::RadarConfig::default(),
            blackouts: Vec::new(),
            faults: FaultPlan::default(),
            supervision: SupervisionPolicy::default(),
            queue_capacity: 1,
            sched_policy: SchedPolicyKind::Fifo,
            voxel_leaf: 1.0,
            map_cell_size: 2.0,
        }
    }

    /// A small, fast configuration for tests: 10 s drive, tiny LiDAR.
    pub fn smoke_test(detector: DetectorKind) -> StackConfig {
        StackConfig {
            scenario: ScenarioConfig::smoke_test(),
            lidar: LidarConfig::tiny(),
            ..StackConfig::paper_default(detector)
        }
    }
}

/// Runtime options independent of the stack configuration.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Overrides the scenario duration (seconds), e.g. for quick runs.
    pub duration_s: Option<f64>,
    /// When set, record a structured event trace and metrics time series
    /// (see `av-trace`). Tracing is read-only — enabling it does not
    /// perturb any other run output.
    pub trace: Option<TraceConfig>,
}

impl RunConfig {
    /// A run capped at `secs` seconds, without tracing.
    pub const fn seconds(secs: f64) -> RunConfig {
        RunConfig { duration_s: Some(secs), trace: None }
    }

    /// Enables tracing at the default cadence.
    pub fn with_trace(mut self) -> RunConfig {
        self.trace = Some(TraceConfig::default());
        self
    }
}

/// Everything measured during a drive.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Detector the run used.
    pub detector: DetectorKind,
    /// Virtual duration of the drive.
    pub elapsed: SimDuration,
    /// The latency recorder (node + path distributions). Owned, so the
    /// report is `Send` and can be returned from a worker thread.
    pub recorder: LatencyRecorder,
    /// Per-subscription delivery/drop statistics.
    pub drops: Vec<DropStats>,
    /// CPU statistics.
    pub cpu: CpuStats,
    /// CPU core count (for utilization shares).
    pub cores: usize,
    /// GPU statistics.
    pub gpu: GpuStats,
    /// Mean power over the drive.
    pub power: PowerReport,
    /// Mean localization error vs ground truth, meters (sanity metric).
    pub localization_error_m: f64,
    /// Localization error over the final seconds of the drive, meters —
    /// distinguishes transient divergence (e.g. during an injected
    /// blackout) from a permanently lost filter.
    pub localization_error_final_m: f64,
    /// The structured event trace, when [`RunConfig::trace`] was set.
    /// Owned data, so the report stays `Send`.
    pub trace: Option<TraceData>,
    /// Fault/supervision outcomes, when the fault plan was non-empty.
    /// `None` for clean runs, so their reports (and golden hashes) are
    /// untouched by the fault plane's existence.
    pub fault: Option<FaultReport>,
}

impl RunReport {
    /// Summary for one node.
    pub fn node_summary(&self, node: &str) -> Summary {
        self.recorder.node_summary(node)
    }

    /// Summary for one computation path.
    pub fn path_summary(&self, path: &str) -> Summary {
        self.recorder.path_summary(path)
    }

    /// The end-to-end latency summary: the worst path by mean (the
    /// paper's definition) with its name.
    pub fn end_to_end(&self) -> Option<(String, Summary)> {
        self.recorder.worst_path_by_mean()
    }

    /// Fig 5-style per-node latency table.
    pub fn node_table(&self) -> Table {
        let mut table = Table::with_headers(&[
            "Node",
            "n",
            "Mean (ms)",
            "Std",
            "Min",
            "p25",
            "Median",
            "p75",
            "p99",
            "Max",
        ]);
        for node in node_names::PERCEPTION {
            let s = self.node_summary(node);
            if s.count == 0 {
                continue;
            }
            table.add_row(vec![
                node.to_string(),
                s.count.to_string(),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.std_dev),
                format!("{:.2}", s.min),
                format!("{:.2}", s.p25),
                format!("{:.2}", s.median),
                format!("{:.2}", s.p75),
                format!("{:.2}", s.p99),
                format!("{:.2}", s.max),
            ]);
        }
        table
    }

    /// Fig 6-style path latency table.
    pub fn path_table(&self) -> Table {
        let mut table = Table::with_headers(&[
            "Computation path",
            "n",
            "Mean (ms)",
            "p25",
            "Median",
            "p75",
            "p99",
            "Max",
        ]);
        let recorder = &self.recorder;
        for path in recorder.paths() {
            let s = recorder.path_summary(&path);
            if s.count == 0 {
                continue;
            }
            table.add_row(vec![
                path,
                s.count.to_string(),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.p25),
                format!("{:.2}", s.median),
                format!("{:.2}", s.p75),
                format!("{:.2}", s.p99),
                format!("{:.2}", s.max),
            ]);
        }
        table
    }

    /// Table III-style drop table (subscriptions with at least one drop).
    pub fn drop_table(&self) -> Table {
        let mut table =
            Table::with_headers(&["Topic", "Subscribed by node", "Delivered", "Dropped", "%"]);
        for d in &self.drops {
            if d.dropped == 0 {
                continue;
            }
            table.add_row(vec![
                d.topic.clone(),
                d.node.clone(),
                d.delivered.to_string(),
                d.dropped.to_string(),
                format!("{:.1}%", d.drop_rate() * 100.0),
            ]);
        }
        table
    }
}

/// Shares a node between the bus and the caller (so drivers can read the
/// NDT pose for ground-truth comparison).
struct Shared<N>(Rc<RefCell<N>>);

impl<N: Node<Msg>> Node<Msg> for Shared<N> {
    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        self.0.borrow_mut().on_message(topic, msg, out)
    }

    fn on_restart(&mut self) {
        self.0.borrow_mut().on_restart();
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.0.borrow().save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) {
        self.0.borrow_mut().load_state(r);
    }
}

use av_ros::Execution;

/// Builds the HD map the way the authors did: run the mapping utility
/// over the drive's own LiDAR data at known poses (§III-A).
pub fn build_map(
    world: &World,
    lidar: &LidarModel,
    cell_size: f64,
    rng: &mut StreamRng,
) -> av_pointcloud::NdtGrid {
    let mut builder = NdtMappingBuilder::new(0.5);
    let route_len = world.route().length();
    let lap_time = route_len / world.config().ego_speed;
    // One scan per ~8 m of travel, one full lap (the drive loops).
    let scans = (route_len / 8.0).ceil() as usize;
    for i in 0..scans {
        let t = i as f64 * lap_time / scans as f64;
        let mut scene = world.snapshot(t);
        // Mapping rigs drive at quiet hours and mapping pipelines scrub
        // dynamic objects; freezing traffic into the map would leave ghost
        // geometry that corrupts every later scan match.
        scene.objects.clear();
        let sweep = lidar.scan(world, &scene, rng);
        // Mapping uses the ground-truth pose (the calibrated mapping rig).
        let mut pose = scene.ego.pose;
        pose.translation.z = lidar.config().mount_height;
        builder.add_sweep(&sweep, &pose);
    }
    let (_, grid) = builder.build(cell_size, 6);
    grid
}

fn global_waypoints(world: &World) -> Vec<Waypoint> {
    let route = world.route();
    let n = (route.length() / 4.0).ceil() as usize;
    (0..n)
        .map(|i| {
            let s = i as f64 * route.length() / n as f64;
            Waypoint { position: route.pose_with_offset(s, -1.75).translation, speed_limit: 13.9 }
        })
        .collect()
}

fn wants(selection: &NodeSelection, node: &str) -> bool {
    match selection {
        NodeSelection::FullStack => true,
        NodeSelection::Isolated(only) => only == node,
    }
}

/// Runs one full characterization drive and reports the measurements.
///
/// Deterministic: identical configs produce identical reports.
pub fn run_drive(config: &StackConfig, run: &RunConfig) -> RunReport {
    drive(config, run, None, None).0
}

/// Runs a drive like [`run_drive`] and additionally captures a
/// [`Checkpoint`] of the complete simulation state at virtual time
/// `barrier_s`, taken before the end-of-run drain.
///
/// The returned report is identical to the one [`run_drive`] produces
/// for the same inputs — capturing a checkpoint is a pure read.
///
/// # Panics
///
/// Panics unless `0 < barrier_s <= duration`.
pub fn checkpoint_drive(
    config: &StackConfig,
    run: &RunConfig,
    barrier_s: f64,
) -> (RunReport, Checkpoint) {
    let (report, checkpoint) = drive(config, run, None, Some(barrier_s));
    (report, checkpoint.expect("drive captures when a barrier is supplied"))
}

/// Resumes a drive from `checkpoint` and runs it to `run`'s duration.
///
/// The resumed run is byte-identical to a straight-through
/// [`run_drive`] of the same configuration: same report, same trace,
/// same golden hash. Only the virtual seconds before the checkpoint's
/// barrier are skipped — they were simulated once, when the checkpoint
/// was captured.
///
/// The configuration must match the one the checkpoint was captured
/// under, except for blackout windows, which may differ when every
/// window of both configurations starts strictly after the barrier
/// (the prefix-sharing contract: such runs are indistinguishable up to
/// the barrier).
///
/// # Panics
///
/// Panics when the configuration does not match the checkpoint, or the
/// run duration lies before the checkpoint's barrier.
pub fn resume_drive(config: &StackConfig, run: &RunConfig, checkpoint: &Checkpoint) -> RunReport {
    drive(config, run, Some(checkpoint), None).0
}

/// [`resume_drive`], additionally capturing a new [`Checkpoint`] at
/// `barrier_s` — the chaining primitive successive halving uses to
/// extend survivors rung by rung without re-simulating their past.
///
/// # Panics
///
/// Panics unless `checkpoint barrier < barrier_s <= duration`.
pub fn resume_drive_checkpointed(
    config: &StackConfig,
    run: &RunConfig,
    checkpoint: &Checkpoint,
    barrier_s: f64,
) -> (RunReport, Checkpoint) {
    let (report, next) = drive(config, run, Some(checkpoint), Some(barrier_s));
    (report, next.expect("drive captures when a barrier is supplied"))
}

/// One pause point of a [`run_drive_streamed`] drive.
#[derive(Debug)]
pub struct DriveProgress<'a> {
    /// Virtual time of the pause, seconds. Multiples of the slice width
    /// for intermediate pauses; the run horizon for the final one.
    pub time_s: f64,
    /// `true` on the last call, after the end-of-run drain.
    pub done: bool,
    /// Trace events recorded since the previous pause, in emission
    /// order. Empty when the run is untraced.
    pub new_events: &'a [TraceEvent],
    /// Total events recorded so far (cumulative over all pauses).
    pub events_total: usize,
}

/// Runs a drive like [`run_drive`], pausing every `slice_s` virtual
/// seconds to hand the caller a [`DriveProgress`] — the streaming seam
/// the scenario service uses to ship trace events while the run is
/// still executing.
///
/// The report is byte-identical to [`run_drive`]'s for the same inputs:
/// pausing is exactly the checkpoint barrier mechanism without a
/// capture, and reading the tracer between slices is a pure read.
/// Because trace events are recorded in nondecreasing
/// [`TraceEvent::emission_time`] order, the pause at barrier `t`
/// delivers precisely the events with emission time `<= t` — so a
/// finished run's event stream can later be re-partitioned into the
/// identical slice sequence from its `RunReport` alone (how cached
/// responses replay their live event stream byte-for-byte).
///
/// # Panics
///
/// Panics unless `slice_s` is positive and finite.
pub fn run_drive_streamed(
    config: &StackConfig,
    run: &RunConfig,
    slice_s: f64,
    on_progress: &mut dyn FnMut(DriveProgress<'_>),
) -> RunReport {
    drive_streamed(config, run, slice_s, None, false, on_progress).0
}

/// [`run_drive_streamed`], additionally capturing a [`Checkpoint`] at
/// the run horizon (before the end-of-run drain) — how the scenario
/// service persists a resumable snapshot of every drive it answers, so
/// later `extend` requests pick up where this run stopped.
///
/// # Panics
///
/// Panics unless `slice_s` is positive and finite.
pub fn run_drive_streamed_checkpointed(
    config: &StackConfig,
    run: &RunConfig,
    slice_s: f64,
    on_progress: &mut dyn FnMut(DriveProgress<'_>),
) -> (RunReport, Checkpoint) {
    let (report, checkpoint) = drive_streamed(config, run, slice_s, None, true, on_progress);
    (report, checkpoint.expect("drive_streamed captures when asked"))
}

/// Resumes a drive from `checkpoint` and streams it to `run`'s duration
/// like [`run_drive_streamed`] — including the pauses *before* the
/// checkpoint barrier, which are replayed from the restored tracer so
/// the full pulse sequence (times, event payloads, counts) is
/// byte-identical to a cold streamed run of the same configuration.
/// With `capture_final`, additionally captures a new checkpoint at the
/// run horizon (the chaining primitive behind repeated `extend`s).
///
/// # Panics
///
/// Panics when the configuration does not match the checkpoint (see
/// [`resume_drive`]), the run duration lies before the checkpoint's
/// barrier, or `slice_s` is not positive and finite.
pub fn resume_drive_streamed(
    config: &StackConfig,
    run: &RunConfig,
    checkpoint: &Checkpoint,
    slice_s: f64,
    capture_final: bool,
    on_progress: &mut dyn FnMut(DriveProgress<'_>),
) -> (RunReport, Option<Checkpoint>) {
    drive_streamed(config, run, slice_s, Some(checkpoint), capture_final, on_progress)
}

/// The engine behind the streamed entry points: run (fresh or resumed)
/// to the horizon, pausing every `slice_s` virtual seconds. Pauses at
/// or before a resumed checkpoint's barrier never touch the simulator —
/// their event slices are re-partitioned out of the restored tracer by
/// emission time, which the streaming invariant guarantees equals what
/// the live pause delivered.
fn drive_streamed(
    config: &StackConfig,
    run: &RunConfig,
    slice_s: f64,
    from: Option<&Checkpoint>,
    capture_final: bool,
    on_progress: &mut dyn FnMut(DriveProgress<'_>),
) -> (RunReport, Option<Checkpoint>) {
    assert!(slice_s.is_finite() && slice_s > 0.0, "slice_s must be positive and finite");
    let session = build_session(config, run);
    match from {
        None => session.start_fresh(),
        Some(checkpoint) => session.resume_from(checkpoint, config),
    }
    // Everything the restored tracer already holds — exactly the events
    // with emission time at or before the checkpoint barrier. Empty on a
    // fresh start or an untraced run.
    let restored: Vec<TraceEvent> = match &session.tracer {
        Some(tracer) => tracer.events_since(0),
        None => Vec::new(),
    };
    let start = session.sim.now();
    let events_at = |cursor: usize| match &session.tracer {
        Some(tracer) => tracer.events_since(cursor),
        None => Vec::new(),
    };
    let mut cursor = 0usize;
    let mut slice = 1u64;
    loop {
        let barrier = SimTime::from_secs_f64_round(slice_s * slice as f64);
        if barrier >= session.until {
            break;
        }
        let new_events = if barrier < start {
            // Replayed pause: the emission-time prefix of the restored
            // trace, without advancing the simulator (it is already at
            // the checkpoint barrier).
            let n = restored[cursor..].iter().take_while(|e| e.emission_time() <= barrier).count();
            restored[cursor..cursor + n].to_vec()
        } else {
            session.sim.run_until(barrier);
            events_at(cursor)
        };
        cursor += new_events.len();
        on_progress(DriveProgress {
            time_s: barrier.as_secs_f64(),
            done: false,
            new_events: &new_events,
            events_total: cursor,
        });
        slice += 1;
    }
    session.sim.run_until(session.until);
    let checkpoint = capture_final.then(|| session.capture(config, session.until));
    // Let in-flight work complete so the last frames are counted.
    session.sim.run();
    let new_events = events_at(cursor);
    cursor += new_events.len();
    on_progress(DriveProgress {
        time_s: session.until.as_secs_f64(),
        done: true,
        new_events: &new_events,
        events_total: cursor,
    });
    (session.report(config), checkpoint)
}

/// The one engine behind all four public drive entry points: build the
/// session (pure construction, nothing on the event queue), start it
/// fresh or from a checkpoint, optionally pause at a barrier to capture,
/// then run to the end and drain.
fn drive(
    config: &StackConfig,
    run: &RunConfig,
    from: Option<&Checkpoint>,
    capture_at_s: Option<f64>,
) -> (RunReport, Option<Checkpoint>) {
    let session = build_session(config, run);
    match from {
        None => session.start_fresh(),
        Some(checkpoint) => session.resume_from(checkpoint, config),
    }
    let checkpoint = capture_at_s.map(|secs| {
        let barrier = SimTime::from_secs_f64_round(secs);
        assert!(
            barrier > session.sim.now(),
            "checkpoint barrier must lie ahead of the run's start point"
        );
        assert!(barrier <= session.until, "checkpoint barrier must not exceed the run duration");
        session.sim.run_until(barrier);
        session.capture(config, barrier)
    });
    session.sim.run_until(session.until);
    // Let in-flight work complete so the last frames are counted.
    session.sim.run();
    (session.report(config), checkpoint)
}

/// Constructs the whole session — world, map, platform, bus, nodes,
/// supervision, timers — without scheduling a single event. Both a
/// fresh start and a checkpoint resume share this phase; the only
/// randomness consumed is the (stateless) per-name stream derivation
/// plus the map build, identical in both cases.
fn build_session(config: &StackConfig, run: &RunConfig) -> DriveSession {
    let sim = Sim::new();
    let streams = RngStreams::new(config.seed);
    let world = Rc::new(World::generate(&config.scenario));
    let lidar = Rc::new(LidarModel::new(config.lidar.clone()));
    let camera = Rc::new(CameraModel::new(config.camera.clone()));

    // HD map (the paper's ndt_mapping step).
    let map = build_map(&world, &lidar, config.map_cell_size, &mut streams.stream("mapping"));

    let platform = Platform::new(&sim, config.calib.cpu.clone(), config.calib.gpu.clone());
    let bus: Bus<Msg> = Bus::new(&sim, &platform);
    let recorder = SharedRecorder::new(LatencyRecorder::new(computation_paths()));
    let tracer = run.trace.as_ref().map(SharedTracer::new);

    // The supervision layer exists only when the fault plan can do
    // something; a clean run carries no supervisor, no extra observer
    // and no extra RNG stream, keeping it bit-identical to a run built
    // before the fault plane existed.
    let faults_active = !config.faults.is_empty();
    let supervisor: Option<Rc<Supervisor>> = if faults_active {
        config.supervision.validate().expect("invalid supervision policy");
        let mut watched: Vec<&str> = Vec::new();
        for spec in &config.faults.faults {
            if let Some(node) = spec.target_node() {
                if !watched.contains(&node) {
                    watched.push(node);
                }
            }
        }
        Some(Rc::new(Supervisor::new(config.supervision.clone(), &watched)))
    } else {
        None
    };

    // Observer wiring: the recorder stays first so its measurements are
    // untouched by tracing or supervision; the supervisor comes last so
    // it reacts to events both other sinks have already recorded.
    let mut extra_sinks: Vec<Rc<RefCell<dyn BusObserver>>> = Vec::new();
    if let Some(tracer) = &tracer {
        extra_sinks.push(tracer.observer());
    }
    if let Some(sup) = &supervisor {
        extra_sinks.push(sup.observer());
    }
    if extra_sinks.is_empty() {
        bus.set_shared_observer(recorder.observer());
    } else {
        let mut fanout = FanoutObserver::new();
        fanout.push(recorder.observer());
        for sink in extra_sinks {
            fanout.push(sink);
        }
        bus.set_observer(fanout);
    }

    let calib = &config.calib;
    let sel = &config.selection;
    let crashed = config.faults.crashed_nodes();
    let q1 = |topic: &str| SubscriptionSpec::new(topic, config.queue_capacity);

    if wants(sel, node_names::VOXEL_GRID_FILTER) {
        bus.add_node(
            node_names::VOXEL_GRID_FILTER,
            VoxelGridFilterNode::new(config.voxel_leaf, calib, streams.stream("voxel")),
            &[q1(topics::POINTS_RAW)],
        );
    }

    let initial_pose = world.ego_state(0.0).pose;
    let ndt_shared = Rc::new(RefCell::new(NdtMatchingNode::new(
        map,
        initial_pose,
        config.lidar.mount_height,
        calib,
        streams.stream("ndt"),
    )));
    if wants(sel, node_names::NDT_MATCHING) {
        bus.add_node(
            node_names::NDT_MATCHING,
            Shared(Rc::clone(&ndt_shared)),
            &[
                q1(topics::FILTERED_POINTS),
                SubscriptionSpec::new(topics::GNSS_POSE, 4),
                SubscriptionSpec::new(topics::IMU_RAW, 16),
            ],
        );
    }

    if wants(sel, node_names::RAY_GROUND_FILTER) {
        bus.add_node(
            node_names::RAY_GROUND_FILTER,
            RayGroundFilterNode::new(
                RayGroundParams {
                    sensor_height: config.lidar.mount_height,
                    ..RayGroundParams::default()
                },
                calib,
                streams.stream("ground"),
            ),
            &[q1(topics::POINTS_RAW)],
        );
    }

    if wants(sel, node_names::EUCLIDEAN_CLUSTER) {
        bus.add_node(
            node_names::EUCLIDEAN_CLUSTER,
            EuclideanClusterNode::new(ClusterParams::default(), calib, streams.stream("cluster")),
            &[q1(topics::POINTS_NO_GROUND)],
        );
    }

    let mut vision_shared: Option<Rc<RefCell<VisionDetectionNode>>> = None;
    if wants(sel, node_names::VISION_DETECTION) {
        let node = VisionDetectionNode::new(config.detector, calib, streams.stream("vision"));
        if faults_active && crashed.contains(&node_names::VISION_DETECTION) {
            // The supervisor needs a handle for the detector fallback
            // (hot-swap to the cheapest network during post-restart
            // warmup); sharing changes nothing about the node's behavior.
            let shared = Rc::new(RefCell::new(node));
            vision_shared = Some(Rc::clone(&shared));
            bus.add_node(node_names::VISION_DETECTION, Shared(shared), &[q1(topics::IMAGE_RAW)]);
        } else {
            bus.add_node(node_names::VISION_DETECTION, node, &[q1(topics::IMAGE_RAW)]);
        }
    }

    // The dead-reckoning fallback localizer rides along only when the
    // plan can take the primary down; it listens continuously (warm
    // state) but publishes nothing until the supervisor activates it.
    let fallback_loc: Option<Rc<RefCell<FallbackLocalizer>>> = if faults_active
        && crashed.contains(&node_names::NDT_MATCHING)
        && wants(sel, node_names::NDT_MATCHING)
    {
        let node = Rc::new(RefCell::new(FallbackLocalizer::new(
            initial_pose,
            calib,
            streams.stream("fallback_loc"),
        )));
        bus.add_node(
            node_names::FALLBACK_LOCALIZER,
            Shared(Rc::clone(&node)),
            &[
                SubscriptionSpec::new(topics::GNSS_POSE, 4),
                SubscriptionSpec::new(topics::IMU_RAW, 16),
            ],
        );
        Some(node)
    } else {
        None
    };

    if wants(sel, node_names::RANGE_VISION_FUSION) {
        bus.add_node(
            node_names::RANGE_VISION_FUSION,
            RangeVisionFusionNode::new(
                FusionParams {
                    image_width: config.camera.width,
                    hfov_deg: config.camera.hfov_deg,
                    ..FusionParams::default()
                },
                calib,
                streams.stream("fusion"),
            ),
            &[
                q1(topics::LIDAR_DETECTOR_OBJECTS),
                q1(topics::IMAGE_DETECTOR_OBJECTS),
                q1(topics::NDT_POSE),
            ],
        );
    }

    if wants(sel, node_names::IMM_UKF_PDA_TRACKER) {
        bus.add_node(
            node_names::IMM_UKF_PDA_TRACKER,
            ImmUkfPdaTrackerNode::new(TrackerParams::default(), calib, streams.stream("tracker")),
            &[q1(topics::FUSION_TOOLS_OBJECTS), q1(topics::RADAR_DETECTOR_OBJECTS)],
        );
    }

    if wants(sel, node_names::UKF_TRACK_RELAY) {
        bus.add_node(
            node_names::UKF_TRACK_RELAY,
            UkfTrackRelayNode::new(calib, streams.stream("relay")),
            &[q1(topics::OBJECT_TRACKER_OBJECTS)],
        );
    }

    if wants(sel, node_names::NAIVE_MOTION_PREDICT) {
        bus.add_node(
            node_names::NAIVE_MOTION_PREDICT,
            NaiveMotionPredictNode::new(PredictParams::default(), calib, streams.stream("predict")),
            &[q1(topics::DETECTION_OBJECTS)],
        );
    }

    if wants(sel, node_names::COSTMAP_GENERATOR) {
        bus.add_node(
            node_names::COSTMAP_GENERATOR,
            CostmapGeneratorNode::new(CostmapParams::default(), calib, streams.stream("costmap")),
            &[q1(topics::POINTS_NO_GROUND)],
        );
    }

    if wants(sel, node_names::COSTMAP_GENERATOR_OBJ) {
        bus.add_node(
            node_names::COSTMAP_GENERATOR_OBJ,
            CostmapGeneratorObjNode::new(
                CostmapParams::default(),
                calib,
                streams.stream("costmap_obj"),
            ),
            &[q1(topics::MOTION_PREDICTOR_OBJECTS), q1(topics::NDT_POSE)],
        );
    }

    if config.with_traffic_lights {
        bus.add_node(
            node_names::TRAFFIC_LIGHT_RECOGNITION,
            TrafficLightRecognitionNode::new(
                world.traffic_lights().to_vec(),
                calib,
                streams.stream("traffic_light"),
            ),
            &[q1(topics::IMAGE_RAW), q1(topics::NDT_POSE)],
        );
    }

    if config.with_radar {
        bus.add_node(
            node_names::RADAR_DETECTION,
            RadarDetectionNode::new(calib, streams.stream("radar_node")),
            &[q1(topics::RADAR_RAW), q1(topics::NDT_POSE)],
        );
    }

    if config.with_actuation {
        let mut planner = OpLocalPlannerNode::new(
            LocalPlannerParams::default(),
            global_waypoints(&world),
            calib,
            streams.stream("local_planner"),
        );
        if faults_active {
            // Safe-stop degradation: with perception stale beyond the
            // liveness timeout, hold position instead of extrapolating a
            // rollout from a dead pose.
            planner = planner.hold_after_stale(config.supervision.liveness_timeout_s);
        }
        bus.add_node(
            node_names::OP_LOCAL_PLANNER,
            planner,
            &[q1(topics::COSTMAP_OBJECTS), q1(topics::NDT_POSE)],
        );
        bus.add_node(
            node_names::PURE_PURSUIT,
            PurePursuitNode::new(PurePursuitParams::default(), calib, streams.stream("pursuit")),
            &[q1(topics::FINAL_WAYPOINTS), q1(topics::NDT_POSE)],
        );
        bus.add_node(
            node_names::TWIST_FILTER,
            TwistFilterNode::new(TwistFilterParams::default(), calib, streams.stream("twist")),
            &[q1(topics::TWIST_RAW)],
        );
    }

    // --- Scheduler policy -------------------------------------------------
    // FIFO leaves the bus in its construction state: no policy call, no
    // per-subscription metadata, no trace header — the run is bit-identical
    // to one built before scheduling policies existed. Any other policy is
    // wired here, with the paper's 100 ms deadline as the per-path budget.
    if config.sched_policy != SchedPolicyKind::Fifo {
        let budget = SimDuration::from_millis(crate::metrics::DEADLINE_MS as u64);
        bus.set_sched_policy(config.sched_policy, budget);
        let subs = bus.queue_depths();
        for (node, topic, rank, downstream_ms) in sched_metadata() {
            if subs.iter().any(|(t, n, _)| t == topic && n == node) {
                bus.set_sub_sched_meta(node, topic, rank, SimDuration::from_millis(downstream_ms));
            }
        }
        if let Some(tracer) = &tracer {
            tracer.set_policy(config.sched_policy.name());
        }
    }

    // --- Fault plane -----------------------------------------------------
    // Arm every planned fault up front. Each fault announces itself with
    // an `inject` event at t=0 (so traces carry the plan), then acts at
    // its own schedule. Edge faults draw from dedicated per-fault RNG
    // streams, so arming them perturbs no other stream. Timed fault
    // events (inject markers, crashes) are *recorded* here and scheduled
    // by `start_fresh` — or re-inserted by `resume_from` with their
    // original event identity — so construction itself queues nothing.
    let mut fault_events: Vec<FaultEventRec> = Vec::new();
    if faults_active {
        let t = SimTime::from_secs_f64_round;
        let registered = bus.node_names();
        let node_known = |name: &str| registered.iter().any(|n| n == name);
        for spec in &config.faults.faults {
            let label = spec.label();
            let marker = spec.target_node().map(str::to_string).unwrap_or_else(|| match spec {
                FaultSpec::TimerSkew { source, .. } => source.name().to_string(),
                _ => unreachable!("every non-skew fault targets a node"),
            });
            fault_events.push(FaultEventRec {
                time: SimTime::ZERO,
                seq: Cell::new(0),
                action: FaultAction::Inject { marker, label: label.clone() },
            });
            match spec {
                FaultSpec::Crash { node, at_s } => {
                    if node_known(node) {
                        fault_events.push(FaultEventRec {
                            time: t(*at_s),
                            seq: Cell::new(0),
                            action: FaultAction::Crash { node: node.clone() },
                        });
                    }
                }
                FaultSpec::Stall { node, from_s, to_s } => {
                    if node_known(node) {
                        bus.set_stall(node, t(*from_s), t(*to_s));
                    }
                }
                FaultSpec::Slow { node, factor, from_s, to_s } => {
                    if node_known(node) {
                        bus.set_slow(node, *factor, t(*from_s), t(*to_s));
                    }
                }
                FaultSpec::Drop { topic, node, rate, from_s, to_s } => {
                    bus.set_edge_drop(
                        topic,
                        node,
                        *rate,
                        t(*from_s),
                        t(*to_s),
                        streams.stream(&format!("fault-{label}")),
                    );
                }
                FaultSpec::Duplicate { topic, node, rate, from_s, to_s } => {
                    bus.set_edge_duplicate(
                        topic,
                        node,
                        *rate,
                        t(*from_s),
                        t(*to_s),
                        streams.stream(&format!("fault-{label}")),
                    );
                }
                FaultSpec::TimerSkew { .. } => {} // applied to the sensor clocks below
            }
        }
    }

    // Fallback wiring + the supervision heartbeat.
    if let Some(sup) = &supervisor {
        if let Some(fb) = &fallback_loc {
            sup.set_localization_fallback(node_names::NDT_MATCHING, Rc::clone(fb));
        }
        if let Some(vs) = &vision_shared {
            let cheap = DetectorKind::cheapest();
            sup.set_detector_fallback(
                node_names::VISION_DETECTION,
                Rc::clone(vs),
                (config.detector, calib.vision_cost(config.detector)),
                (cheap, calib.vision_cost(cheap)),
            );
        }
    }

    // A publisher timer-skew fault dilates one sensor clock's periods
    // inside its window; every other clock runs unskewed.
    let timer_skew = |source: Source| -> Option<(f64, SimTime, SimTime)> {
        config.faults.faults.iter().find_map(|spec| match spec {
            FaultSpec::TimerSkew { source: s, factor, from_s, to_s } if *s == source => Some((
                *factor,
                SimTime::from_secs_f64_round(*from_s),
                SimTime::from_secs_f64_round(*to_s),
            )),
            _ => None,
        })
    };

    // --- Sensor drivers -------------------------------------------------
    // Timers are registered (closure built, RNG derived) but not armed;
    // arming is the start phase's job. Sensor-noise RNG cells go into the
    // session's registry so checkpoints can carry their positions.
    let duration_s = run.duration_s.unwrap_or(config.scenario.duration_s);
    let until = SimTime::from_secs_f64_round(duration_s);

    let mut timers: Vec<Rc<RefCell<TimerState>>> = Vec::new();
    let mut noise_rngs: Vec<(&'static str, Rc<RefCell<StreamRng>>)> = Vec::new();
    let mut register = |key: u64,
                        period: SimDuration,
                        jitter: SimDuration,
                        rng: StreamRng,
                        skew: Option<(f64, SimTime, SimTime)>,
                        tick: Box<dyn FnMut()>| {
        timers.push(Rc::new(RefCell::new(TimerState {
            sim: sim.clone(),
            key,
            period,
            jitter,
            rng,
            until,
            skew,
            tick,
            pending: None,
        })));
    };
    // Sensor clocks get a static urgency key under a non-FIFO policy so
    // exact-nanosecond tick collisions resolve by sensor criticality
    // instead of registration order. Under FIFO every key is 0 — the
    // historical heap order, bit-for-bit. Infrastructure timers (the
    // samplers, the supervisor) always keep key 0: read-only probes run
    // before the publication they would otherwise observe late.
    let sensor_key = |k: u64| if config.sched_policy == SchedPolicyKind::Fifo { 0 } else { k };

    register(
        sensor_key(1),
        SimDuration::from_secs_f64(1.0 / config.lidar.rate_hz),
        SimDuration::from_millis(2),
        streams.stream("lidar_clock"),
        timer_skew(Source::Lidar),
        {
            let (sim, bus, world, lidar) =
                (sim.clone(), bus.clone(), Rc::clone(&world), Rc::clone(&lidar));
            let rng = Rc::new(RefCell::new(streams.stream("lidar_noise")));
            noise_rngs.push(("lidar_noise", Rc::clone(&rng)));
            let blackouts = config.blackouts.clone();
            Box::new(move || {
                let now = sim.now();
                if blacked_out(&blackouts, Source::Lidar, now.as_secs_f64()) {
                    return;
                }
                let scene = world.snapshot(now.as_secs_f64());
                let sweep = lidar.scan(&world, &scene, &mut rng.borrow_mut());
                bus.publish(
                    topics::POINTS_RAW,
                    Msg::PointCloud(sweep),
                    Lineage::origin(Source::Lidar, now),
                );
            })
        },
    );

    register(
        sensor_key(2),
        SimDuration::from_secs_f64(1.0 / config.camera.rate_hz),
        SimDuration::from_millis(3),
        streams.stream("camera_clock"),
        timer_skew(Source::Camera),
        {
            let (sim, bus, world, camera) =
                (sim.clone(), bus.clone(), Rc::clone(&world), Rc::clone(&camera));
            let blackouts = config.blackouts.clone();
            Box::new(move || {
                let now = sim.now();
                if blacked_out(&blackouts, Source::Camera, now.as_secs_f64()) {
                    return;
                }
                let scene = world.snapshot(now.as_secs_f64());
                let frame = camera.capture(&world, &scene);
                bus.publish(
                    topics::IMAGE_RAW,
                    Msg::Image(frame),
                    Lineage::origin(Source::Camera, now),
                );
            })
        },
    );

    register(
        sensor_key(4),
        SimDuration::from_secs(1),
        SimDuration::ZERO,
        streams.stream("gnss_clock"),
        timer_skew(Source::Gnss),
        {
            let (sim, bus, world) = (sim.clone(), bus.clone(), Rc::clone(&world));
            let rng = Rc::new(RefCell::new(streams.stream("gnss_noise")));
            noise_rngs.push(("gnss_noise", Rc::clone(&rng)));
            let blackouts = config.blackouts.clone();
            Box::new(move || {
                let now = sim.now();
                // A GNSS outage (urban canyon, tunnel) silences the fix
                // stream; the blackout check comes after the noise draw so
                // the RNG stream stays phase-aligned with an uninterrupted
                // run — only the publication is suppressed.
                let ego = world.ego_state(now.as_secs_f64());
                let fix = av_world::GnssFix::sample(&ego, 1.5, &mut rng.borrow_mut());
                if blacked_out(&blackouts, Source::Gnss, now.as_secs_f64()) {
                    return;
                }
                bus.publish(topics::GNSS_POSE, Msg::Gnss(fix), Lineage::origin(Source::Gnss, now));
            })
        },
    );

    register(
        sensor_key(5),
        SimDuration::from_millis(10),
        SimDuration::ZERO,
        streams.stream("imu_clock"),
        timer_skew(Source::Imu),
        {
            let (sim, bus, world) = (sim.clone(), bus.clone(), Rc::clone(&world));
            let rng = Rc::new(RefCell::new(streams.stream("imu_noise")));
            noise_rngs.push(("imu_noise", Rc::clone(&rng)));
            let blackouts = config.blackouts.clone();
            Box::new(move || {
                let now = sim.now();
                let ego = world.ego_state(now.as_secs_f64());
                let sample = av_world::ImuSample::sample(&ego, &mut rng.borrow_mut());
                if blacked_out(&blackouts, Source::Imu, now.as_secs_f64()) {
                    return;
                }
                bus.publish(topics::IMU_RAW, Msg::Imu(sample), Lineage::origin(Source::Imu, now));
            })
        },
    );

    if config.with_radar {
        let radar_model = Rc::new(av_world::RadarModel::new(config.radar.clone()));
        register(
            sensor_key(3),
            SimDuration::from_secs_f64(1.0 / config.radar.rate_hz),
            SimDuration::from_millis(1),
            streams.stream("radar_clock"),
            timer_skew(Source::Radar),
            {
                let (sim, bus, world) = (sim.clone(), bus.clone(), Rc::clone(&world));
                let rng = Rc::new(RefCell::new(streams.stream("radar_noise")));
                noise_rngs.push(("radar_noise", Rc::clone(&rng)));
                let blackouts = config.blackouts.clone();
                Box::new(move || {
                    let now = sim.now();
                    if blacked_out(&blackouts, Source::Radar, now.as_secs_f64()) {
                        return;
                    }
                    let scene = world.snapshot(now.as_secs_f64());
                    let scan = radar_model.scan(&scene, &mut rng.borrow_mut());
                    bus.publish(
                        topics::RADAR_RAW,
                        Msg::Radar(scan),
                        Lineage::origin(Source::Radar, now),
                    );
                })
            },
        );
    }

    // Localization-error sampler (1 Hz diagnostic). The first seconds of
    // a run are a startup transient, not steady-state localization: the
    // matcher still runs at its iteration cap, so scans queue behind the
    // slow first services and the published pose lags truth by the
    // accumulated pipeline delay until the backlog drains (~3 s). The
    // metric is a steady-state sanity check, so sampling starts after a
    // fixed warmup once the filter holds a lock; losses of lock after
    // that show up as divergence.
    const LOC_WARMUP_S: f64 = 4.0;
    let loc_errors = Rc::new(RefCell::new(Vec::<f64>::new()));
    let mut loc_tracking_started: Option<Rc<Cell<bool>>> = None;
    if wants(sel, node_names::NDT_MATCHING) {
        // The lock latch lives in a session-held cell (not a closure
        // local) so checkpoints can carry it across a resume.
        let started = Rc::new(Cell::new(false));
        loc_tracking_started = Some(Rc::clone(&started));
        register(
            0,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
            streams.stream("loc_clock"),
            None,
            {
                let (sim, world) = (sim.clone(), Rc::clone(&world));
                let ndt = Rc::clone(&ndt_shared);
                let fallback = fallback_loc.clone();
                let errors = Rc::clone(&loc_errors);
                Box::new(move || {
                    let now = sim.now();
                    if !started.get() && ndt.borrow().is_localized() {
                        started.set(true);
                    }
                    if !started.get() || now.as_secs_f64() < LOC_WARMUP_S {
                        return;
                    }
                    let truth = world.ego_state(now.as_secs_f64()).pose;
                    // While the dead-reckoning fallback holds the pose
                    // stream, its estimate is the one the stack consumes.
                    let estimate = match &fallback {
                        Some(fb) if fb.borrow().is_active() => fb.borrow().pose(),
                        _ => ndt.borrow().pose(),
                    };
                    errors.borrow_mut().push(
                        truth.translation.truncate().distance(estimate.translation.truncate()),
                    );
                })
            },
        );
    }

    // Trace metrics sampler: a fixed-cadence, read-only probe of queue
    // depths, per-node busy fractions and platform counters. The stream
    // name is unique ("trace_clock") and the jitter zero, so scheduling it
    // draws no randomness and perturbs nothing — a traced run produces
    // bit-identical non-trace outputs to an untraced one.
    let mut trace_prev: Option<Rc<RefCell<TracePrev>>> = None;
    if let Some(tracer) = &tracer {
        tracer.set_topology(
            bus.node_names(),
            bus.queue_depths().into_iter().map(|(topic, node, _)| (topic, node)).collect(),
        );
        let interval = run.trace.as_ref().expect("tracer implies config").sample_interval;
        assert!(!interval.is_zero(), "trace sample interval must be positive");
        // The sampler's delta baselines live in a session-held cell (not
        // closure locals) so checkpoints can carry the phase.
        let prev = Rc::new(RefCell::new(TracePrev::new()));
        trace_prev = Some(Rc::clone(&prev));
        register(0, interval, SimDuration::ZERO, streams.stream("trace_clock"), None, {
            let (sim, bus, platform) = (sim.clone(), bus.clone(), platform.clone());
            let tracer = tracer.clone();
            let power = config.calib.power.clone();
            let cores = config.calib.cpu.cores;
            Box::new(move || {
                let now = sim.now();
                let mut prev = prev.borrow_mut();
                let node_busy = bus.node_busy_times();
                if prev.node_busy.is_empty() {
                    prev.node_busy = vec![SimDuration::ZERO; node_busy.len()];
                }
                let interval_s = interval.as_secs_f64();
                let node_busy_frac: Vec<f64> = node_busy
                    .iter()
                    .zip(prev.node_busy.iter())
                    .map(|((_, busy), prev)| busy.saturating_sub(*prev).as_secs_f64() / interval_s)
                    .collect();
                let cpu_busy = platform.cpu().busy_time_by_now();
                let gpu_busy = platform.gpu().busy_time_by_now();
                let gpu_energy = platform.gpu().stats().total_energy_j;
                let cpu_delta = cpu_busy.saturating_sub(prev.cpu_busy);
                let gpu_delta = gpu_busy.saturating_sub(prev.gpu_busy);
                let energy_delta = gpu_energy - prev.gpu_energy;
                let report = power.interval_power(cpu_delta, cores, energy_delta, interval);
                tracer.push_sample(MetricSample {
                    time: now,
                    queue_depths: bus
                        .queue_depths()
                        .into_iter()
                        .map(|(_, _, depth)| depth as u64)
                        .collect(),
                    node_busy_frac,
                    cpu_util: cpu_delta.as_secs_f64() / (cores as f64 * interval_s),
                    gpu_util: gpu_delta.as_secs_f64() / interval_s,
                    cpu_w: report.cpu_w,
                    gpu_w: report.gpu_w,
                });
                prev.node_busy = node_busy.into_iter().map(|(_, busy)| busy).collect();
                prev.cpu_busy = cpu_busy;
                prev.gpu_busy = gpu_busy;
                prev.gpu_energy = gpu_energy;
            })
        });
    }

    // The supervision heartbeat: the liveness check runs on the same
    // virtual clock, with no jitter, so every supervisor decision is a
    // pure function of the configuration.
    if let Some(sup) = &supervisor {
        register(
            0,
            SimDuration::from_secs_f64(config.supervision.heartbeat_interval_s),
            SimDuration::ZERO,
            streams.stream("supervisor_clock"),
            None,
            {
                let (sim, bus) = (sim.clone(), bus.clone());
                let sup = Rc::clone(sup);
                Box::new(move || sup.tick(&bus, sim.now()))
            },
        );
    }

    DriveSession {
        sim,
        bus,
        platform,
        recorder,
        tracer,
        supervisor,
        timers,
        noise_rngs,
        fault_events,
        loc_errors,
        loc_tracking_started,
        trace_prev,
        until,
    }
}

// --- Periodic timers --------------------------------------------------

/// One registered periodic timer: fires `tick` every `period` (± a small
/// deterministic timing jitter, as real sensor clocks drift — without it
/// the perfectly periodic virtual clocks phase-lock and contention
/// patterns repeat unrealistically) until `until`. First firing after
/// one period.
///
/// `skew` is the fault plane's publisher-timer skew: while the current
/// time is inside `[from, to)`, the whole period (base + jitter draw) is
/// dilated by the factor. The jitter RNG is drawn identically either
/// way, so a skew window shifts phase without desynchronizing the
/// stream from an unskewed run's draw sequence.
///
/// `pending` records the (fire time, event sequence) of the scheduled
/// next tick — the event identity a checkpoint needs to re-insert it on
/// resume in the exact original order among equal-time events.
struct TimerState {
    sim: Sim,
    /// Equal-time urgency key for the tick events (see
    /// `Sim::schedule_at_keyed`): 0 for FIFO runs and infrastructure
    /// timers, a static sensor rank under a non-FIFO policy. Recomputed
    /// from the configuration at build time, so checkpoints never store
    /// it.
    key: u64,
    period: SimDuration,
    jitter: SimDuration,
    rng: StreamRng,
    until: SimTime,
    skew: Option<(f64, SimTime, SimTime)>,
    tick: Box<dyn FnMut()>,
    pending: Option<(SimTime, u64)>,
}

/// Draws the next period and schedules the tick.
fn arm_timer(state: &Rc<RefCell<TimerState>>) {
    let at = {
        let mut s = state.borrow_mut();
        let base = s.period - s.jitter / 2;
        let extra =
            if s.jitter.is_zero() { SimDuration::ZERO } else { s.jitter.mul_f64(s.rng.next_f64()) };
        let mut delay = base + extra;
        if let Some((factor, from, to)) = s.skew {
            let now = s.sim.now();
            if now >= from && now < to {
                delay = delay.mul_f64(factor);
            }
        }
        s.sim.now() + delay
    };
    schedule_tick(state, at);
}

/// Schedules the timer's tick at absolute time `at`, recording the event
/// identity in `pending`. Used both by [`arm_timer`] (fresh arms, drawn
/// delay) and by checkpoint resume (re-inserting a saved pending tick at
/// its original time, without consuming a jitter draw).
fn schedule_tick(state: &Rc<RefCell<TimerState>>, at: SimTime) {
    let (sim, key) = {
        let s = state.borrow();
        (s.sim.clone(), s.key)
    };
    state.borrow_mut().pending = Some((at, sim.next_seq()));
    let state = Rc::clone(state);
    sim.schedule_at_keyed(at, key, move || {
        {
            let mut s = state.borrow_mut();
            s.pending = None;
            if s.sim.now() > s.until {
                return;
            }
            (s.tick)();
        }
        arm_timer(&state);
    });
}

// --- Timed fault events -----------------------------------------------

/// What a deferred fault event does when it fires.
#[derive(Clone)]
enum FaultAction {
    /// The t=0 plan announcement (`inject` marker in traces).
    Inject { marker: String, label: String },
    /// A node crash at its planned instant.
    Crash { node: String },
}

/// A timed fault event: recorded at build, scheduled at start, with the
/// live event sequence stamped at scheduling so checkpoints can save it.
struct FaultEventRec {
    time: SimTime,
    seq: Cell<u64>,
    action: FaultAction,
}

fn schedule_fault_event(sim: &Sim, bus: &Bus<Msg>, ev: &FaultEventRec) {
    ev.seq.set(sim.next_seq());
    let bus = bus.clone();
    let action = ev.action.clone();
    sim.schedule_at(ev.time, move || match action {
        FaultAction::Inject { marker, label } => bus.emit_fault(FaultKind::Inject, &marker, &label),
        FaultAction::Crash { node } => bus.crash_node(&node),
    });
}

// --- Checkpointing ----------------------------------------------------

/// The trace-metrics sampler's delta baselines (previous busy counters),
/// session-held so a checkpoint carries the sampler's phase.
struct TracePrev {
    node_busy: Vec<SimDuration>,
    cpu_busy: SimDuration,
    gpu_busy: SimDuration,
    gpu_energy: f64,
}

impl TracePrev {
    fn new() -> TracePrev {
        TracePrev {
            node_busy: Vec::new(),
            cpu_busy: SimDuration::ZERO,
            gpu_busy: SimDuration::ZERO,
            gpu_energy: 0.0,
        }
    }
}

/// Checkpoint encoding version this build writes (and the only one it
/// resumes). [`Checkpoint::from_bytes`] rejects other versions with an
/// error; the on-disk store quarantines them.
pub const CHECKPOINT_VERSION: u32 = 2;

/// A serialized mid-drive snapshot of the complete simulation state:
/// event-queue identities, every RNG stream position, bus queues and
/// in-flight executions, per-node internal state, supervision
/// bookkeeping, recorder/tracer contents and sampler phases.
///
/// Captured by [`checkpoint_drive`] / [`resume_drive_checkpointed`] and
/// consumed by [`resume_drive`]. The encoding is byte-deterministic:
/// identical runs checkpointed at the same barrier produce identical
/// bytes. `Checkpoint` is plain owned data (`Send + Sync`), so sweep
/// workers can share one prefix checkpoint across threads.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    barrier: SimTime,
    bytes: Vec<u8>,
}

impl Checkpoint {
    /// The virtual time the checkpoint was captured at, seconds.
    pub fn barrier_s(&self) -> f64 {
        self.barrier.as_secs_f64()
    }

    /// The virtual time the checkpoint was captured at, nanoseconds.
    pub fn barrier_ns(&self) -> u64 {
        self.barrier.as_nanos()
    }

    /// Size of the serialized state, bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The serialized state, ready to persist. The encoding is
    /// self-describing: it starts with the [`CheckpointHeader`] fields,
    /// so [`Checkpoint::from_bytes`] can rebuild the checkpoint from
    /// these bytes alone.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The checkpoint's self-describing header: version, barrier,
    /// configuration fingerprints, tracing mode.
    pub fn header(&self) -> CheckpointHeader {
        CheckpointHeader::parse(&self.bytes)
            .expect("a captured checkpoint always carries a valid header")
    }

    /// Rebuilds a checkpoint from bytes previously produced by
    /// [`Checkpoint::as_bytes`].
    ///
    /// Only the header is validated here (shape, magic tag, version) —
    /// enough to reject foreign or version-skewed payloads with an
    /// error instead of a panic. Integrity of the state sections beyond
    /// the header is the storage layer's job (the on-disk store
    /// checksums whole entries); feeding bytes that pass this check but
    /// are corrupted deeper in will panic at resume time.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, String> {
        let header = CheckpointHeader::parse(&bytes)?;
        if header.version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {} (this build writes {})",
                header.version, CHECKPOINT_VERSION
            ));
        }
        Ok(Checkpoint { barrier: SimTime::from_nanos(header.barrier_ns), bytes })
    }
}

/// The self-describing prefix every serialized [`Checkpoint`] starts
/// with: enough metadata to key, index and validate a checkpoint
/// without deserializing (or trusting) the state sections behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointHeader {
    /// Checkpoint encoding version the payload was written under.
    pub version: u32,
    /// Virtual time of the capture barrier, nanoseconds.
    pub barrier_ns: u64,
    /// Fingerprint of the full configuration ([`drive_fingerprint`]).
    pub fingerprint: u64,
    /// Blackout-stripped fingerprint ([`drive_fingerprint_stripped`]) —
    /// the prefix-sharing identity.
    pub fingerprint_stripped: u64,
    /// Start of the earliest blackout window in the captured
    /// configuration, seconds; `None` when it has no blackouts.
    pub earliest_blackout_s: Option<f64>,
    /// Whether the captured run was tracing. Resume requires the same
    /// tracing mode, so stores index on this alongside the fingerprint.
    pub traced: bool,
}

/// The tag every checkpoint payload opens with.
const CHECKPOINT_TAG: &[u8] = b"av-checkpoint";

impl CheckpointHeader {
    /// Virtual time of the capture barrier, seconds.
    pub fn barrier_s(&self) -> f64 {
        self.barrier_ns as f64 / 1e9
    }

    /// Parses the header off the front of serialized checkpoint bytes.
    ///
    /// Unlike the snapshot reader this never panics: it is meant for
    /// *untrusted* bytes (a store entry of unknown provenance), so every
    /// malformation — truncation, wrong magic tag, mangled option byte —
    /// comes back as an error string. Version skew is reported in the
    /// parsed header, not rejected here, so callers can distinguish "not
    /// a checkpoint" from "a checkpoint we no longer read".
    pub fn parse(bytes: &[u8]) -> Result<CheckpointHeader, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err(format!(
                    "checkpoint header truncated: need {n} bytes at offset {pos}, have {}",
                    bytes.len() - *pos
                ));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if tag_len != CHECKPOINT_TAG.len() || take(&mut pos, tag_len)? != CHECKPOINT_TAG {
            return Err("not a checkpoint: magic tag mismatch".to_string());
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let get_u64 = |pos: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
        };
        let barrier_ns = get_u64(&mut pos)?;
        let fingerprint = get_u64(&mut pos)?;
        let fingerprint_stripped = get_u64(&mut pos)?;
        let earliest_blackout_s = match take(&mut pos, 1)?[0] {
            0 => None,
            1 => Some(f64::from_bits(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()))),
            b => return Err(format!("checkpoint header corrupt: option byte {b}")),
        };
        let traced = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            b => return Err(format!("checkpoint header corrupt: bool byte {b}")),
        };
        Ok(CheckpointHeader {
            version,
            barrier_ns,
            fingerprint,
            fingerprint_stripped,
            earliest_blackout_s,
            traced,
        })
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of the run configuration, over the canonical debug
/// rendering (stable: every field is plain data). With
/// `strip_blackouts`, outage windows are excluded — the prefix-sharing
/// identity, under which runs differing only in post-barrier blackouts
/// compare equal.
fn config_fingerprint(config: &StackConfig, strip_blackouts: bool) -> u64 {
    if strip_blackouts {
        let mut stripped = config.clone();
        stripped.blackouts.clear();
        fnv64(format!("{stripped:?}").as_bytes())
    } else {
        fnv64(format!("{config:?}").as_bytes())
    }
}

/// Public fingerprint of a drive configuration — the identity the
/// on-disk checkpoint store keys entries by. Equal configurations (by
/// the canonical debug rendering; every field is plain data) always
/// fingerprint equal, and a checkpoint captured under `config` carries
/// exactly this value in its [`CheckpointHeader::fingerprint`].
pub fn drive_fingerprint(config: &StackConfig) -> u64 {
    config_fingerprint(config, false)
}

/// [`drive_fingerprint`] with blackout windows excluded — the
/// prefix-sharing identity under which runs differing only in
/// post-barrier outages may resume from one another's checkpoints.
pub fn drive_fingerprint_stripped(config: &StackConfig) -> u64 {
    config_fingerprint(config, true)
}

fn earliest_blackout_start(config: &StackConfig) -> Option<f64> {
    config.blackouts.iter().map(|b| b.from_s).min_by(f64::total_cmp)
}

/// A fully constructed drive: simulator, bus, platform, observers, and
/// the registries (timers, noise RNGs, timed fault events, sampler
/// cells) that make the session's complete dynamic state reachable for
/// checkpointing. Built by [`build_session`]; nothing is on the event
/// queue until [`DriveSession::start_fresh`] or
/// [`DriveSession::resume_from`] runs.
struct DriveSession {
    sim: Sim,
    bus: Bus<Msg>,
    platform: Platform,
    recorder: SharedRecorder,
    tracer: Option<SharedTracer>,
    supervisor: Option<Rc<Supervisor>>,
    timers: Vec<Rc<RefCell<TimerState>>>,
    noise_rngs: Vec<(&'static str, Rc<RefCell<StreamRng>>)>,
    fault_events: Vec<FaultEventRec>,
    loc_errors: Rc<RefCell<Vec<f64>>>,
    loc_tracking_started: Option<Rc<Cell<bool>>>,
    trace_prev: Option<Rc<RefCell<TracePrev>>>,
    until: SimTime,
}

impl DriveSession {
    /// Starts a fresh run: schedules the timed fault events, then arms
    /// every timer — in registration order, so equal-time events (the
    /// t=0 inject markers, first sensor ticks) get the same sequence
    /// numbers as they always have.
    fn start_fresh(&self) {
        for ev in &self.fault_events {
            schedule_fault_event(&self.sim, &self.bus, ev);
        }
        for timer in &self.timers {
            arm_timer(timer);
        }
    }

    /// Serializes the session's complete dynamic state at `barrier`
    /// (which must be the current virtual time, with every event up to
    /// the barrier already executed and all pending events strictly
    /// beyond it).
    fn capture(&self, config: &StackConfig, barrier: SimTime) -> Checkpoint {
        debug_assert_eq!(self.sim.now(), barrier);
        let mut w = SnapWriter::new();
        w.put_tag("av-checkpoint");
        w.put_u32(CHECKPOINT_VERSION);
        w.put_u64(barrier.as_nanos());
        w.put_u64(config_fingerprint(config, false));
        w.put_u64(config_fingerprint(config, true));
        w.put_opt_f64(earliest_blackout_start(config));
        w.put_bool(self.tracer.is_some());

        w.put_tag("sim");
        w.put_u64(self.sim.now().as_nanos());
        w.put_u64(self.sim.events_executed());

        w.put_tag("noise");
        w.put_usize(self.noise_rngs.len());
        for (name, rng) in &self.noise_rngs {
            w.put_str(name);
            rng.borrow().save(&mut w);
        }

        w.put_tag("timers");
        w.put_usize(self.timers.len());
        for timer in &self.timers {
            let s = timer.borrow();
            s.rng.save(&mut w);
            match s.pending {
                Some((at, seq)) => {
                    w.put_bool(true);
                    w.put_u64(at.as_nanos());
                    w.put_u64(seq);
                }
                None => w.put_bool(false),
            }
        }

        w.put_tag("fault-events");
        w.put_usize(self.fault_events.len());
        for ev in &self.fault_events {
            w.put_u64(ev.time.as_nanos());
            w.put_u64(ev.seq.get());
        }

        w.put_tag("samplers");
        match &self.loc_tracking_started {
            Some(cell) => {
                w.put_bool(true);
                w.put_bool(cell.get());
            }
            None => w.put_bool(false),
        }
        match &self.trace_prev {
            Some(prev) => {
                w.put_bool(true);
                let prev = prev.borrow();
                w.put_usize(prev.node_busy.len());
                for d in &prev.node_busy {
                    w.put_u64(d.as_nanos());
                }
                w.put_u64(prev.cpu_busy.as_nanos());
                w.put_u64(prev.gpu_busy.as_nanos());
                w.put_f64(prev.gpu_energy);
            }
            None => w.put_bool(false),
        }

        w.put_tag("loc-errors");
        {
            let errors = self.loc_errors.borrow();
            w.put_usize(errors.len());
            for &e in errors.iter() {
                w.put_f64(e);
            }
        }

        self.platform.cpu().save_state(&mut w);
        self.platform.gpu().save_state(&mut w);
        self.bus.save_state(&mut w, &mut crate::snapshot::encode_msg);
        match &self.supervisor {
            Some(sup) => {
                w.put_bool(true);
                sup.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        self.recorder.save_state(&mut w);
        if let Some(tracer) = &self.tracer {
            tracer.save_state(&mut w);
        }

        Checkpoint { barrier, bytes: w.into_bytes() }
    }

    /// Restores `checkpoint` onto this freshly built session: overlays
    /// all dynamic state, then re-inserts every pending event — timer
    /// ticks, in-flight bus continuations, not-yet-fired fault events —
    /// in their original global `(time, sequence)` order, so equal-time
    /// FIFO ties replay exactly as a straight-through run would.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint does not match this session's
    /// configuration (see [`resume_drive`]) or the bytes are corrupt.
    fn resume_from(&self, checkpoint: &Checkpoint, config: &StackConfig) {
        let mut r = SnapReader::new(&checkpoint.bytes);
        r.expect_tag("av-checkpoint");
        let version = r.get_u32();
        assert_eq!(version, CHECKPOINT_VERSION, "unsupported checkpoint version {version}");
        let barrier = SimTime::from_nanos(r.get_u64());
        assert!(
            barrier <= self.until,
            "run duration {} s lies before the checkpoint barrier {} s",
            self.until.as_secs_f64(),
            barrier.as_secs_f64()
        );
        let full = r.get_u64();
        let stripped = r.get_u64();
        let original_first_blackout = r.get_opt_f64();
        if config_fingerprint(config, false) != full {
            assert_eq!(
                config_fingerprint(config, true),
                stripped,
                "checkpoint was taken under a different configuration"
            );
            let b = barrier.as_secs_f64();
            let clean = |first: Option<f64>| first.is_none_or(|s| s > b);
            assert!(
                clean(original_first_blackout) && clean(earliest_blackout_start(config)),
                "blackout-divergent resume requires every outage window \
                 (of both configurations) to start strictly after the barrier"
            );
        }
        let has_tracer = r.get_bool();
        assert_eq!(has_tracer, self.tracer.is_some(), "checkpoint tracing mode mismatch");

        r.expect_tag("sim");
        let now = SimTime::from_nanos(r.get_u64());
        let executed = r.get_u64();
        self.sim.restore_counters(now, executed);

        r.expect_tag("noise");
        assert_eq!(r.get_usize(), self.noise_rngs.len(), "checkpoint noise-stream count mismatch");
        for (name, rng) in &self.noise_rngs {
            let saved = r.get_str();
            assert_eq!(saved, *name, "checkpoint noise-stream order mismatch");
            rng.borrow_mut().restore(&mut r);
        }

        enum Restored {
            Timer(usize),
            Fault(usize),
            Bus(RestoredContinuation),
        }
        // `(time, key, seq, what)`: the key is each event's urgency key as
        // it will be re-scheduled (the timer's config-derived key; fault
        // events and bus continuations are key 0), so the re-insertion
        // order below matches the heap order `(time, key, seq)` the
        // original run dispatched in.
        let mut events: Vec<(SimTime, u64, u64, Restored)> = Vec::new();

        r.expect_tag("timers");
        assert_eq!(r.get_usize(), self.timers.len(), "checkpoint timer count mismatch");
        for (i, timer) in self.timers.iter().enumerate() {
            timer.borrow_mut().rng.restore(&mut r);
            if r.get_bool() {
                let at = SimTime::from_nanos(r.get_u64());
                let seq = r.get_u64();
                let key = timer.borrow().key;
                events.push((at, key, seq, Restored::Timer(i)));
            }
        }

        r.expect_tag("fault-events");
        assert_eq!(r.get_usize(), self.fault_events.len(), "checkpoint fault-event count mismatch");
        for (i, ev) in self.fault_events.iter().enumerate() {
            let at = SimTime::from_nanos(r.get_u64());
            let seq = r.get_u64();
            debug_assert_eq!(at, ev.time, "fault-event schedule mismatch");
            // Events at or before the barrier already fired inside the
            // checkpointed prefix; their effects are in the saved state.
            if at > barrier {
                events.push((at, 0, seq, Restored::Fault(i)));
            }
        }

        r.expect_tag("samplers");
        let has_loc = r.get_bool();
        assert_eq!(
            has_loc,
            self.loc_tracking_started.is_some(),
            "checkpoint localization-sampler mismatch"
        );
        if let Some(cell) = &self.loc_tracking_started {
            cell.set(r.get_bool());
        }
        let has_trace_prev = r.get_bool();
        assert_eq!(
            has_trace_prev,
            self.trace_prev.is_some(),
            "checkpoint metrics-sampler mismatch"
        );
        if let Some(prev) = &self.trace_prev {
            let mut prev = prev.borrow_mut();
            prev.node_busy =
                (0..r.get_usize()).map(|_| SimDuration::from_nanos(r.get_u64())).collect();
            prev.cpu_busy = SimDuration::from_nanos(r.get_u64());
            prev.gpu_busy = SimDuration::from_nanos(r.get_u64());
            prev.gpu_energy = r.get_f64();
        }

        r.expect_tag("loc-errors");
        *self.loc_errors.borrow_mut() = (0..r.get_usize()).map(|_| r.get_f64()).collect();

        self.platform.cpu().load_state(&mut r);
        self.platform.gpu().load_state(&mut r);
        for c in self.bus.load_state(&mut r, &mut crate::snapshot::decode_msg) {
            events.push((c.time, 0, c.seq, Restored::Bus(c)));
        }
        let has_supervisor = r.get_bool();
        assert_eq!(has_supervisor, self.supervisor.is_some(), "checkpoint supervision mismatch");
        if let Some(sup) = &self.supervisor {
            sup.load_state(&mut r);
        }
        self.recorder.load_state(&mut r);
        if let Some(tracer) = &self.tracer {
            tracer.load_state(&mut r);
        }
        assert!(r.is_exhausted(), "checkpoint has trailing bytes");

        // Re-insert every pending event in the original global dispatch
        // order `(time, key, seq)`. Sequence numbers only increase, so
        // events re-stamped in this order keep their relative order among
        // themselves *and* precede everything scheduled after the barrier
        // — exactly the heap relation the original run had. (Under FIFO
        // every key is 0 and this is the historical `(time, seq)` sort.)
        events.sort_by_key(|&(time, key, seq, _)| (time, key, seq));
        for (time, _, _, event) in events {
            match event {
                Restored::Timer(i) => schedule_tick(&self.timers[i], time),
                Restored::Fault(i) => {
                    schedule_fault_event(&self.sim, &self.bus, &self.fault_events[i]);
                }
                Restored::Bus(c) => self.bus.schedule_restored(c),
            }
        }
    }

    /// Assembles the run report from the session's final state.
    fn report(&self, config: &StackConfig) -> RunReport {
        let elapsed = self.sim.now().saturating_since(SimTime::ZERO);
        let cpu = self.platform.cpu().stats();
        let gpu = self.platform.gpu().stats();
        let power = config.calib.power.report(&cpu, config.calib.cpu.cores, &gpu, elapsed);
        let errors = self.loc_errors.borrow();
        let localization_error_m = if errors.is_empty() {
            f64::NAN
        } else {
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        let localization_error_final_m = if errors.len() >= 3 {
            errors[errors.len() - 3..].iter().sum::<f64>() / 3.0
        } else {
            localization_error_m
        };

        RunReport {
            detector: config.detector,
            elapsed,
            recorder: self.recorder.snapshot(),
            drops: self.bus.drop_stats(),
            cpu,
            cores: config.calib.cpu.cores,
            gpu,
            power,
            localization_error_m,
            localization_error_final_m,
            trace: self.tracer.as_ref().map(|t| t.snapshot()),
            fault: self.supervisor.as_ref().map(|sup| {
                sup.report(
                    self.sim.now(),
                    self.bus.fault_lost_count(),
                    self.bus.fault_duplicated_count(),
                )
            }),
        }
    }
}

/// Extension trait avoiding an `as u64` sprinkle for fractional-second
/// durations.
trait SimTimeExt {
    fn from_secs_f64_round(secs: f64) -> SimTime;
}

impl SimTimeExt for SimTime {
    fn from_secs_f64_round(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(detector: DetectorKind) -> RunReport {
        run_drive(&StackConfig::smoke_test(detector), &RunConfig::seconds(6.0))
    }

    #[test]
    fn streamed_drive_is_byte_identical_and_slices_partition_by_emission_time() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(4.0).with_trace();
        let straight = run_drive(&config, &run);

        let mut pauses: Vec<(f64, bool, usize)> = Vec::new();
        let mut streamed_events: Vec<TraceEvent> = Vec::new();
        let streamed = run_drive_streamed(&config, &run, 1.0, &mut |p: DriveProgress<'_>| {
            pauses.push((p.time_s, p.done, p.new_events.len()));
            streamed_events.extend_from_slice(p.new_events);
        });

        // The report — and therefore the golden hash — is untouched by
        // pausing.
        assert_eq!(
            crate::determinism::run_hash(&streamed),
            crate::determinism::run_hash(&straight)
        );

        // Pauses at 1,2,3 s plus the final drain at 4 s; only the last
        // one is `done`.
        assert_eq!(
            pauses.iter().map(|&(t, d, _)| (t, d)).collect::<Vec<_>>(),
            vec![(1.0, false), (2.0, false), (3.0, false), (4.0, true)]
        );

        // The concatenated deltas are exactly the final trace, and each
        // intermediate pause delivered precisely the events with
        // emission time at or before its barrier.
        let all = straight.trace.as_ref().expect("traced").events.clone();
        assert_eq!(streamed_events, all);
        let mut offset = 0;
        for &(t, done, n) in &pauses {
            offset += n;
            if !done {
                let barrier = SimTime::from_secs_f64_round(t);
                let by_time = all.iter().filter(|e| e.emission_time() <= barrier).count();
                assert_eq!(offset, by_time, "slice at {t}s is not the emission-time prefix");
            }
        }
        assert_eq!(offset, all.len());
    }

    #[test]
    fn smoke_run_produces_all_node_stats() {
        let report = quick(DetectorKind::YoloV3);
        for node in [
            node_names::VOXEL_GRID_FILTER,
            node_names::NDT_MATCHING,
            node_names::RAY_GROUND_FILTER,
            node_names::EUCLIDEAN_CLUSTER,
            node_names::VISION_DETECTION,
            node_names::RANGE_VISION_FUSION,
            node_names::IMM_UKF_PDA_TRACKER,
            node_names::COSTMAP_GENERATOR,
        ] {
            let s = report.node_summary(node);
            assert!(s.count > 0, "no samples for {node}");
            assert!(s.mean > 0.0, "zero latency for {node}");
        }
    }

    #[test]
    fn smoke_run_traces_all_paths() {
        let report = quick(DetectorKind::YoloV3);
        for path in ["localization", "costmap_points", "costmap_vision_obj", "costmap_cluster_obj"]
        {
            let s = report.path_summary(path);
            assert!(s.count > 0, "no samples for path {path}");
            // Paths are strictly longer than their terminal node's own
            // latency floor.
            assert!(s.mean > 1.0, "path {path} too fast: {}", s.mean);
        }
        let (name, e2e) = report.end_to_end().unwrap();
        assert!(!name.is_empty());
        assert!(e2e.mean >= report.path_summary("localization").mean);
    }

    #[test]
    fn localization_tracks_ground_truth() {
        let report = quick(DetectorKind::YoloV3);
        assert!(
            report.localization_error_m < 1.0,
            "localization diverged: {} m",
            report.localization_error_m
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(DetectorKind::Ssd300);
        let b = quick(DetectorKind::Ssd300);
        let na = a.node_summary(node_names::NDT_MATCHING);
        let nb = b.node_summary(node_names::NDT_MATCHING);
        assert_eq!(na.count, nb.count);
        assert_eq!(na.mean, nb.mean);
        assert_eq!(a.cpu.tasks_completed, b.cpu.tasks_completed);
        assert_eq!(a.gpu.total_energy_j, b.gpu.total_energy_j);
    }

    #[test]
    fn isolated_vision_runs_alone() {
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.selection = NodeSelection::Isolated(node_names::VISION_DETECTION.to_string());
        let report = run_drive(&config, &RunConfig::seconds(6.0));
        assert!(report.node_summary(node_names::VISION_DETECTION).count > 0);
        assert_eq!(report.node_summary(node_names::NDT_MATCHING).count, 0);
        assert_eq!(report.node_summary(node_names::EUCLIDEAN_CLUSTER).count, 0);
    }

    #[test]
    fn platform_accounting_populated() {
        let report = quick(DetectorKind::Ssd512);
        assert!(report.cpu.tasks_completed > 50);
        assert!(report.gpu.jobs_completed > 10);
        assert!(report.power.cpu_w > report.cpu.utilization(report.cores, report.elapsed));
        assert!(report.power.gpu_w > 10.0);
        let util = report.cpu.utilization(report.cores, report.elapsed);
        assert!(util > 0.0 && util < 1.0, "CPU util {util}");
    }

    #[test]
    fn deeper_queues_absorb_drops() {
        let shallow = quick(DetectorKind::Ssd512);
        let mut config = StackConfig::smoke_test(DetectorKind::Ssd512);
        config.queue_capacity = 16;
        let deep = run_drive(&config, &RunConfig::seconds(6.0));
        let dropped = |r: &RunReport| r.drops.iter().map(|d| d.dropped).sum::<u64>();
        assert!(
            dropped(&deep) <= dropped(&shallow),
            "capacity 16 must not drop more than capacity 1: {} vs {}",
            dropped(&deep),
            dropped(&shallow)
        );
    }

    #[test]
    fn gnss_blackout_silences_the_fix_stream() {
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.blackouts = vec![Blackout { source: Source::Gnss, from_s: 0.0, to_s: 100.0 }];
        let report = run_drive(&config, &RunConfig::seconds(6.0));
        let gnss_delivered: u64 =
            report.drops.iter().filter(|d| d.topic == topics::GNSS_POSE).map(|d| d.delivered).sum();
        assert_eq!(gnss_delivered, 0, "blacked-out GNSS must deliver nothing");
        // The LiDAR pipeline is untouched.
        assert!(report.node_summary(node_names::VOXEL_GRID_FILTER).count > 0);
    }

    #[test]
    fn crash_fault_is_supervised_and_recovers() {
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("crash:ndt_matching@3").unwrap();
        let report = run_drive(&config, &RunConfig::seconds(10.0));
        let fault = report.fault.as_ref().expect("faulted run reports fault stats");
        assert_eq!(fault.crashes, 1);
        assert!(fault.restarts >= 1, "supervisor must restart the node: {fault:?}");
        assert!(fault.heartbeat_misses >= 1);
        assert!(fault.recovery_latency_ms > 0.0, "recovery must be measured: {fault:?}");
        assert!(fault.time_degraded_s > 0.0);
        // The fallback localizer keeps the pose stream alive during the
        // outage, then hands back to NDT.
        assert!(fault.fallback_enters >= 1, "loc fallback must engage: {fault:?}");
        assert!(fault.fallback_exits >= 1, "loc fallback must disengage: {fault:?}");
        // NDT keeps matching after the restart: it sees more frames than
        // the outage alone would allow.
        assert!(report.node_summary(node_names::NDT_MATCHING).count > 0);
        assert!(
            report.localization_error_m < 5.0,
            "post-restart localization must re-converge: {} m",
            report.localization_error_m
        );
    }

    #[test]
    fn disabled_supervision_leaves_the_crash_unrecovered() {
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("crash:ndt_matching@3").unwrap();
        config.supervision.restarts_enabled = false;
        let report = run_drive(&config, &RunConfig::seconds(10.0));
        let fault = report.fault.as_ref().unwrap();
        assert_eq!(fault.crashes, 1);
        assert_eq!(fault.restarts, 0);
        // Degraded until the end of the run: crash at 3 s, run is 10 s.
        assert!(fault.time_degraded_s > 6.0, "censored outage: {fault:?}");
    }

    #[test]
    fn edge_drop_fault_loses_messages_deterministically() {
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("drop:/filtered_points>ndt_matching:0.5:1-5").unwrap();
        let a = run_drive(&config, &RunConfig::seconds(6.0));
        let b = run_drive(&config, &RunConfig::seconds(6.0));
        let fa = a.fault.as_ref().unwrap();
        let fb = b.fault.as_ref().unwrap();
        assert!(fa.messages_lost > 0, "50% drop over 4 s must lose messages");
        assert_eq!(fa.messages_lost, fb.messages_lost, "edge-drop RNG must be seeded");
        assert_eq!(
            a.node_summary(node_names::NDT_MATCHING).count,
            b.node_summary(node_names::NDT_MATCHING).count
        );
    }

    #[test]
    fn stall_and_slow_faults_inflate_the_target_node_only() {
        let clean = quick(DetectorKind::YoloV3);
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("slow:euclidean_cluster:x4:0-100").unwrap();
        let slowed = run_drive(&config, &RunConfig::seconds(6.0));
        let node = node_names::EUCLIDEAN_CLUSTER;
        assert!(
            slowed.node_summary(node).mean > 1.5 * clean.node_summary(node).mean,
            "x4 service inflation must show up in {node} latency"
        );
    }

    #[test]
    fn empty_fault_plan_reports_no_fault_stats() {
        let report = quick(DetectorKind::YoloV3);
        assert!(report.fault.is_none(), "clean runs must not carry fault stats");
    }

    #[test]
    fn tables_render() {
        let report = quick(DetectorKind::YoloV3);
        let nodes = report.node_table().to_string();
        assert!(nodes.contains("ndt_matching"));
        let paths = report.path_table().to_string();
        assert!(paths.contains("costmap_cluster_obj"));
        // Drop table may be empty for a short quiet run; just render it.
        let _ = report.drop_table().to_string();
    }

    #[test]
    fn checkpoint_resume_reproduces_the_straight_run() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(6.0);
        let straight = run_drive(&config, &run);
        let (through, checkpoint) = checkpoint_drive(&config, &run, 2.5);
        let resumed = resume_drive(&config, &run, &checkpoint);
        assert!(checkpoint.size_bytes() > 0);
        assert!((checkpoint.barrier_s() - 2.5).abs() < 1e-12);
        let h = crate::determinism::run_hash;
        assert_eq!(h(&straight), h(&through), "capturing must not perturb the run");
        assert_eq!(h(&straight), h(&resumed), "resume must replay bit-identically");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_under_tracing() {
        let config = StackConfig::smoke_test(DetectorKind::Ssd300);
        let run = RunConfig::seconds(6.0).with_trace();
        let straight = run_drive(&config, &run);
        let (_, checkpoint) = checkpoint_drive(&config, &run, 3.0);
        let resumed = resume_drive(&config, &run, &checkpoint);
        // run_hash folds the full structured trace, so this covers the
        // event timeline and metrics time series byte-for-byte.
        assert!(straight.trace.is_some());
        assert_eq!(crate::determinism::run_hash(&straight), crate::determinism::run_hash(&resumed));
    }

    #[test]
    fn checkpoint_mid_outage_resumes_identically() {
        // Crash at 3 s; barrier at 4 s lands inside the degraded window
        // with the fallback localizer active and the restart pending.
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("crash:ndt_matching@3").unwrap();
        let run = RunConfig::seconds(10.0);
        let straight = run_drive(&config, &run);
        let (_, checkpoint) = checkpoint_drive(&config, &run, 4.0);
        let resumed = resume_drive(&config, &run, &checkpoint);
        assert_eq!(crate::determinism::run_hash(&straight), crate::determinism::run_hash(&resumed));
        let fault = resumed.fault.as_ref().expect("fault stats survive the resume");
        assert_eq!(fault.crashes, 1);
        assert!(fault.restarts >= 1);
    }

    #[test]
    fn checkpoint_before_a_planned_crash_still_fires_it() {
        // Barrier at 2 s, crash planned for 3 s: the not-yet-fired fault
        // event must be carried across the checkpoint and fire on resume.
        let mut config = StackConfig::smoke_test(DetectorKind::YoloV3);
        config.faults = FaultPlan::parse("crash:ndt_matching@3").unwrap();
        let run = RunConfig::seconds(10.0);
        let straight = run_drive(&config, &run);
        let (_, checkpoint) = checkpoint_drive(&config, &run, 2.0);
        let resumed = resume_drive(&config, &run, &checkpoint);
        assert_eq!(crate::determinism::run_hash(&straight), crate::determinism::run_hash(&resumed));
        assert_eq!(resumed.fault.as_ref().unwrap().crashes, 1);
    }

    #[test]
    fn chained_checkpoints_reproduce_the_straight_run() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(6.0);
        let straight = run_drive(&config, &run);
        let (_, first) = checkpoint_drive(&config, &run, 2.0);
        let (resumed, second) = resume_drive_checkpointed(&config, &run, &first, 4.0);
        let rejoined = resume_drive(&config, &run, &second);
        let h = crate::determinism::run_hash;
        assert_eq!(h(&straight), h(&resumed));
        assert_eq!(h(&straight), h(&rejoined));
    }

    #[test]
    fn blackout_divergent_resume_matches_its_own_cold_run() {
        // The prefix-sharing contract: a checkpoint of the clean config
        // may seed any member whose outage windows all start after the
        // barrier, and the resumed run must equal that member's cold run.
        let clean = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(6.0);
        let (_, checkpoint) = checkpoint_drive(&clean, &run, 2.0);
        let mut member = clean.clone();
        member.blackouts = vec![Blackout { source: Source::Gnss, from_s: 3.0, to_s: 5.0 }];
        let cold = run_drive(&member, &run);
        let warm = resume_drive(&member, &run, &checkpoint);
        assert_eq!(crate::determinism::run_hash(&cold), crate::determinism::run_hash(&warm));
    }

    #[test]
    #[should_panic(expected = "different configuration")]
    fn resume_rejects_a_foreign_config() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(6.0);
        let (_, checkpoint) = checkpoint_drive(&config, &run, 2.0);
        let mut other = config.clone();
        other.seed = 999;
        let _ = resume_drive(&other, &run, &checkpoint);
    }

    #[test]
    #[should_panic(expected = "strictly after the barrier")]
    fn resume_rejects_a_blackout_straddling_the_barrier() {
        let clean = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(6.0);
        let (_, checkpoint) = checkpoint_drive(&clean, &run, 2.0);
        let mut member = clean.clone();
        member.blackouts = vec![Blackout { source: Source::Gnss, from_s: 1.0, to_s: 3.0 }];
        let _ = resume_drive(&member, &run, &checkpoint);
    }
}
