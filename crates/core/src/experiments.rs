//! One function per paper artifact: the code that regenerates every table
//! and figure of the evaluation (§IV).
//!
//! Drives are deterministic DES runs over virtual time, so the matrix
//! fans out over the [`crate::parallel`] run pool: pass `jobs > 1` to run
//! independent drives concurrently with bit-identical results.

use crate::parallel::parallel_map;
use crate::stack::{run_drive, NodeSelection, RunConfig, RunReport, StackConfig};
use crate::topics::nodes as node_names;
use av_profiling::Table;
use av_uarch::{run_kernel, KernelKind};
use av_vision::DetectorKind;

/// Runs the full stack once per detector (SSD512, SSD300, YOLO) — the
/// three scenarios of Fig 5/6 and Tables III/V/VI — on up to `jobs`
/// threads.
pub fn run_all_detectors(
    make_config: impl Fn(DetectorKind) -> StackConfig,
    run: &RunConfig,
    jobs: usize,
) -> Vec<RunReport> {
    let configs: Vec<StackConfig> =
        DetectorKind::ALL.iter().map(|&kind| make_config(kind)).collect();
    parallel_map(configs, jobs, |config| run_drive(&config, run))
}

/// Fig 5: single-node latency distributions for one detector scenario.
pub fn fig5_table(report: &RunReport) -> Table {
    report.node_table()
}

/// Table III: dropped messages per subscription, across detectors.
pub fn table3(reports: &[RunReport]) -> Table {
    let mut table = Table::with_headers(&[
        "Scenario",
        "Topic",
        "Subscribed by node",
        "Delivered",
        "Dropped",
        "Drop %",
    ]);
    for report in reports {
        for d in &report.drops {
            if d.dropped == 0 {
                continue;
            }
            table.add_row(vec![
                format!("With {}", report.detector),
                d.topic.clone(),
                d.node.clone(),
                d.delivered.to_string(),
                d.dropped.to_string(),
                format!("{:.1}%", d.drop_rate() * 100.0),
            ]);
        }
    }
    table
}

/// Fig 6: end-to-end computation-path latency for one detector scenario.
pub fn fig6_table(report: &RunReport) -> Table {
    report.path_table()
}

/// Table V: CPU and GPU utilization share per node, across detectors.
pub fn table5(reports: &[RunReport]) -> Table {
    let mut headers = vec!["Node".to_string()];
    for r in reports {
        headers.push(format!("CPU % ({})", r.detector));
    }
    for r in reports {
        headers.push(format!("GPU % ({})", r.detector));
    }
    let mut table = Table::new(headers);
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for node in node_names::PERCEPTION {
        let mut row = vec![node.to_string()];
        let mut first_share = 0.0;
        for (i, r) in reports.iter().enumerate() {
            let share = r.cpu.client_share(node, r.cores, r.elapsed);
            if i == 0 {
                first_share = share;
            }
            row.push(format!("{:.2}%", share * 100.0));
        }
        for r in reports {
            let share = r.gpu.client_share(node, r.elapsed);
            row.push(if share > 0.0 { format!("{:.2}%", share * 100.0) } else { "-".into() });
        }
        rows.push((first_share, row));
    }
    // Sort by the first scenario's CPU share, like the paper's table.
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, row) in rows {
        table.add_row(row);
    }
    // Totals row.
    let mut total = vec!["Total".to_string()];
    for r in reports {
        total.push(format!("{:.2}%", r.cpu.utilization(r.cores, r.elapsed) * 100.0));
    }
    for r in reports {
        total.push(format!("{:.2}%", r.gpu.utilization(r.elapsed) * 100.0));
    }
    table.add_row(total);
    table
}

/// Table VI's power cells for one run — shared between [`table6`] and
/// the sweep aggregator's per-point artifacts.
pub fn power_cells(report: &RunReport) -> [String; 3] {
    [
        format!("{:.2}", report.power.cpu_w),
        format!("{:.2}", report.power.gpu_w),
        format!("{:.2}", report.power.total_w()),
    ]
}

/// Table VI: mean CPU/GPU power per detector scenario.
pub fn table6(reports: &[RunReport]) -> Table {
    let mut table = Table::with_headers(&["Scenario", "CPU (W)", "GPU (W)", "Total (W)"]);
    for r in reports {
        let [cpu, gpu, total] = power_cells(r);
        table.add_row(vec![format!("With {}", r.detector), cpu, gpu, total]);
    }
    table
}

/// Table VII: microarchitecture metrics of the six profiled nodes, from
/// the simulated-counter kernels.
pub fn table7(scale: u32, seed: u64) -> Table {
    let mut table = Table::with_headers(&[
        "Metric",
        "SSD512",
        "YOLO",
        "euclidean_cluster",
        "ndt_matching",
        "imm_ukf_pda_tracker",
        "costmap_generator_obj",
    ]);
    let reports: Vec<_> = KernelKind::ALL.iter().map(|&k| run_kernel(k, scale, seed)).collect();
    let row = |name: &str, f: &dyn Fn(&av_uarch::KernelReport) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(reports.iter().map(f));
        cells
    };
    table.add_row(row("Instructions per Cycle", &|r| format!("{:.2}", r.ipc)));
    table.add_row(row("L1 miss rate (read)", &|r| {
        format!("{:.2}%", r.cache.read_miss_rate() * 100.0)
    }));
    table.add_row(row("L1 miss rate (write)", &|r| {
        format!("{:.2}%", r.cache.write_miss_rate() * 100.0)
    }));
    table.add_row(row("Branch misprediction", &|r| {
        format!("{:.2}%", r.branch.misprediction_rate() * 100.0)
    }));
    table
}

/// Fig 7: instruction mix of the six profiled nodes.
pub fn fig7(scale: u32, seed: u64) -> Table {
    let mut table = Table::with_headers(&["Node", "Loads", "Stores", "Branches", "Int", "FP"]);
    for kind in KernelKind::ALL {
        let r = run_kernel(kind, scale, seed);
        let (l, s, b, i, f) = r.mix.fractions();
        table.add_row(vec![
            r.name.to_string(),
            format!("{:.1}%", l * 100.0),
            format!("{:.1}%", s * 100.0),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", i * 100.0),
            format!("{:.1}%", f * 100.0),
        ]);
    }
    table
}

/// One detector's Fig 8 measurement: standalone vs full-system latency
/// and the CPU/GPU split.
#[derive(Debug, Clone)]
pub struct IsolationResult {
    /// Detector measured.
    pub detector: DetectorKind,
    /// Standalone mean latency, ms.
    pub isolated_mean: f64,
    /// Standalone latency std dev, ms.
    pub isolated_std: f64,
    /// Full-system mean latency, ms.
    pub full_mean: f64,
    /// Full-system latency std dev, ms.
    pub full_std: f64,
    /// Fraction of the (isolated) latency spent on the GPU.
    pub gpu_share: f64,
}

/// The detectors Fig 8 isolates (vision dominates their latency).
pub const ISOLATION_DETECTORS: [DetectorKind; 2] = [DetectorKind::Ssd512, DetectorKind::YoloV3];

/// Computes one Fig 8 row from an already-run full-stack drive and its
/// matching isolation drive — pure aggregation, no new runs.
pub fn isolation_result(full: &RunReport, isolated: &RunReport) -> IsolationResult {
    let full_s = full.node_summary(node_names::VISION_DETECTION);
    let iso_s = isolated.node_summary(node_names::VISION_DETECTION);
    let frames = isolated.gpu.jobs_completed.max(1);
    let gpu_ms_per_frame = isolated
        .gpu
        .busy_by_client
        .get(node_names::VISION_DETECTION)
        .map(|d| d.as_millis_f64() / frames as f64)
        .unwrap_or(0.0);
    IsolationResult {
        detector: full.detector,
        isolated_mean: iso_s.mean,
        isolated_std: iso_s.std_dev,
        full_mean: full_s.mean,
        full_std: full_s.std_dev,
        gpu_share: if iso_s.mean > 0.0 { gpu_ms_per_frame / iso_s.mean } else { 0.0 },
    }
}

/// The deduplicated experiment matrix: the three full-stack drives plus
/// the two Fig 8 isolation drives, as one batch for the run pool.
#[derive(Debug)]
pub struct ExperimentMatrix {
    /// Full-stack reports in [`DetectorKind::ALL`] order.
    pub reports: Vec<RunReport>,
    /// Fig 8 rows for [`ISOLATION_DETECTORS`], sharing the full-stack
    /// runs above instead of re-driving them.
    pub isolation: Vec<IsolationResult>,
}

/// Runs the whole matrix — 5 unique drives (3 full + 2 isolated) — on up
/// to `jobs` threads. Fig 8 needs a full-system and a standalone
/// measurement per detector; the full-system halves are exactly the
/// matrix's own detector sweep, so they are run once and shared.
pub fn run_matrix(
    make_config: impl Fn(DetectorKind) -> StackConfig,
    run: &RunConfig,
    jobs: usize,
) -> ExperimentMatrix {
    let mut configs: Vec<StackConfig> =
        DetectorKind::ALL.iter().map(|&kind| make_config(kind)).collect();
    for kind in ISOLATION_DETECTORS {
        let mut isolated = make_config(kind);
        isolated.selection = NodeSelection::Isolated(node_names::VISION_DETECTION.to_string());
        configs.push(isolated);
    }
    let mut results = parallel_map(configs, jobs, |config| run_drive(&config, run));
    let isolated_reports = results.split_off(DetectorKind::ALL.len());
    let reports = results;
    let isolation = ISOLATION_DETECTORS
        .iter()
        .zip(&isolated_reports)
        .map(|(&kind, isolated)| {
            let full = reports
                .iter()
                .find(|r| r.detector == kind)
                .expect("isolation detector missing from the full sweep");
            isolation_result(full, isolated)
        })
        .collect();
    ExperimentMatrix { reports, isolation }
}

/// Fig 8: isolated-vs-full-system comparison for SSD512 and YOLO, on up
/// to `jobs` threads (4 drives: a full-system and a standalone run per
/// detector).
///
/// Convenience for callers that only want Fig 8; when the detector sweep
/// is also needed, use [`run_matrix`] so the full-stack drives are shared.
pub fn fig8(
    make_config: impl Fn(DetectorKind) -> StackConfig,
    run: &RunConfig,
    jobs: usize,
) -> Vec<IsolationResult> {
    let mut configs: Vec<StackConfig> =
        ISOLATION_DETECTORS.iter().map(|&kind| make_config(kind)).collect();
    for kind in ISOLATION_DETECTORS {
        let mut isolated = make_config(kind);
        isolated.selection = NodeSelection::Isolated(node_names::VISION_DETECTION.to_string());
        configs.push(isolated);
    }
    let mut results = parallel_map(configs, jobs, |config| run_drive(&config, run));
    let isolated_reports = results.split_off(ISOLATION_DETECTORS.len());
    results
        .iter()
        .zip(&isolated_reports)
        .map(|(full, isolated)| isolation_result(full, isolated))
        .collect()
}

/// Renders Fig 8 results as a table.
pub fn fig8_table(results: &[IsolationResult]) -> Table {
    let mut table = Table::with_headers(&[
        "Detector",
        "Standalone mean (ms)",
        "Standalone σ",
        "Full-system mean (ms)",
        "Full-system σ",
        "GPU share",
    ]);
    for r in results {
        table.add_row(vec![
            r.detector.to_string(),
            format!("{:.2}", r.isolated_mean),
            format!("{:.2}", r.isolated_std),
            format!("{:.2}", r.full_mean),
            format!("{:.2}", r.full_std),
            format!("{:.0}%", r.gpu_share * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uarch_tables_render() {
        let t7 = table7(1, 42);
        let text = t7.to_string();
        assert!(text.contains("Instructions per Cycle"));
        assert!(text.contains("SSD512"));
        let f7 = fig7(1, 42);
        assert_eq!(f7.len(), 6);
        assert!(f7.to_csv().contains("costmap_generator_obj"));
    }

    #[test]
    fn fig8_shows_isolation_effect() {
        let run = RunConfig::seconds(6.0);
        let results = fig8(StackConfig::smoke_test, &run, 4);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.isolated_mean > 0.0);
            assert!(r.full_mean > 0.0);
            assert!((0.0..=1.0).contains(&r.gpu_share));
        }
        let yolo = &results[1];
        assert!(yolo.gpu_share > 0.7, "YOLO GPU share {}", yolo.gpu_share);
        let table = fig8_table(&results);
        assert!(table.to_string().contains("YOLOv3"));
    }

    #[test]
    fn detector_sweep_tables() {
        let run = RunConfig::seconds(5.0);
        let reports = run_all_detectors(StackConfig::smoke_test, &run, 3);
        assert_eq!(reports.len(), 3);
        let t5 = table5(&reports);
        let text = t5.to_string();
        assert!(text.contains("vision_detection"));
        assert!(text.contains("Total"));
        let t6 = table6(&reports);
        assert_eq!(t6.len(), 3);
        assert!(t6.to_string().contains("SSD512"));
        let _ = table3(&reports); // may be empty on a short run
        for r in &reports {
            assert!(!fig5_table(r).is_empty());
            assert!(!fig6_table(r).is_empty());
        }
    }
}
