//! One function per paper artifact: the code that regenerates every table
//! and figure of the evaluation (§IV).

use crate::stack::{run_drive, NodeSelection, RunConfig, RunReport, StackConfig};
use crate::topics::nodes as node_names;
use av_profiling::Table;
use av_uarch::{run_kernel, KernelKind};
use av_vision::DetectorKind;

/// Runs the full stack once per detector (SSD512, SSD300, YOLO) — the
/// three scenarios of Fig 5/6 and Tables III/V/VI.
pub fn run_all_detectors(
    make_config: impl Fn(DetectorKind) -> StackConfig,
    run: &RunConfig,
) -> Vec<RunReport> {
    DetectorKind::ALL.iter().map(|&kind| run_drive(&make_config(kind), run)).collect()
}

/// Fig 5: single-node latency distributions for one detector scenario.
pub fn fig5_table(report: &RunReport) -> Table {
    report.node_table()
}

/// Table III: dropped messages per subscription, across detectors.
pub fn table3(reports: &[RunReport]) -> Table {
    let mut table = Table::with_headers(&[
        "Scenario", "Topic", "Subscribed by node", "Delivered", "Dropped", "Drop %",
    ]);
    for report in reports {
        for d in &report.drops {
            if d.dropped == 0 {
                continue;
            }
            table.add_row(vec![
                format!("With {}", report.detector),
                d.topic.clone(),
                d.node.clone(),
                d.delivered.to_string(),
                d.dropped.to_string(),
                format!("{:.1}%", d.drop_rate() * 100.0),
            ]);
        }
    }
    table
}

/// Fig 6: end-to-end computation-path latency for one detector scenario.
pub fn fig6_table(report: &RunReport) -> Table {
    report.path_table()
}

/// Table V: CPU and GPU utilization share per node, across detectors.
pub fn table5(reports: &[RunReport]) -> Table {
    let mut headers = vec!["Node".to_string()];
    for r in reports {
        headers.push(format!("CPU % ({})", r.detector));
    }
    for r in reports {
        headers.push(format!("GPU % ({})", r.detector));
    }
    let mut table = Table::new(headers);
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for node in node_names::PERCEPTION {
        let mut row = vec![node.to_string()];
        let mut first_share = 0.0;
        for (i, r) in reports.iter().enumerate() {
            let share = r.cpu.client_share(node, r.cores, r.elapsed);
            if i == 0 {
                first_share = share;
            }
            row.push(format!("{:.2}%", share * 100.0));
        }
        for r in reports {
            let share = r.gpu.client_share(node, r.elapsed);
            row.push(if share > 0.0 { format!("{:.2}%", share * 100.0) } else { "-".into() });
        }
        rows.push((first_share, row));
    }
    // Sort by the first scenario's CPU share, like the paper's table.
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, row) in rows {
        table.add_row(row);
    }
    // Totals row.
    let mut total = vec!["Total".to_string()];
    for r in reports {
        total.push(format!("{:.2}%", r.cpu.utilization(r.cores, r.elapsed) * 100.0));
    }
    for r in reports {
        total.push(format!("{:.2}%", r.gpu.utilization(r.elapsed) * 100.0));
    }
    table.add_row(total);
    table
}

/// Table VI: mean CPU/GPU power per detector scenario.
pub fn table6(reports: &[RunReport]) -> Table {
    let mut table = Table::with_headers(&["Scenario", "CPU (W)", "GPU (W)", "Total (W)"]);
    for r in reports {
        table.add_row(vec![
            format!("With {}", r.detector),
            format!("{:.2}", r.power.cpu_w),
            format!("{:.2}", r.power.gpu_w),
            format!("{:.2}", r.power.total_w()),
        ]);
    }
    table
}

/// Table VII: microarchitecture metrics of the six profiled nodes, from
/// the simulated-counter kernels.
pub fn table7(scale: u32, seed: u64) -> Table {
    let mut table = Table::with_headers(&[
        "Metric",
        "SSD512",
        "YOLO",
        "euclidean_cluster",
        "ndt_matching",
        "imm_ukf_pda_tracker",
        "costmap_generator_obj",
    ]);
    let reports: Vec<_> = KernelKind::ALL.iter().map(|&k| run_kernel(k, scale, seed)).collect();
    let row = |name: &str, f: &dyn Fn(&av_uarch::KernelReport) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(reports.iter().map(f));
        cells
    };
    table.add_row(row("Instructions per Cycle", &|r| format!("{:.2}", r.ipc)));
    table.add_row(row("L1 miss rate (read)", &|r| {
        format!("{:.2}%", r.cache.read_miss_rate() * 100.0)
    }));
    table.add_row(row("L1 miss rate (write)", &|r| {
        format!("{:.2}%", r.cache.write_miss_rate() * 100.0)
    }));
    table.add_row(row("Branch misprediction", &|r| {
        format!("{:.2}%", r.branch.misprediction_rate() * 100.0)
    }));
    table
}

/// Fig 7: instruction mix of the six profiled nodes.
pub fn fig7(scale: u32, seed: u64) -> Table {
    let mut table =
        Table::with_headers(&["Node", "Loads", "Stores", "Branches", "Int", "FP"]);
    for kind in KernelKind::ALL {
        let r = run_kernel(kind, scale, seed);
        let (l, s, b, i, f) = r.mix.fractions();
        table.add_row(vec![
            r.name.to_string(),
            format!("{:.1}%", l * 100.0),
            format!("{:.1}%", s * 100.0),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", i * 100.0),
            format!("{:.1}%", f * 100.0),
        ]);
    }
    table
}

/// One detector's Fig 8 measurement: standalone vs full-system latency
/// and the CPU/GPU split.
#[derive(Debug, Clone)]
pub struct IsolationResult {
    /// Detector measured.
    pub detector: DetectorKind,
    /// Standalone mean latency, ms.
    pub isolated_mean: f64,
    /// Standalone latency std dev, ms.
    pub isolated_std: f64,
    /// Full-system mean latency, ms.
    pub full_mean: f64,
    /// Full-system latency std dev, ms.
    pub full_std: f64,
    /// Fraction of the (isolated) latency spent on the GPU.
    pub gpu_share: f64,
}

/// Fig 8: isolated-vs-full-system comparison for SSD512 and YOLO.
pub fn fig8(
    make_config: impl Fn(DetectorKind) -> StackConfig,
    run: &RunConfig,
) -> Vec<IsolationResult> {
    [DetectorKind::Ssd512, DetectorKind::YoloV3]
        .into_iter()
        .map(|kind| {
            let full = run_drive(&make_config(kind), run);
            let mut isolated_config = make_config(kind);
            isolated_config.selection =
                NodeSelection::Isolated(node_names::VISION_DETECTION.to_string());
            let isolated = run_drive(&isolated_config, run);

            let full_s = full.node_summary(node_names::VISION_DETECTION);
            let iso_s = isolated.node_summary(node_names::VISION_DETECTION);
            let frames = isolated.gpu.jobs_completed.max(1);
            let gpu_ms_per_frame = isolated
                .gpu
                .busy_by_client
                .get(node_names::VISION_DETECTION)
                .map(|d| d.as_millis_f64() / frames as f64)
                .unwrap_or(0.0);
            IsolationResult {
                detector: kind,
                isolated_mean: iso_s.mean,
                isolated_std: iso_s.std_dev,
                full_mean: full_s.mean,
                full_std: full_s.std_dev,
                gpu_share: if iso_s.mean > 0.0 { gpu_ms_per_frame / iso_s.mean } else { 0.0 },
            }
        })
        .collect()
}

/// Renders Fig 8 results as a table.
pub fn fig8_table(results: &[IsolationResult]) -> Table {
    let mut table = Table::with_headers(&[
        "Detector",
        "Standalone mean (ms)",
        "Standalone σ",
        "Full-system mean (ms)",
        "Full-system σ",
        "GPU share",
    ]);
    for r in results {
        table.add_row(vec![
            r.detector.to_string(),
            format!("{:.2}", r.isolated_mean),
            format!("{:.2}", r.isolated_std),
            format!("{:.2}", r.full_mean),
            format!("{:.2}", r.full_std),
            format!("{:.0}%", r.gpu_share * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uarch_tables_render() {
        let t7 = table7(1, 42);
        let text = t7.to_string();
        assert!(text.contains("Instructions per Cycle"));
        assert!(text.contains("SSD512"));
        let f7 = fig7(1, 42);
        assert_eq!(f7.len(), 6);
        assert!(f7.to_csv().contains("costmap_generator_obj"));
    }

    #[test]
    fn fig8_shows_isolation_effect() {
        let run = RunConfig { duration_s: Some(6.0) };
        let results = fig8(StackConfig::smoke_test, &run);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.isolated_mean > 0.0);
            assert!(r.full_mean > 0.0);
            assert!((0.0..=1.0).contains(&r.gpu_share));
        }
        let yolo = &results[1];
        assert!(yolo.gpu_share > 0.7, "YOLO GPU share {}", yolo.gpu_share);
        let table = fig8_table(&results);
        assert!(table.to_string().contains("YOLOv3"));
    }

    #[test]
    fn detector_sweep_tables() {
        let run = RunConfig { duration_s: Some(5.0) };
        let reports = run_all_detectors(StackConfig::smoke_test, &run);
        assert_eq!(reports.len(), 3);
        let t5 = table5(&reports);
        let text = t5.to_string();
        assert!(text.contains("vision_detection"));
        assert!(text.contains("Total"));
        let t6 = table6(&reports);
        assert_eq!(t6.len(), 3);
        assert!(t6.to_string().contains("SSD512"));
        let _ = table3(&reports); // may be empty on a short run
        for r in &reports {
            assert!(!fig5_table(r).is_empty());
            assert!(!fig6_table(r).is_empty());
        }
    }
}
