//! Quantitative checks of the paper's five findings.

use crate::experiments::IsolationResult;
use crate::stack::RunReport;
use crate::topics::nodes as node_names;
use av_profiling::Table;
use av_vision::DetectorKind;
use std::fmt;

/// The five findings, each with the measured quantities behind it.
#[derive(Debug, Clone)]
pub struct FindingsReport {
    /// Finding 1: tail latency of co-running nodes depends on the
    /// detector choice — `(node, tail with SSD512, tail with SSD300,
    /// relative change)`.
    pub tail_inflation: Vec<(String, f64, f64, f64)>,
    /// Finding 2: end-to-end p99 per detector, ms, plus the fraction of
    /// frames over the 100 ms deadline.
    pub e2e_tail: Vec<(DetectorKind, f64, f64)>,
    /// Finding 3: total CPU and GPU utilization per detector.
    pub utilization: Vec<(DetectorKind, f64, f64)>,
    /// Finding 4/5: isolation results (mean and σ inflation).
    pub isolation: Vec<IsolationResult>,
}

impl FindingsReport {
    /// Builds the report from the three full-stack runs (SSD512, SSD300,
    /// YOLO order) and the Fig 8 isolation results.
    ///
    /// # Panics
    ///
    /// Panics unless `reports` has the three detectors in
    /// [`DetectorKind::ALL`] order.
    pub fn from_runs(reports: &[RunReport], isolation: Vec<IsolationResult>) -> FindingsReport {
        assert_eq!(reports.len(), 3, "need SSD512, SSD300, YOLO runs");
        assert_eq!(reports[0].detector, DetectorKind::Ssd512);
        assert_eq!(reports[1].detector, DetectorKind::Ssd300);

        let tail_nodes = [
            node_names::COSTMAP_GENERATOR_OBJ,
            node_names::NDT_MATCHING,
            node_names::VOXEL_GRID_FILTER,
            node_names::EUCLIDEAN_CLUSTER,
            node_names::IMM_UKF_PDA_TRACKER,
        ];
        let tail_inflation = tail_nodes
            .iter()
            .map(|&node| {
                let with_512 = reports[0].node_summary(node).p99;
                let with_300 = reports[1].node_summary(node).p99;
                let change = if with_300 > 0.0 { with_512 / with_300 - 1.0 } else { 0.0 };
                (node.to_string(), with_512, with_300, change)
            })
            .collect();

        let e2e_tail = reports
            .iter()
            .map(|r| {
                let (name, _) =
                    r.end_to_end().unwrap_or(("".into(), av_profiling::Summary::empty()));
                let recorder = &r.recorder;
                let dist = recorder.path_latencies(&name);
                let p99 = dist.map(|d| d.percentile(99.0)).unwrap_or(0.0);
                let over_deadline = dist.map(|d| d.fraction_above(100.0)).unwrap_or(0.0);
                (r.detector, p99, over_deadline)
            })
            .collect();

        let utilization = reports
            .iter()
            .map(|r| {
                (r.detector, r.cpu.utilization(r.cores, r.elapsed), r.gpu.utilization(r.elapsed))
            })
            .collect();

        FindingsReport { tail_inflation, e2e_tail, utilization, isolation }
    }

    /// Finding 1 holds: some co-running node's p99 moves by more than
    /// `threshold` (paper: 34–97%) between SSD512 and SSD300 scenarios.
    pub fn finding1_contention(&self, threshold: f64) -> bool {
        self.tail_inflation.iter().any(|(_, _, _, change)| change.abs() > threshold)
    }

    /// Finding 2 holds: every detector's end-to-end tail exceeds the
    /// 100 ms deadline.
    pub fn finding2_deadline_broken(&self) -> bool {
        self.e2e_tail.iter().all(|&(_, p99, _)| p99 > 100.0)
    }

    /// Finding 3 holds: resources are not saturated (CPU and GPU below
    /// the given utilization in every scenario).
    pub fn finding3_not_saturated(&self, cpu_limit: f64, gpu_limit: f64) -> bool {
        self.utilization.iter().all(|&(_, cpu, gpu)| cpu < cpu_limit && gpu < gpu_limit)
    }

    /// Finding 4 holds: detectors run *faster* standalone than inside the
    /// full stack (paper: 6–12% mean inflation).
    pub fn finding4_isolation_underestimates(&self) -> bool {
        self.isolation.iter().all(|r| r.full_mean > r.isolated_mean)
    }

    /// Finding 5 holds: co-running multiplies latency σ by at least
    /// `factor` (paper: ~4–5×).
    pub fn finding5_variability(&self, factor: f64) -> bool {
        self.isolation.iter().all(|r| r.full_std > factor * r.isolated_std)
    }

    /// Renders the findings as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::with_headers(&["Finding", "Measured", "Holds"]);
        let worst_inflation = self
            .tail_inflation
            .iter()
            .max_by(|a, b| a.3.abs().total_cmp(&b.3.abs()))
            .cloned()
            .unwrap_or(("-".into(), 0.0, 0.0, 0.0));
        t.add_row(vec![
            "1: contention inflates tails".into(),
            format!(
                "{}: p99 {:.1} ms (SSD512) vs {:.1} ms (SSD300), {:+.0}%",
                worst_inflation.0,
                worst_inflation.1,
                worst_inflation.2,
                worst_inflation.3 * 100.0
            ),
            self.finding1_contention(0.2).to_string(),
        ]);
        let e2e = self
            .e2e_tail
            .iter()
            .map(|(d, p99, frac)| format!("{d}: p99 {:.0} ms ({:.0}% >100 ms)", p99, frac * 100.0))
            .collect::<Vec<_>>()
            .join("; ");
        t.add_row(vec![
            "2: 100 ms deadline broken".into(),
            e2e,
            self.finding2_deadline_broken().to_string(),
        ]);
        let util = self
            .utilization
            .iter()
            .map(|(d, c, g)| format!("{d}: CPU {:.0}%, GPU {:.0}%", c * 100.0, g * 100.0))
            .collect::<Vec<_>>()
            .join("; ");
        t.add_row(vec![
            "3: resources not saturated".into(),
            util,
            self.finding3_not_saturated(0.7, 0.8).to_string(),
        ]);
        let iso = self
            .isolation
            .iter()
            .map(|r| {
                format!(
                    "{}: {:.1}→{:.1} ms ({:+.0}%)",
                    r.detector,
                    r.isolated_mean,
                    r.full_mean,
                    (r.full_mean / r.isolated_mean - 1.0) * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        t.add_row(vec![
            "4: isolation underestimates mean".into(),
            iso,
            self.finding4_isolation_underestimates().to_string(),
        ]);
        let var = self
            .isolation
            .iter()
            .map(|r| format!("{}: σ {:.2}→{:.2} ms", r.detector, r.isolated_std, r.full_std))
            .collect::<Vec<_>>()
            .join("; ");
        t.add_row(vec![
            "5: co-running multiplies σ".into(),
            var,
            self.finding5_variability(1.5).to_string(),
        ]);
        t
    }
}

impl fmt::Display for FindingsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{RunConfig, StackConfig};

    #[test]
    fn findings_report_builds_and_renders() {
        let run = RunConfig::seconds(5.0);
        let matrix = crate::experiments::run_matrix(StackConfig::smoke_test, &run, 4);
        let (reports, isolation) = (matrix.reports, matrix.isolation);
        let findings = FindingsReport::from_runs(&reports, isolation);
        // On a 5-second smoke run the magnitudes are not paper-scale, but
        // the mechanisms must already show up.
        assert!(findings.finding4_isolation_underestimates());
        let text = findings.to_string();
        assert!(text.contains("deadline"));
        assert_eq!(findings.e2e_tail.len(), 3);
        assert_eq!(findings.utilization.len(), 3);
    }
}
