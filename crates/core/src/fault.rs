//! Deterministic node-fault injection plans.
//!
//! The paper stresses the stack by "stimulating the AV system on a
//! varied number of situations to capture such flaws" (§IV-A); sensor
//! [`Blackout`](crate::stack::Blackout) windows cover the *input* side of
//! that programme. A [`FaultPlan`] covers the *compute and transport*
//! side: crash a node, stall or slow its callbacks for a window, drop or
//! duplicate messages on one bus edge, or skew a sensor driver's timer.
//!
//! Plans are written in the same compact `+`-joined DSL as blackout
//! schedules, so they can ride through sweep specs, search knobs and
//! artifact labels unchanged:
//!
//! | fragment | meaning |
//! |---|---|
//! | `none` | the empty plan |
//! | `crash:NODE@T` | node stops firing at `T` s (supervisor may restart it) |
//! | `stall:NODE:FROM-TO` | callbacks starting inside the window block until it closes |
//! | `slow:NODE:xF:FROM-TO` | service time × `F` inside the window |
//! | `drop:TOPIC>NODE:P:FROM-TO` | each delivery on the edge lost with probability `P` |
//! | `dup:TOPIC>NODE:P:FROM-TO` | each delivery duplicated with probability `P` |
//! | `skew:SENSOR:xF:FROM-TO` | sensor timer period × `F` inside the window |
//!
//! All windows are half-open `[from, to)` seconds, matching
//! [`Blackout::covers`](crate::stack::Blackout::covers). Randomized
//! faults (drop/dup) draw from a dedicated per-fault RNG stream named
//! after [`FaultSpec::label`], so an empty plan leaves every existing
//! stream — and therefore every existing golden hash — bit-identical.

use av_ros::Source;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// The node stops firing at `at_s`: queued and in-flight work is
    /// discarded and further deliveries are lost until a restart.
    Crash {
        /// Node name.
        node: String,
        /// Crash time, seconds into the drive.
        at_s: f64,
    },
    /// Callbacks *starting* inside `[from_s, to_s)` block (occupying no
    /// device) until the window closes, then run normally.
    Stall {
        /// Node name.
        node: String,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        to_s: f64,
    },
    /// Service demands of callbacks starting inside the window are
    /// inflated by `factor`.
    Slow {
        /// Node name.
        node: String,
        /// Service-time multiplier (> 0; 1.0 is a no-op).
        factor: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        to_s: f64,
    },
    /// Each delivery of `topic` to `node` inside the window is lost with
    /// probability `rate`.
    Drop {
        /// Topic name.
        topic: String,
        /// Subscribing node.
        node: String,
        /// Loss probability in `[0, 1]`.
        rate: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        to_s: f64,
    },
    /// Each delivery of `topic` to `node` inside the window is duplicated
    /// with probability `rate`.
    Duplicate {
        /// Topic name.
        topic: String,
        /// Subscribing node.
        node: String,
        /// Duplication probability in `[0, 1]`.
        rate: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        to_s: f64,
    },
    /// The sensor driver's timer period is multiplied by `factor` for
    /// ticks scheduled inside the window (a drifting clock).
    TimerSkew {
        /// Affected sensor.
        source: Source,
        /// Period multiplier (> 0; 1.0 is a no-op).
        factor: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        to_s: f64,
    },
}

fn parse_seconds(s: &str, what: &str, part: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("fault {part:?}: bad {what} {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("fault {part:?}: {what} must be finite"));
    }
    Ok(v)
}

fn parse_window(s: &str, part: &str) -> Result<(f64, f64), String> {
    let (from, to) =
        s.split_once('-').ok_or_else(|| format!("fault {part:?}: expected from-to window"))?;
    let from_s = parse_seconds(from, "window start", part)?;
    let to_s = parse_seconds(to, "window end", part)?;
    if !(from_s >= 0.0 && to_s > from_s) {
        return Err(format!("fault {part:?}: window must satisfy 0 <= from < to"));
    }
    Ok((from_s, to_s))
}

fn parse_factor(s: &str, part: &str) -> Result<f64, String> {
    let digits = s
        .strip_prefix('x')
        .ok_or_else(|| format!("fault {part:?}: expected factor of the form x2.5"))?;
    let factor = parse_seconds(digits, "factor", part)?;
    if factor <= 0.0 {
        return Err(format!("fault {part:?}: factor must be > 0"));
    }
    Ok(factor)
}

fn parse_rate(s: &str, part: &str) -> Result<f64, String> {
    let rate = parse_seconds(s, "rate", part)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault {part:?}: rate must be in [0, 1]"));
    }
    Ok(rate)
}

fn parse_edge(rest: &str, part: &str) -> Result<(String, String, f64, (f64, f64)), String> {
    let (topic, rest) = rest
        .split_once('>')
        .ok_or_else(|| format!("fault {part:?}: expected TOPIC>NODE:RATE:FROM-TO"))?;
    let mut fields = rest.splitn(3, ':');
    let node = fields.next().unwrap_or("");
    let rate = fields.next().ok_or_else(|| format!("fault {part:?}: missing rate"))?;
    let window = fields.next().ok_or_else(|| format!("fault {part:?}: missing window"))?;
    if topic.is_empty() || node.is_empty() {
        return Err(format!("fault {part:?}: topic and node must not be empty"));
    }
    Ok((topic.to_string(), node.to_string(), parse_rate(rate, part)?, parse_window(window, part)?))
}

fn parse_source(s: &str, part: &str) -> Result<Source, String> {
    const ALL: [Source; 5] =
        [Source::Lidar, Source::Camera, Source::Gnss, Source::Imu, Source::Radar];
    ALL.into_iter()
        .find(|src| src.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("fault {part:?}: unknown sensor source {s:?}"))
}

impl FaultSpec {
    /// Parses one DSL fragment (one `+`-separated part of a plan).
    pub fn parse(part: &str) -> Result<FaultSpec, String> {
        let (kind, rest) =
            part.split_once(':').ok_or_else(|| format!("fault {part:?}: expected kind:details"))?;
        match kind {
            "crash" => {
                let (node, at) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("fault {part:?}: expected crash:NODE@T"))?;
                if node.is_empty() {
                    return Err(format!("fault {part:?}: node must not be empty"));
                }
                let at_s = parse_seconds(at, "crash time", part)?;
                if at_s < 0.0 {
                    return Err(format!("fault {part:?}: crash time must be >= 0"));
                }
                Ok(FaultSpec::Crash { node: node.to_string(), at_s })
            }
            "stall" => {
                let (node, window) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("fault {part:?}: expected stall:NODE:FROM-TO"))?;
                if node.is_empty() {
                    return Err(format!("fault {part:?}: node must not be empty"));
                }
                let (from_s, to_s) = parse_window(window, part)?;
                Ok(FaultSpec::Stall { node: node.to_string(), from_s, to_s })
            }
            "slow" => {
                let mut fields = rest.splitn(3, ':');
                let node = fields.next().unwrap_or("");
                let factor = fields
                    .next()
                    .ok_or_else(|| format!("fault {part:?}: expected slow:NODE:xF:FROM-TO"))?;
                let window =
                    fields.next().ok_or_else(|| format!("fault {part:?}: missing window"))?;
                if node.is_empty() {
                    return Err(format!("fault {part:?}: node must not be empty"));
                }
                let factor = parse_factor(factor, part)?;
                let (from_s, to_s) = parse_window(window, part)?;
                Ok(FaultSpec::Slow { node: node.to_string(), factor, from_s, to_s })
            }
            "drop" => {
                let (topic, node, rate, (from_s, to_s)) = parse_edge(rest, part)?;
                Ok(FaultSpec::Drop { topic, node, rate, from_s, to_s })
            }
            "dup" => {
                let (topic, node, rate, (from_s, to_s)) = parse_edge(rest, part)?;
                Ok(FaultSpec::Duplicate { topic, node, rate, from_s, to_s })
            }
            "skew" => {
                let mut fields = rest.splitn(3, ':');
                let source = fields.next().unwrap_or("");
                let factor = fields
                    .next()
                    .ok_or_else(|| format!("fault {part:?}: expected skew:SENSOR:xF:FROM-TO"))?;
                let window =
                    fields.next().ok_or_else(|| format!("fault {part:?}: missing window"))?;
                let source = parse_source(source, part)?;
                let factor = parse_factor(factor, part)?;
                let (from_s, to_s) = parse_window(window, part)?;
                Ok(FaultSpec::TimerSkew { source, factor, from_s, to_s })
            }
            other => Err(format!(
                "fault {part:?}: unknown kind {other:?} (expected crash, stall, slow, drop, dup or skew)"
            )),
        }
    }

    /// Canonical DSL fragment for this fault — usable as a display label
    /// and as the suffix of its dedicated RNG stream name
    /// (`fault-{label}`). Floats print in shortest round-trip form, so
    /// `parse(label())` reconstructs the fault exactly.
    pub fn label(&self) -> String {
        match self {
            FaultSpec::Crash { node, at_s } => format!("crash:{node}@{at_s}"),
            FaultSpec::Stall { node, from_s, to_s } => format!("stall:{node}:{from_s}-{to_s}"),
            FaultSpec::Slow { node, factor, from_s, to_s } => {
                format!("slow:{node}:x{factor}:{from_s}-{to_s}")
            }
            FaultSpec::Drop { topic, node, rate, from_s, to_s } => {
                format!("drop:{topic}>{node}:{rate}:{from_s}-{to_s}")
            }
            FaultSpec::Duplicate { topic, node, rate, from_s, to_s } => {
                format!("dup:{topic}>{node}:{rate}:{from_s}-{to_s}")
            }
            FaultSpec::TimerSkew { source, factor, from_s, to_s } => {
                format!("skew:{}:x{factor}:{from_s}-{to_s}", source.name().to_ascii_lowercase())
            }
        }
    }

    /// The node a crash/stall/slow/drop/dup fault targets (`None` for
    /// timer skews, which target a sensor driver, not a bus node).
    pub fn target_node(&self) -> Option<&str> {
        match self {
            FaultSpec::Crash { node, .. }
            | FaultSpec::Stall { node, .. }
            | FaultSpec::Slow { node, .. }
            | FaultSpec::Drop { node, .. }
            | FaultSpec::Duplicate { node, .. } => Some(node),
            FaultSpec::TimerSkew { .. } => None,
        }
    }
}

/// A complete fault schedule for one run. The default (empty) plan
/// injects nothing and leaves the run bit-identical to a plan-free
/// build.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The injected faults, in plan order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses a plan string: `none`, or `+`-separated
    /// [`FaultSpec`] fragments, e.g.
    /// `crash:ndt_matching@4+drop:/image_raw>vision_detector:0.5:2-6`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        if s == "none" || s.is_empty() {
            return Ok(FaultPlan::default());
        }
        let faults = s.split('+').map(FaultSpec::parse).collect::<Result<Vec<_>, String>>()?;
        Ok(FaultPlan { faults })
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Canonical plan string: `none` for the empty plan, else the
    /// `+`-joined fault labels.
    pub fn label(&self) -> String {
        if self.faults.is_empty() {
            "none".to_string()
        } else {
            self.faults.iter().map(FaultSpec::label).collect::<Vec<_>>().join("+")
        }
    }

    /// The nodes crashed by this plan, in plan order (the supervisor's
    /// watch list).
    pub fn crashed_nodes(&self) -> Vec<&str> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::Crash { node, .. } => Some(node.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_every_fault_kind_and_round_trips() {
        let text = "crash:ndt_matching@4+stall:vision_detector:2-5\
                    +slow:euclidean_cluster:x2.5:1-9\
                    +drop:/points_raw>ray_ground_filter:0.25:3-6\
                    +dup:/image_raw>vision_detector:1:0-2\
                    +skew:lidar:x1.5:2-8";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.faults.len(), 6);
        assert_eq!(
            plan.faults[0],
            FaultSpec::Crash { node: "ndt_matching".to_string(), at_s: 4.0 }
        );
        assert_eq!(
            plan.faults[3],
            FaultSpec::Drop {
                topic: "/points_raw".to_string(),
                node: "ray_ground_filter".to_string(),
                rate: 0.25,
                from_s: 3.0,
                to_s: 6.0,
            }
        );
        assert!(matches!(
            plan.faults[5],
            FaultSpec::TimerSkew { source: Source::Lidar, factor, from_s, to_s }
                if factor == 1.5 && from_s == 2.0 && to_s == 8.0
        ));
        // label() is the canonical spelling; parse(label()) is identity.
        let relabeled = FaultPlan::parse(&plan.label()).unwrap();
        assert_eq!(relabeled, plan);
        assert_eq!(plan.crashed_nodes(), vec!["ndt_matching"]);
    }

    #[test]
    fn empty_plan_spellings() {
        assert!(FaultPlan::parse("none").unwrap().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::default().label(), "none");
    }

    #[test]
    fn validation_rejects_malformed_fragments() {
        // Windows: non-finite, inverted, negative.
        assert!(FaultPlan::parse("stall:n:1e999-2").is_err());
        assert!(FaultPlan::parse("stall:n:5-2").is_err());
        assert!(FaultPlan::parse("stall:n:2-2").is_err());
        // Crash time must be finite and non-negative.
        assert!(FaultPlan::parse("crash:n@-1").is_err());
        assert!(FaultPlan::parse("crash:n@inf").is_err());
        assert!(FaultPlan::parse("crash:@4").is_err());
        // Rates clamp to [0, 1].
        assert!(FaultPlan::parse("drop:/t>n:1.5:0-1").is_err());
        assert!(FaultPlan::parse("drop:/t>n:-0.1:0-1").is_err());
        // Factors must be positive, with the x prefix.
        assert!(FaultPlan::parse("slow:n:x0:0-1").is_err());
        assert!(FaultPlan::parse("slow:n:2.5:0-1").is_err());
        assert!(FaultPlan::parse("skew:lidar:x-2:0-1").is_err());
        // Unknown kinds and sources.
        assert!(FaultPlan::parse("melt:n:0-1").is_err());
        assert!(FaultPlan::parse("skew:sonar:x2:0-1").is_err());
        // Edge faults need both endpoints.
        assert!(FaultPlan::parse("drop:/t:0.5:0-1").is_err());
        assert!(FaultPlan::parse("drop:>n:0.5:0-1").is_err());
    }

    #[test]
    fn target_node_covers_node_faults_only() {
        assert_eq!(
            FaultSpec::parse("crash:ndt_matching@4").unwrap().target_node(),
            Some("ndt_matching")
        );
        assert_eq!(FaultSpec::parse("skew:imu:x2:0-1").unwrap().target_node(), None);
    }
}
