//! Message payloads exchanged on the bus.

use av_geom::{Pose, Twist};
use av_perception::fusion::VisionDetection2d;
use av_perception::{DetectedObject, OccupancyGrid};
use av_pointcloud::PointCloud;
use av_tracking::{PredictedObject, TrackedObject};
use av_world::{GnssFix, ImageFrame, ImuSample, LightState, RadarScan};

/// A localization estimate, as published on `/ndt_pose`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoseEstimate {
    /// Estimated body→map pose.
    pub pose: Pose,
    /// NDT fitness at the solution.
    pub fitness: f64,
    /// Newton iterations the match took.
    pub iterations: u32,
}

/// Every payload type the stack exchanges.
///
/// One enum (rather than `Any`-typed topics) keeps dispatch explicit:
/// a node receiving an unexpected variant is a wiring bug and panics in
/// its `on_message`.
#[derive(Debug, Clone)]
pub enum Msg {
    /// A LiDAR sweep (`/points_raw`, `/filtered_points`,
    /// `/points_ground`, `/points_no_ground`).
    PointCloud(PointCloud),
    /// A camera frame (`/image_raw`).
    Image(ImageFrame),
    /// A GNSS fix (`/gnss_pose`).
    Gnss(GnssFix),
    /// An IMU sample (`/imu_raw`).
    Imu(ImuSample),
    /// A localization estimate (`/ndt_pose`).
    Pose(PoseEstimate),
    /// 2D vision detections (`/detection/image_detector/objects`).
    VisionDetections(Vec<VisionDetection2d>),
    /// 3D detected objects, LiDAR or fused
    /// (`/detection/lidar_detector/objects`,
    /// `/detection/fusion_tools/objects`).
    DetectedObjects(Vec<DetectedObject>),
    /// Tracked objects (`/detection/object_tracker/objects`,
    /// `/detection/objects`).
    TrackedObjects(Vec<TrackedObject>),
    /// Tracks with predicted paths
    /// (`/prediction/motion_predictor/objects`).
    PredictedObjects(Vec<PredictedObject>),
    /// An occupancy grid (`/semantics/costmap*`).
    Costmap(OccupancyGrid),
    /// A velocity command (`/twist_raw`, `/twist_cmd`).
    Twist(Twist),
    /// A planned local path in map coordinates (`/final_waypoints`).
    Path(Vec<av_geom::Vec3>),
    /// Recognized traffic-light states (`/light_color`).
    LightColors(Vec<LightObservation>),
    /// A radar scan (`/radar_raw`, extension sensor).
    Radar(RadarScan),
}

/// One recognized traffic light, as published by
/// `traffic_light_recognition`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightObservation {
    /// HD-map light id.
    pub id: u32,
    /// Classified state.
    pub state: LightState,
    /// Classifier confidence in `[0, 1]`.
    pub confidence: f64,
    /// Distance to the light, meters.
    pub distance: f64,
}

impl Msg {
    /// Short name of the variant, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::PointCloud(_) => "PointCloud",
            Msg::Image(_) => "Image",
            Msg::Gnss(_) => "Gnss",
            Msg::Imu(_) => "Imu",
            Msg::Pose(_) => "Pose",
            Msg::VisionDetections(_) => "VisionDetections",
            Msg::DetectedObjects(_) => "DetectedObjects",
            Msg::TrackedObjects(_) => "TrackedObjects",
            Msg::PredictedObjects(_) => "PredictedObjects",
            Msg::Costmap(_) => "Costmap",
            Msg::Twist(_) => "Twist",
            Msg::Path(_) => "Path",
            Msg::LightColors(_) => "LightColors",
            Msg::Radar(_) => "Radar",
        }
    }
}

/// Panics with a wiring diagnosis; used by nodes on unexpected payloads.
#[track_caller]
pub fn unexpected(node: &str, topic: &str, msg: &Msg) -> ! {
    panic!("node {node} received unexpected {} on {topic}", msg.kind_name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(Msg::PointCloud(PointCloud::new()).kind_name(), "PointCloud");
        assert_eq!(Msg::Twist(Twist::ZERO).kind_name(), "Twist");
    }
}
