//! Byte-deterministic serialization of stack payloads and shared small
//! types, used by the checkpoint/resume seam in [`crate::stack`].
//!
//! Everything here is hand-rolled over [`av_des::SnapWriter`] /
//! [`av_des::SnapReader`] — no external serialization crates. Encodings
//! are fixed-width little-endian (floats as IEEE-754 bit patterns), so a
//! checkpoint taken on one run is byte-identical to one taken on any
//! other run that reached the same state.

use av_des::{SnapReader, SnapWriter};
use av_geom::{Pose, Quat, Twist, Vec3};
use av_perception::fusion::VisionDetection2d;
use av_perception::{DetectedObject, ObjectClass, OccupancyGrid};
use av_pointcloud::{Point, PointCloud};
use av_ros::{Lineage, Source};
use av_tracking::{PredictedObject, TrackedObject};
use av_world::{
    AgentKind, GnssFix, ImageFrame, ImuSample, LightState, RadarScan, RadarTarget, VisibleLight,
    VisibleObject,
};

use crate::msg::{LightObservation, Msg, PoseEstimate};

/// Writes a [`Vec3`] as three f64 bit patterns.
pub fn put_vec3(w: &mut SnapWriter, v: Vec3) {
    w.put_f64(v.x);
    w.put_f64(v.y);
    w.put_f64(v.z);
}

/// Reads a [`Vec3`] written by [`put_vec3`].
pub fn get_vec3(r: &mut SnapReader<'_>) -> Vec3 {
    Vec3::new(r.get_f64(), r.get_f64(), r.get_f64())
}

/// Writes an optional [`Vec3`].
pub fn put_opt_vec3(w: &mut SnapWriter, v: Option<Vec3>) {
    w.put_bool(v.is_some());
    if let Some(v) = v {
        put_vec3(w, v);
    }
}

/// Reads an optional [`Vec3`] written by [`put_opt_vec3`].
pub fn get_opt_vec3(r: &mut SnapReader<'_>) -> Option<Vec3> {
    if r.get_bool() {
        Some(get_vec3(r))
    } else {
        None
    }
}

/// Writes a [`Quat`] as four f64 bit patterns (w, x, y, z).
pub fn put_quat(w: &mut SnapWriter, q: Quat) {
    w.put_f64(q.w);
    w.put_f64(q.x);
    w.put_f64(q.y);
    w.put_f64(q.z);
}

/// Reads a [`Quat`] written by [`put_quat`].
pub fn get_quat(r: &mut SnapReader<'_>) -> Quat {
    Quat { w: r.get_f64(), x: r.get_f64(), y: r.get_f64(), z: r.get_f64() }
}

/// Writes a [`Pose`].
pub fn put_pose(w: &mut SnapWriter, p: &Pose) {
    put_vec3(w, p.translation);
    put_quat(w, p.rotation);
}

/// Reads a [`Pose`] written by [`put_pose`].
pub fn get_pose(r: &mut SnapReader<'_>) -> Pose {
    Pose { translation: get_vec3(r), rotation: get_quat(r) }
}

/// Writes a [`SimTime`](av_des::SimTime) as nanoseconds.
pub fn put_time(w: &mut SnapWriter, t: av_des::SimTime) {
    w.put_u64(t.as_nanos());
}

/// Reads a [`SimTime`](av_des::SimTime) written by [`put_time`].
pub fn get_time(r: &mut SnapReader<'_>) -> av_des::SimTime {
    av_des::SimTime::from_nanos(r.get_u64())
}

/// Writes an optional [`SimTime`](av_des::SimTime).
pub fn put_opt_time(w: &mut SnapWriter, t: Option<av_des::SimTime>) {
    w.put_bool(t.is_some());
    if let Some(t) = t {
        put_time(w, t);
    }
}

/// Reads an optional [`SimTime`](av_des::SimTime) written by
/// [`put_opt_time`].
pub fn get_opt_time(r: &mut SnapReader<'_>) -> Option<av_des::SimTime> {
    if r.get_bool() {
        Some(get_time(r))
    } else {
        None
    }
}

/// Writes a message [`Lineage`] (entry order preserved).
pub fn put_lineage(w: &mut SnapWriter, lineage: &Lineage) {
    let entries: Vec<(Source, av_des::SimTime)> = lineage.iter().collect();
    w.put_usize(entries.len());
    for (source, stamp) in entries {
        w.put_u8(source.code() as u8);
        put_time(w, stamp);
    }
}

/// Reads a [`Lineage`] written by [`put_lineage`].
pub fn get_lineage(r: &mut SnapReader<'_>) -> Lineage {
    let n = r.get_usize();
    let entries = (0..n).map(|_| (Source::from_code(r.get_u8() as u64), get_time(r))).collect();
    Lineage::from_entries(entries)
}

/// Writes a [`DetectorKind`](av_vision::DetectorKind) as a one-byte code.
pub fn put_detector_kind(w: &mut SnapWriter, kind: av_vision::DetectorKind) {
    w.put_u8(match kind {
        av_vision::DetectorKind::Ssd512 => 0,
        av_vision::DetectorKind::Ssd300 => 1,
        av_vision::DetectorKind::YoloV3 => 2,
    });
}

/// Reads a [`DetectorKind`](av_vision::DetectorKind) written by
/// [`put_detector_kind`].
pub fn get_detector_kind(r: &mut SnapReader<'_>) -> av_vision::DetectorKind {
    match r.get_u8() {
        0 => av_vision::DetectorKind::Ssd512,
        1 => av_vision::DetectorKind::Ssd300,
        2 => av_vision::DetectorKind::YoloV3,
        other => panic!("checkpoint corrupt: unknown detector kind {other}"),
    }
}

/// Writes a [`NodeCost`](crate::calib::NodeCost) model.
pub fn put_node_cost(w: &mut SnapWriter, cost: &crate::calib::NodeCost) {
    w.put_f64(cost.base_ms);
    w.put_f64(cost.per_unit_ms);
    w.put_f64(cost.mem_intensity);
    w.put_f64(cost.jitter_sigma);
}

/// Reads a [`NodeCost`](crate::calib::NodeCost) written by
/// [`put_node_cost`].
pub fn get_node_cost(r: &mut SnapReader<'_>) -> crate::calib::NodeCost {
    crate::calib::NodeCost {
        base_ms: r.get_f64(),
        per_unit_ms: r.get_f64(),
        mem_intensity: r.get_f64(),
        jitter_sigma: r.get_f64(),
    }
}

/// Writes a [`VisionCost`](crate::calib::VisionCost) model.
pub fn put_vision_cost(w: &mut SnapWriter, cost: &crate::calib::VisionCost) {
    put_node_cost(w, &cost.preprocess);
    put_node_cost(w, &cost.postprocess);
    w.put_u64(cost.gpu_kernel.as_nanos());
    w.put_u64(cost.copy_bytes);
    w.put_f64(cost.energy_j);
}

/// Reads a [`VisionCost`](crate::calib::VisionCost) written by
/// [`put_vision_cost`].
pub fn get_vision_cost(r: &mut SnapReader<'_>) -> crate::calib::VisionCost {
    crate::calib::VisionCost {
        preprocess: get_node_cost(r),
        postprocess: get_node_cost(r),
        gpu_kernel: av_des::SimDuration::from_nanos(r.get_u64()),
        copy_bytes: r.get_u64(),
        energy_j: r.get_f64(),
    }
}

fn class_code(class: ObjectClass) -> u8 {
    match class {
        ObjectClass::Car => 0,
        ObjectClass::Pedestrian => 1,
        ObjectClass::Cyclist => 2,
        ObjectClass::Unknown => 3,
    }
}

fn class_from_code(code: u8) -> ObjectClass {
    match code {
        0 => ObjectClass::Car,
        1 => ObjectClass::Pedestrian,
        2 => ObjectClass::Cyclist,
        3 => ObjectClass::Unknown,
        other => panic!("checkpoint corrupt: unknown object class {other}"),
    }
}

/// Writes an [`ObjectClass`] as a one-byte code.
pub fn put_class(w: &mut SnapWriter, class: ObjectClass) {
    w.put_u8(class_code(class));
}

/// Reads an [`ObjectClass`] written by [`put_class`].
pub fn get_class(r: &mut SnapReader<'_>) -> ObjectClass {
    class_from_code(r.get_u8())
}

fn kind_code(kind: AgentKind) -> u8 {
    match kind {
        AgentKind::Car => 0,
        AgentKind::Pedestrian => 1,
        AgentKind::Cyclist => 2,
    }
}

fn kind_from_code(code: u8) -> AgentKind {
    match code {
        0 => AgentKind::Car,
        1 => AgentKind::Pedestrian,
        2 => AgentKind::Cyclist,
        other => panic!("checkpoint corrupt: unknown agent kind {other}"),
    }
}

fn light_code(state: LightState) -> u8 {
    match state {
        LightState::Green => 0,
        LightState::Yellow => 1,
        LightState::Red => 2,
    }
}

fn light_from_code(code: u8) -> LightState {
    match code {
        0 => LightState::Green,
        1 => LightState::Yellow,
        2 => LightState::Red,
        other => panic!("checkpoint corrupt: unknown light state {other}"),
    }
}

fn put_bbox(w: &mut SnapWriter, bbox: (f64, f64, f64, f64)) {
    w.put_f64(bbox.0);
    w.put_f64(bbox.1);
    w.put_f64(bbox.2);
    w.put_f64(bbox.3);
}

fn get_bbox(r: &mut SnapReader<'_>) -> (f64, f64, f64, f64) {
    (r.get_f64(), r.get_f64(), r.get_f64(), r.get_f64())
}

fn put_cloud(w: &mut SnapWriter, cloud: &PointCloud) {
    w.put_usize(cloud.points().len());
    for p in cloud.points() {
        put_vec3(w, p.position);
        w.put_u32(p.intensity.to_bits());
        w.put_u8(p.ring);
    }
}

fn get_cloud(r: &mut SnapReader<'_>) -> PointCloud {
    let n = r.get_usize();
    let mut cloud = PointCloud::with_capacity(n);
    for _ in 0..n {
        cloud.push(Point {
            position: get_vec3(r),
            intensity: f32::from_bits(r.get_u32()),
            ring: r.get_u8(),
        });
    }
    cloud
}

fn put_detected(w: &mut SnapWriter, obj: &DetectedObject) {
    put_vec3(w, obj.position);
    put_vec3(w, obj.half_extents);
    w.put_f64(obj.yaw);
    put_class(w, obj.class);
    w.put_f64(obj.confidence);
    w.put_u32(obj.point_count);
}

fn get_detected(r: &mut SnapReader<'_>) -> DetectedObject {
    DetectedObject {
        position: get_vec3(r),
        half_extents: get_vec3(r),
        yaw: r.get_f64(),
        class: get_class(r),
        confidence: r.get_f64(),
        point_count: r.get_u32(),
    }
}

fn put_tracked(w: &mut SnapWriter, obj: &TrackedObject) {
    w.put_u64(obj.id);
    put_vec3(w, obj.position);
    put_vec3(w, obj.velocity);
    w.put_f64(obj.yaw);
    w.put_f64(obj.yaw_rate);
    put_vec3(w, obj.half_extents);
    put_class(w, obj.class);
    w.put_u32(obj.age);
    for p in obj.model_probs {
        w.put_f64(p);
    }
}

fn get_tracked(r: &mut SnapReader<'_>) -> TrackedObject {
    TrackedObject {
        id: r.get_u64(),
        position: get_vec3(r),
        velocity: get_vec3(r),
        yaw: r.get_f64(),
        yaw_rate: r.get_f64(),
        half_extents: get_vec3(r),
        class: get_class(r),
        age: r.get_u32(),
        model_probs: [r.get_f64(), r.get_f64(), r.get_f64()],
    }
}

/// Writes one [`Msg`] payload; variant tags follow declaration order.
pub fn encode_msg(msg: &Msg, w: &mut SnapWriter) {
    match msg {
        Msg::PointCloud(cloud) => {
            w.put_u8(0);
            put_cloud(w, cloud);
        }
        Msg::Image(frame) => {
            w.put_u8(1);
            w.put_u32(frame.width);
            w.put_u32(frame.height);
            w.put_usize(frame.visible.len());
            for v in &frame.visible {
                w.put_u32(v.id);
                w.put_u8(kind_code(v.kind));
                put_bbox(w, v.bbox);
                w.put_f64(v.distance);
                w.put_f64(v.occlusion);
            }
            w.put_usize(frame.lights.len());
            for l in &frame.lights {
                w.put_u32(l.id);
                put_bbox(w, l.bbox);
                w.put_u8(light_code(l.state));
                w.put_f64(l.distance);
            }
            w.put_f64(frame.clutter);
        }
        Msg::Gnss(fix) => {
            w.put_u8(2);
            put_vec3(w, fix.position);
            w.put_f64(fix.accuracy);
        }
        Msg::Imu(sample) => {
            w.put_u8(3);
            put_vec3(w, sample.linear_accel);
            w.put_f64(sample.yaw_rate);
            w.put_f64(sample.speed);
        }
        Msg::Pose(est) => {
            w.put_u8(4);
            put_pose(w, &est.pose);
            w.put_f64(est.fitness);
            w.put_u32(est.iterations);
        }
        Msg::VisionDetections(dets) => {
            w.put_u8(5);
            w.put_usize(dets.len());
            for d in dets {
                put_bbox(w, d.bbox);
                put_class(w, d.class);
                w.put_f64(d.confidence);
            }
        }
        Msg::DetectedObjects(objs) => {
            w.put_u8(6);
            w.put_usize(objs.len());
            for obj in objs {
                put_detected(w, obj);
            }
        }
        Msg::TrackedObjects(objs) => {
            w.put_u8(7);
            w.put_usize(objs.len());
            for obj in objs {
                put_tracked(w, obj);
            }
        }
        Msg::PredictedObjects(objs) => {
            w.put_u8(8);
            w.put_usize(objs.len());
            for obj in objs {
                put_tracked(w, &obj.object);
                w.put_usize(obj.path.len());
                for p in &obj.path {
                    put_vec3(w, *p);
                }
            }
        }
        Msg::Costmap(grid) => {
            w.put_u8(9);
            w.put_f64(grid.resolution());
            w.put_f64(grid.half_size());
            w.put_usize(grid.data().len());
            for &cell in grid.data() {
                w.put_u8(cell);
            }
        }
        Msg::Twist(twist) => {
            w.put_u8(10);
            put_vec3(w, twist.linear);
            put_vec3(w, twist.angular);
        }
        Msg::Path(path) => {
            w.put_u8(11);
            w.put_usize(path.len());
            for p in path {
                put_vec3(w, *p);
            }
        }
        Msg::LightColors(lights) => {
            w.put_u8(12);
            w.put_usize(lights.len());
            for l in lights {
                w.put_u32(l.id);
                w.put_u8(light_code(l.state));
                w.put_f64(l.confidence);
                w.put_f64(l.distance);
            }
        }
        Msg::Radar(scan) => {
            w.put_u8(13);
            w.put_usize(scan.targets.len());
            for t in &scan.targets {
                w.put_f64(t.range);
                w.put_f64(t.bearing);
                w.put_f64(t.range_rate);
                w.put_f64(t.rcs);
            }
        }
    }
}

/// Reads one [`Msg`] payload written by [`encode_msg`].
///
/// # Panics
///
/// Panics on a malformed or truncated encoding.
pub fn decode_msg(r: &mut SnapReader<'_>) -> Msg {
    match r.get_u8() {
        0 => Msg::PointCloud(get_cloud(r)),
        1 => {
            let width = r.get_u32();
            let height = r.get_u32();
            let visible = (0..r.get_usize())
                .map(|_| VisibleObject {
                    id: r.get_u32(),
                    kind: kind_from_code(r.get_u8()),
                    bbox: get_bbox(r),
                    distance: r.get_f64(),
                    occlusion: r.get_f64(),
                })
                .collect();
            let lights = (0..r.get_usize())
                .map(|_| VisibleLight {
                    id: r.get_u32(),
                    bbox: get_bbox(r),
                    state: light_from_code(r.get_u8()),
                    distance: r.get_f64(),
                })
                .collect();
            Msg::Image(ImageFrame { width, height, visible, lights, clutter: r.get_f64() })
        }
        2 => Msg::Gnss(GnssFix { position: get_vec3(r), accuracy: r.get_f64() }),
        3 => Msg::Imu(ImuSample {
            linear_accel: get_vec3(r),
            yaw_rate: r.get_f64(),
            speed: r.get_f64(),
        }),
        4 => Msg::Pose(PoseEstimate {
            pose: get_pose(r),
            fitness: r.get_f64(),
            iterations: r.get_u32(),
        }),
        5 => Msg::VisionDetections(
            (0..r.get_usize())
                .map(|_| VisionDetection2d {
                    bbox: get_bbox(r),
                    class: get_class(r),
                    confidence: r.get_f64(),
                })
                .collect(),
        ),
        6 => Msg::DetectedObjects((0..r.get_usize()).map(|_| get_detected(r)).collect()),
        7 => Msg::TrackedObjects((0..r.get_usize()).map(|_| get_tracked(r)).collect()),
        8 => Msg::PredictedObjects(
            (0..r.get_usize())
                .map(|_| PredictedObject {
                    object: get_tracked(r),
                    path: (0..r.get_usize()).map(|_| get_vec3(r)).collect(),
                })
                .collect(),
        ),
        9 => {
            let resolution = r.get_f64();
            let half_size = r.get_f64();
            let data = (0..r.get_usize()).map(|_| r.get_u8()).collect();
            Msg::Costmap(OccupancyGrid::from_parts(resolution, half_size, data))
        }
        10 => Msg::Twist(Twist { linear: get_vec3(r), angular: get_vec3(r) }),
        11 => Msg::Path((0..r.get_usize()).map(|_| get_vec3(r)).collect()),
        12 => Msg::LightColors(
            (0..r.get_usize())
                .map(|_| LightObservation {
                    id: r.get_u32(),
                    state: light_from_code(r.get_u8()),
                    confidence: r.get_f64(),
                    distance: r.get_f64(),
                })
                .collect(),
        ),
        13 => Msg::Radar(RadarScan {
            targets: (0..r.get_usize())
                .map(|_| RadarTarget {
                    range: r.get_f64(),
                    bearing: r.get_f64(),
                    range_rate: r.get_f64(),
                    rcs: r.get_f64(),
                })
                .collect(),
        }),
        other => panic!("checkpoint corrupt: unknown message tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::SimTime;

    fn round_trip(msg: &Msg) -> Msg {
        let mut w = SnapWriter::new();
        encode_msg(msg, &mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let out = decode_msg(&mut r);
        assert!(r.is_exhausted(), "trailing bytes after {}", msg.kind_name());
        out
    }

    #[test]
    fn cloud_round_trips() {
        let mut cloud = PointCloud::with_capacity(2);
        cloud.push(Point { position: Vec3::new(1.0, -2.0, 0.5), intensity: 0.25, ring: 7 });
        cloud.push(Point { position: Vec3::new(-4.0, 8.0, 1.5), intensity: 0.75, ring: 31 });
        match round_trip(&Msg::PointCloud(cloud.clone())) {
            Msg::PointCloud(out) => assert_eq!(out.points(), cloud.points()),
            other => panic!("wrong variant {}", other.kind_name()),
        }
    }

    #[test]
    fn image_round_trips() {
        let frame = ImageFrame {
            width: 640,
            height: 480,
            visible: vec![VisibleObject {
                id: 3,
                kind: AgentKind::Cyclist,
                bbox: (1.0, 2.0, 3.0, 4.0),
                distance: 12.5,
                occlusion: 0.25,
            }],
            lights: vec![VisibleLight {
                id: 9,
                bbox: (5.0, 6.0, 7.0, 8.0),
                state: LightState::Yellow,
                distance: 40.0,
            }],
            clutter: 0.1,
        };
        match round_trip(&Msg::Image(frame.clone())) {
            Msg::Image(out) => assert_eq!(out, frame),
            other => panic!("wrong variant {}", other.kind_name()),
        }
    }

    #[test]
    fn costmap_round_trips() {
        let grid = av_perception::CostmapGenerator::new(Default::default())
            .from_points(&PointCloud::from_positions([Vec3::new(5.0, 2.0, 0.0)]));
        match round_trip(&Msg::Costmap(grid.clone())) {
            Msg::Costmap(out) => assert_eq!(out, grid),
            other => panic!("wrong variant {}", other.kind_name()),
        }
    }

    #[test]
    fn tracked_and_predicted_round_trip() {
        let tracked = TrackedObject {
            id: 42,
            position: Vec3::new(1.0, 2.0, 0.0),
            velocity: Vec3::new(-0.5, 0.25, 0.0),
            yaw: 0.3,
            yaw_rate: -0.05,
            half_extents: Vec3::new(2.25, 0.9, 0.75),
            class: ObjectClass::Car,
            age: 17,
            model_probs: [0.2, 0.5, 0.3],
        };
        let predicted = PredictedObject {
            object: tracked.clone(),
            path: vec![Vec3::new(2.0, 2.0, 0.0), Vec3::new(3.0, 2.1, 0.0)],
        };
        match round_trip(&Msg::PredictedObjects(vec![predicted.clone()])) {
            Msg::PredictedObjects(out) => assert_eq!(out, vec![predicted]),
            other => panic!("wrong variant {}", other.kind_name()),
        }
    }

    #[test]
    fn lineage_round_trips_in_order() {
        let mut lineage = Lineage::origin(Source::Lidar, SimTime::from_millis(100));
        lineage.merge(&Lineage::origin(Source::Camera, SimTime::from_millis(90)));
        let mut w = SnapWriter::new();
        put_lineage(&mut w, &lineage);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let out = get_lineage(&mut r);
        assert!(r.is_exhausted());
        let a: Vec<_> = lineage.iter().collect();
        let b: Vec<_> = out.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn small_payloads_round_trip() {
        let msgs = vec![
            Msg::Gnss(GnssFix { position: Vec3::new(10.0, 20.0, 0.0), accuracy: 0.8 }),
            Msg::Imu(ImuSample {
                linear_accel: Vec3::new(0.1, -0.2, 9.8),
                yaw_rate: 0.02,
                speed: 8.5,
            }),
            Msg::Twist(Twist::planar(5.0, 0.1)),
            Msg::Path(vec![Vec3::new(1.0, 0.0, 0.0)]),
            Msg::LightColors(vec![LightObservation {
                id: 2,
                state: LightState::Red,
                confidence: 0.9,
                distance: 25.0,
            }]),
            Msg::Radar(RadarScan {
                targets: vec![RadarTarget {
                    range: 30.0,
                    bearing: 0.1,
                    range_rate: -2.0,
                    rcs: 5.0,
                }],
            }),
        ];
        for msg in &msgs {
            let out = round_trip(msg);
            assert_eq!(out.kind_name(), msg.kind_name());
        }
    }
}
