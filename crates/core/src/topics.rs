//! Topic names, spelled as in the paper's Table IV.

/// Raw LiDAR sweeps from the sensor driver.
pub const POINTS_RAW: &str = "/points_raw";
/// Voxel-filtered sweep (`voxel_grid_filter` → `ndt_matching`).
pub const FILTERED_POINTS: &str = "/filtered_points";
/// Localization output.
pub const NDT_POSE: &str = "/ndt_pose";
/// Raw camera frames.
pub const IMAGE_RAW: &str = "/image_raw";
/// GNSS fixes (seed for localization).
pub const GNSS_POSE: &str = "/gnss_pose";
/// IMU samples (motion prediction for the NDT initial guess).
pub const IMU_RAW: &str = "/imu_raw";
/// Ground returns from `ray_ground_filter`.
pub const POINTS_GROUND: &str = "/points_ground";
/// Above-ground returns from `ray_ground_filter`.
pub const POINTS_NO_GROUND: &str = "/points_no_ground";
/// 2D detections from the vision detector.
pub const IMAGE_DETECTOR_OBJECTS: &str = "/detection/image_detector/objects";
/// 3D cluster detections from `euclidean_cluster`.
pub const LIDAR_DETECTOR_OBJECTS: &str = "/detection/lidar_detector/objects";
/// Fused detections from `range_vision_fusion`.
pub const FUSION_TOOLS_OBJECTS: &str = "/detection/fusion_tools/objects";
/// Tracker output.
pub const OBJECT_TRACKER_OBJECTS: &str = "/detection/object_tracker/objects";
/// Relay of the tracker output (`ukf_track_relay`).
pub const DETECTION_OBJECTS: &str = "/detection/objects";
/// Prediction output.
pub const MOTION_PREDICTOR_OBJECTS: &str = "/prediction/motion_predictor/objects";
/// Costmap built from LiDAR points.
pub const COSTMAP_POINTS: &str = "/semantics/costmap_points";
/// Costmap built from predicted objects.
pub const COSTMAP_OBJECTS: &str = "/semantics/costmap";
/// Local planner output path.
pub const FINAL_WAYPOINTS: &str = "/final_waypoints";
/// Recognized traffic-light states.
pub const LIGHT_COLOR: &str = "/light_color";
/// Raw radar scans (extension sensor).
pub const RADAR_RAW: &str = "/radar_raw";
/// 3D objects derived from radar returns (extension).
pub const RADAR_DETECTOR_OBJECTS: &str = "/detection/radar_detector/objects";
/// Raw velocity command from pure pursuit.
pub const TWIST_RAW: &str = "/twist_raw";
/// Smoothed velocity command from the twist filter.
pub const TWIST_CMD: &str = "/twist_cmd";

/// Node names, as the paper's figures label them.
pub mod nodes {
    /// Down-samples raw sweeps.
    pub const VOXEL_GRID_FILTER: &str = "voxel_grid_filter";
    /// NDT localization.
    pub const NDT_MATCHING: &str = "ndt_matching";
    /// Ground segmentation.
    pub const RAY_GROUND_FILTER: &str = "ray_ground_filter";
    /// LiDAR clustering.
    pub const EUCLIDEAN_CLUSTER: &str = "euclidean_cluster";
    /// Camera DNN detection (SSD512 / SSD300 / YOLOv3).
    pub const VISION_DETECTION: &str = "vision_detection";
    /// LiDAR/vision fusion.
    pub const RANGE_VISION_FUSION: &str = "range_vision_fusion";
    /// Multi-object tracking.
    pub const IMM_UKF_PDA_TRACKER: &str = "imm_ukf_pda_tracker";
    /// Tracker relay (Table IV's `ukf_track_relay`).
    pub const UKF_TRACK_RELAY: &str = "ukf_track_relay";
    /// Constant-velocity prediction.
    pub const NAIVE_MOTION_PREDICT: &str = "naive_motion_predict";
    /// Costmap from LiDAR points.
    pub const COSTMAP_GENERATOR: &str = "costmap_generator";
    /// Costmap from predicted objects (the paper's
    /// `costmap_generator_obj` series).
    pub const COSTMAP_GENERATOR_OBJ: &str = "costmap_generator_obj";
    /// Traffic-light recognition (extension: requires the HD-map light
    /// annotations the paper's map lacked).
    pub const TRAFFIC_LIGHT_RECOGNITION: &str = "traffic_light_recognition";
    /// Radar detection (extension: the sensor Autoware had "under
    /// development").
    pub const RADAR_DETECTION: &str = "radar_detection";
    /// Dead-reckoning localization fallback (supervision layer): holds
    /// the pose stream alive while `ndt_matching` is down. Registered
    /// only when a fault plan can crash the primary, so it never appears
    /// in clean runs (and is deliberately not in [`PERCEPTION`]).
    pub const FALLBACK_LOCALIZER: &str = "fallback_localizer";
    /// Local rollout planning (actuation layer).
    pub const OP_LOCAL_PLANNER: &str = "op_local_planner";
    /// Pure-pursuit path tracking (actuation layer).
    pub const PURE_PURSUIT: &str = "pure_pursuit";
    /// Command smoothing (actuation layer).
    pub const TWIST_FILTER: &str = "twist_filter";

    /// The perception nodes profiled in Fig 5, in presentation order.
    pub const PERCEPTION: [&str; 11] = [
        VOXEL_GRID_FILTER,
        NDT_MATCHING,
        RAY_GROUND_FILTER,
        EUCLIDEAN_CLUSTER,
        VISION_DETECTION,
        RANGE_VISION_FUSION,
        IMM_UKF_PDA_TRACKER,
        UKF_TRACK_RELAY,
        NAIVE_MOTION_PREDICT,
        COSTMAP_GENERATOR,
        COSTMAP_GENERATOR_OBJ,
    ];
}
