//! The supervision layer: liveness tracking, restart-with-backoff, and
//! graceful degradation over the fault plane.
//!
//! A production AV stack does not just crash when a node dies — a
//! lifecycle manager notices the silent node, relaunches it, and the
//! rest of the stack degrades gracefully in the meantime (Autoware's
//! health checker + runtime manager). This module reproduces that
//! control loop on top of the deterministic fault plane:
//!
//! * [`SupervisionPolicy`] — the knobs: heartbeat cadence, liveness
//!   timeout, exponential restart backoff, detector-fallback warmup.
//! * [`Supervisor`] — watches nodes targeted by the fault plan through a
//!   [`BusObserver`], detects heartbeat misses, schedules restarts with
//!   exponential backoff, and drives the fallbacks. Its periodic
//!   [`Supervisor::tick`] runs on the same simulated clock as
//!   everything else, so every decision is deterministic and every
//!   action lands in the golden hash via the bus's fault events.
//! * [`FallbackLocalizer`] — dead-reckoning + GNSS-reseed pose source
//!   that keeps `/ndt_pose` alive while `ndt_matching` is down.
//! * [`FaultReport`] — the per-run outcome scalars (recovery latency,
//!   time degraded, messages lost) folded into the determinism hash and
//!   surfaced through [`crate::metrics`].
//!
//! The supervisor never mutates the bus from inside an observer
//! callback: observers only record, and the tick plans under one state
//! borrow, then acts with the borrow released (crash/restart/fault
//! events re-enter the observer).

use crate::calib::{Calibration, NodeCost, VisionCost};
use crate::msg::{unexpected, Msg, PoseEstimate};
use crate::nodes::VisionDetectionNode;
use crate::topics;
use av_des::{SimDuration, SimTime, StreamRng};
use av_geom::{Pose, Vec3};
use av_ros::{
    Bus, BusObserver, Execution, FaultKind, Lineage, Message, Node, Outbox, ProcessedEvent,
};
use av_vision::DetectorKind;
use std::cell::RefCell;
use std::rc::Rc;

/// The supervision-layer knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionPolicy {
    /// How often the supervisor's liveness check runs, seconds.
    pub heartbeat_interval_s: f64,
    /// A watched node silent for longer than this is declared missing.
    pub liveness_timeout_s: f64,
    /// Backoff before the first restart attempt, seconds.
    pub restart_initial_backoff_s: f64,
    /// Multiplier applied to the backoff per consecutive attempt.
    pub restart_backoff_factor: f64,
    /// Backoff ceiling, seconds.
    pub restart_max_backoff_s: f64,
    /// How long a restarted detector runs the cheapest network before
    /// reverting to the primary (model reload / engine rebuild window).
    pub detector_fallback_warmup_s: f64,
    /// When `false` the supervisor only observes (no restarts, no
    /// fallbacks) — the unsupervised baseline.
    pub restarts_enabled: bool,
}

impl Default for SupervisionPolicy {
    fn default() -> SupervisionPolicy {
        SupervisionPolicy {
            heartbeat_interval_s: 0.25,
            liveness_timeout_s: 1.0,
            restart_initial_backoff_s: 0.5,
            restart_backoff_factor: 2.0,
            restart_max_backoff_s: 8.0,
            detector_fallback_warmup_s: 2.0,
            restarts_enabled: true,
        }
    }
}

impl SupervisionPolicy {
    /// Backoff before restart attempt `attempt` (0-based), seconds:
    /// `initial * factor^attempt`, capped at the ceiling.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        (self.restart_initial_backoff_s * self.restart_backoff_factor.powi(attempt as i32))
            .min(self.restart_max_backoff_s)
    }

    /// Validates the policy, mirroring the spec-loader conventions.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("heartbeat_interval_s", self.heartbeat_interval_s),
            ("liveness_timeout_s", self.liveness_timeout_s),
            ("restart_initial_backoff_s", self.restart_initial_backoff_s),
            ("restart_max_backoff_s", self.restart_max_backoff_s),
            ("detector_fallback_warmup_s", self.detector_fallback_warmup_s),
        ];
        for (name, value) in positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("supervision {name} must be finite and positive, got {value}"));
            }
        }
        if !self.restart_backoff_factor.is_finite() || self.restart_backoff_factor < 1.0 {
            return Err(format!(
                "supervision restart_backoff_factor must be >= 1, got {}",
                self.restart_backoff_factor
            ));
        }
        if self.restart_max_backoff_s < self.restart_initial_backoff_s {
            return Err(format!(
                "supervision restart_max_backoff_s ({}) must be >= restart_initial_backoff_s ({})",
                self.restart_max_backoff_s, self.restart_initial_backoff_s
            ));
        }
        Ok(())
    }
}

/// Per-run fault and supervision outcomes, folded into the golden hash
/// and surfaced as [`crate::metrics`] scalars.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Node crashes observed.
    pub crashes: u64,
    /// Heartbeat misses the supervisor reported.
    pub heartbeat_misses: u64,
    /// Restarts issued.
    pub restarts: u64,
    /// Fallback activations.
    pub fallback_enters: u64,
    /// Fallback deactivations.
    pub fallback_exits: u64,
    /// Messages lost to the fault plane (down-node discards + edge drops).
    pub messages_lost: u64,
    /// Messages duplicated by edge faults.
    pub messages_duplicated: u64,
    /// Total wall-clock the stack spent degraded (crash-to-recovery
    /// outages plus detector-fallback windows; open episodes censored at
    /// run end), seconds.
    pub time_degraded_s: f64,
    /// Worst crash-to-recovery latency (crash event to the node's first
    /// completed callback after restart; censored at run end if the run
    /// finishes mid-outage), milliseconds. Zero when nothing crashed.
    pub recovery_latency_ms: f64,
}

/// Liveness bookkeeping for one watched node.
#[derive(Debug)]
struct WatchState {
    name: String,
    /// Completion time of the node's latest callback.
    last_seen: Option<SimTime>,
    /// Set while the node is crashed.
    down_since: Option<SimTime>,
    /// Pending restart deadline (crash detected, backoff running).
    restart_at: Option<SimTime>,
    /// Set between the restart and the node's first callback after it.
    restarted_at: Option<SimTime>,
    /// Start of the current outage (first crash of the episode); cleared
    /// when recovery completes.
    recover_from: Option<SimTime>,
    /// Consecutive restart attempts in the current outage.
    attempts: u32,
    /// Debounce: one heartbeat-miss event per silence episode.
    miss_reported: bool,
}

impl WatchState {
    fn new(name: &str) -> WatchState {
        WatchState {
            name: name.to_string(),
            last_seen: None,
            down_since: None,
            restart_at: None,
            restarted_at: None,
            recover_from: None,
            attempts: 0,
            miss_reported: false,
        }
    }
}

/// Detector graceful degradation: after a restart the vision node runs
/// the cheapest network for a warmup window, then reverts to the primary.
struct DetectorFallback {
    node: String,
    handle: Rc<RefCell<VisionDetectionNode>>,
    primary: (DetectorKind, VisionCost),
    cheap: (DetectorKind, VisionCost),
    /// Set by the observer when the node restarts; consumed by the tick.
    pending: bool,
    active_since: Option<SimTime>,
    revert_at: Option<SimTime>,
}

/// Shared supervisor state (observer + tick + report all see this).
struct SupervisorState {
    policy: SupervisionPolicy,
    watched: Vec<WatchState>,
    crashes: u64,
    heartbeat_misses: u64,
    restarts: u64,
    fallback_enters: u64,
    fallback_exits: u64,
    recovery_latencies_s: Vec<f64>,
    degraded_s: f64,
    loc_fallback: Option<(String, Rc<RefCell<FallbackLocalizer>>)>,
    loc_fallback_active: bool,
    detector: Option<DetectorFallback>,
}

/// The observer half: records heartbeats and fault events. Never calls
/// back into the bus.
struct SupervisorObserver {
    state: Rc<RefCell<SupervisorState>>,
}

impl BusObserver for SupervisorObserver {
    fn node_processed(&mut self, event: &ProcessedEvent) {
        let mut s = self.state.borrow_mut();
        if let Some(w) = s.watched.iter_mut().find(|w| w.name == event.node) {
            w.last_seen = Some(event.completed);
        }
    }

    fn fault_event(&mut self, kind: FaultKind, node: &str, _info: &str, time: SimTime) {
        let mut s = self.state.borrow_mut();
        match kind {
            FaultKind::Crash => {
                s.crashes += 1;
                if let Some(w) = s.watched.iter_mut().find(|w| w.name == node) {
                    w.down_since = Some(time);
                    w.recover_from.get_or_insert(time);
                    w.restarted_at = None;
                    w.restart_at = None;
                }
            }
            FaultKind::Restart => {
                s.restarts += 1;
                if let Some(w) = s.watched.iter_mut().find(|w| w.name == node) {
                    w.down_since = None;
                    w.restarted_at = Some(time);
                    w.restart_at = None;
                    w.attempts += 1;
                }
                if let Some(det) = &mut s.detector {
                    if det.node == node {
                        det.pending = true;
                    }
                }
            }
            FaultKind::HeartbeatMiss => s.heartbeat_misses += 1,
            FaultKind::FallbackEnter => s.fallback_enters += 1,
            FaultKind::FallbackExit => s.fallback_exits += 1,
            FaultKind::Inject | FaultKind::MessageLost | FaultKind::MessageDuplicated => {}
        }
    }
}

/// An action the tick decided on; executed after the state borrow is
/// released because each one re-enters the observer.
enum Act {
    Miss { node: String, info: String },
    Restart { node: String },
    LocEnter { primary: String, handle: Rc<RefCell<FallbackLocalizer>> },
    LocExit { primary: String, handle: Rc<RefCell<FallbackLocalizer>> },
    DetEnter { node: String, info: String, handle: Rc<RefCell<VisionDetectionNode>> },
    DetExit { node: String, info: String, handle: Rc<RefCell<VisionDetectionNode>> },
}

/// The supervision control loop. See the module docs for the protocol.
pub struct Supervisor {
    state: Rc<RefCell<SupervisorState>>,
}

impl Supervisor {
    /// Creates a supervisor watching the named nodes (typically every
    /// node the fault plan targets).
    pub fn new(policy: SupervisionPolicy, watched: &[&str]) -> Supervisor {
        Supervisor {
            state: Rc::new(RefCell::new(SupervisorState {
                policy,
                watched: watched.iter().map(|n| WatchState::new(n)).collect(),
                crashes: 0,
                heartbeat_misses: 0,
                restarts: 0,
                fallback_enters: 0,
                fallback_exits: 0,
                recovery_latencies_s: Vec::new(),
                degraded_s: 0.0,
                loc_fallback: None,
                loc_fallback_active: false,
                detector: None,
            })),
        }
    }

    /// The observer to fan bus events into.
    pub fn observer(&self) -> Rc<RefCell<dyn BusObserver>> {
        Rc::new(RefCell::new(SupervisorObserver { state: Rc::clone(&self.state) }))
    }

    /// Arms the localization fallback: while `primary` is in an outage,
    /// `handle` is activated and keeps the pose stream alive.
    pub fn set_localization_fallback(&self, primary: &str, handle: Rc<RefCell<FallbackLocalizer>>) {
        let mut s = self.state.borrow_mut();
        s.loc_fallback = Some((primary.to_string(), handle));
    }

    /// Arms the detector fallback: after `node` restarts, it runs
    /// `cheap` for the policy's warmup window, then reverts to `primary`.
    pub fn set_detector_fallback(
        &self,
        node: &str,
        handle: Rc<RefCell<VisionDetectionNode>>,
        primary: (DetectorKind, VisionCost),
        cheap: (DetectorKind, VisionCost),
    ) {
        let mut s = self.state.borrow_mut();
        s.detector = Some(DetectorFallback {
            node: node.to_string(),
            handle,
            primary,
            cheap,
            pending: false,
            active_since: None,
            revert_at: None,
        });
    }

    /// One liveness check: detect silent nodes, issue due restarts, and
    /// drive the fallbacks. Runs on the heartbeat cadence.
    pub fn tick(&self, bus: &Bus<Msg>, now: SimTime) {
        let mut acts: Vec<Act> = Vec::new();
        {
            let mut s = self.state.borrow_mut();
            let policy = s.policy.clone();
            let mut finished: Vec<f64> = Vec::new();
            for w in &mut s.watched {
                // Recovery completes at the node's first callback after a
                // restart; latency spans the whole outage (crash →
                // detection → backoff → restart → first output).
                if let (Some(restarted), Some(seen)) = (w.restarted_at, w.last_seen) {
                    if seen > restarted {
                        if let Some(from) = w.recover_from.take() {
                            finished.push(seen.saturating_since(from).as_secs_f64());
                        }
                        w.restarted_at = None;
                        w.attempts = 0;
                        w.miss_reported = false;
                    }
                }
                let silence =
                    now.saturating_since(w.last_seen.unwrap_or(SimTime::ZERO)).as_secs_f64();
                if silence < policy.liveness_timeout_s {
                    w.miss_reported = false;
                } else if !w.miss_reported {
                    w.miss_reported = true;
                    acts.push(Act::Miss {
                        node: w.name.clone(),
                        info: format!("silent_for={silence:.2}s"),
                    });
                    if w.down_since.is_some() && policy.restarts_enabled && w.restart_at.is_none() {
                        let backoff = policy.backoff_s(w.attempts);
                        w.restart_at = Some(now + SimDuration::from_secs_f64(backoff));
                    }
                }
                if let Some(at) = w.restart_at {
                    if w.down_since.is_some() && now >= at {
                        w.restart_at = None;
                        acts.push(Act::Restart { node: w.name.clone() });
                    }
                }
            }
            s.degraded_s += finished.iter().sum::<f64>();
            s.recovery_latencies_s.extend(finished);

            // Localization fallback tracks the primary's outage window.
            if policy.restarts_enabled {
                if let Some((primary, handle)) = &s.loc_fallback {
                    let in_outage = s
                        .watched
                        .iter()
                        .find(|w| w.name == *primary)
                        .is_some_and(|w| w.recover_from.is_some());
                    if in_outage && !s.loc_fallback_active {
                        acts.push(Act::LocEnter {
                            primary: primary.clone(),
                            handle: Rc::clone(handle),
                        });
                    } else if !in_outage && s.loc_fallback_active {
                        acts.push(Act::LocExit {
                            primary: primary.clone(),
                            handle: Rc::clone(handle),
                        });
                    }
                }
                for act in &acts {
                    match act {
                        Act::LocEnter { .. } => s.loc_fallback_active = true,
                        Act::LocExit { .. } => s.loc_fallback_active = false,
                        _ => {}
                    }
                }
            }

            // Detector fallback: enter on restart, revert after warmup.
            if policy.restarts_enabled {
                if let Some(det) = &mut s.detector {
                    if det.pending {
                        det.pending = false;
                        det.active_since = Some(now);
                        det.revert_at = Some(
                            now + SimDuration::from_secs_f64(policy.detector_fallback_warmup_s),
                        );
                        acts.push(Act::DetEnter {
                            node: det.node.clone(),
                            info: format!("detector={}", det.cheap.0.name()),
                            handle: Rc::clone(&det.handle),
                        });
                    } else if det.revert_at.is_some_and(|at| now >= at) {
                        det.revert_at = None;
                        acts.push(Act::DetExit {
                            node: det.node.clone(),
                            info: format!("detector={}", det.primary.0.name()),
                            handle: Rc::clone(&det.handle),
                        });
                    }
                }
            }
        }

        for act in &acts {
            match act {
                Act::Miss { node, info } => bus.emit_fault(FaultKind::HeartbeatMiss, node, info),
                Act::Restart { node } => bus.restart_node(node),
                Act::LocEnter { primary, handle } => {
                    handle.borrow_mut().set_active(true);
                    bus.emit_fault(
                        FaultKind::FallbackEnter,
                        primary,
                        topics::nodes::FALLBACK_LOCALIZER,
                    );
                }
                Act::LocExit { primary, handle } => {
                    handle.borrow_mut().set_active(false);
                    bus.emit_fault(
                        FaultKind::FallbackExit,
                        primary,
                        topics::nodes::FALLBACK_LOCALIZER,
                    );
                }
                Act::DetEnter { node, info, handle } => {
                    let (kind, cost) = {
                        let s = self.state.borrow();
                        let det = s.detector.as_ref().expect("detector fallback armed");
                        (det.cheap.0, det.cheap.1.clone())
                    };
                    handle.borrow_mut().set_kind(kind, cost);
                    bus.emit_fault(FaultKind::FallbackEnter, node, info);
                }
                Act::DetExit { node, info, handle } => {
                    let (kind, cost) = {
                        let mut s = self.state.borrow_mut();
                        let det = s.detector.as_mut().expect("detector fallback armed");
                        // Close the degraded window at the revert time.
                        let closed = det.active_since.take();
                        if let Some(since) = closed {
                            s.degraded_s += now.saturating_since(since).as_secs_f64();
                        }
                        let det = s.detector.as_ref().expect("detector fallback armed");
                        (det.primary.0, det.primary.1.clone())
                    };
                    handle.borrow_mut().set_kind(kind, cost);
                    bus.emit_fault(FaultKind::FallbackExit, node, info);
                }
            }
        }
    }

    /// Serializes the supervisor's dynamic bookkeeping for a checkpoint.
    /// The policy, watch list and fallback wiring are configuration and
    /// are rebuilt from the run config on resume.
    pub fn save_state(&self, w: &mut av_des::SnapWriter) {
        let s = self.state.borrow();
        w.put_tag("supervisor");
        w.put_usize(s.watched.len());
        for watch in &s.watched {
            w.put_str(&watch.name);
            crate::snapshot::put_opt_time(w, watch.last_seen);
            crate::snapshot::put_opt_time(w, watch.down_since);
            crate::snapshot::put_opt_time(w, watch.restart_at);
            crate::snapshot::put_opt_time(w, watch.restarted_at);
            crate::snapshot::put_opt_time(w, watch.recover_from);
            w.put_u32(watch.attempts);
            w.put_bool(watch.miss_reported);
        }
        w.put_u64(s.crashes);
        w.put_u64(s.heartbeat_misses);
        w.put_u64(s.restarts);
        w.put_u64(s.fallback_enters);
        w.put_u64(s.fallback_exits);
        w.put_usize(s.recovery_latencies_s.len());
        for &v in &s.recovery_latencies_s {
            w.put_f64(v);
        }
        w.put_f64(s.degraded_s);
        w.put_bool(s.loc_fallback_active);
        match &s.detector {
            Some(det) => {
                w.put_bool(true);
                w.put_bool(det.pending);
                crate::snapshot::put_opt_time(w, det.active_since);
                crate::snapshot::put_opt_time(w, det.revert_at);
            }
            None => w.put_bool(false),
        }
    }

    /// Restores the bookkeeping written by [`Supervisor::save_state`]
    /// onto a freshly built supervisor with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's watch list or fallback wiring does
    /// not match this supervisor's configuration.
    pub fn load_state(&self, r: &mut av_des::SnapReader<'_>) {
        let mut s = self.state.borrow_mut();
        r.expect_tag("supervisor");
        let n = r.get_usize();
        assert_eq!(n, s.watched.len(), "checkpoint watch-list size mismatch");
        for watch in &mut s.watched {
            let name = r.get_str();
            assert_eq!(name, watch.name, "checkpoint watch-list order mismatch");
            watch.last_seen = crate::snapshot::get_opt_time(r);
            watch.down_since = crate::snapshot::get_opt_time(r);
            watch.restart_at = crate::snapshot::get_opt_time(r);
            watch.restarted_at = crate::snapshot::get_opt_time(r);
            watch.recover_from = crate::snapshot::get_opt_time(r);
            watch.attempts = r.get_u32();
            watch.miss_reported = r.get_bool();
        }
        s.crashes = r.get_u64();
        s.heartbeat_misses = r.get_u64();
        s.restarts = r.get_u64();
        s.fallback_enters = r.get_u64();
        s.fallback_exits = r.get_u64();
        s.recovery_latencies_s = (0..r.get_usize()).map(|_| r.get_f64()).collect();
        s.degraded_s = r.get_f64();
        s.loc_fallback_active = r.get_bool();
        let has_detector = r.get_bool();
        assert_eq!(
            has_detector,
            s.detector.is_some(),
            "checkpoint detector-fallback wiring mismatch"
        );
        if let Some(det) = &mut s.detector {
            det.pending = r.get_bool();
            det.active_since = crate::snapshot::get_opt_time(r);
            det.revert_at = crate::snapshot::get_opt_time(r);
        }
    }

    /// Folds the supervisor's bookkeeping into the per-run report.
    /// Open outage / fallback episodes are censored at `end`.
    pub fn report(&self, end: SimTime, lost: u64, duplicated: u64) -> FaultReport {
        let s = self.state.borrow();
        let mut degraded = s.degraded_s;
        let mut latencies = s.recovery_latencies_s.clone();
        for w in &s.watched {
            if let Some(from) = w.recover_from {
                let open = end.saturating_since(from).as_secs_f64();
                degraded += open;
                latencies.push(open);
            }
        }
        if let Some(det) = &s.detector {
            if let Some(since) = det.active_since {
                degraded += end.saturating_since(since).as_secs_f64();
            }
        }
        let worst = latencies.iter().fold(0.0f64, |a, &b| a.max(b));
        FaultReport {
            crashes: s.crashes,
            heartbeat_misses: s.heartbeat_misses,
            restarts: s.restarts,
            fallback_enters: s.fallback_enters,
            fallback_exits: s.fallback_exits,
            messages_lost: lost,
            messages_duplicated: duplicated,
            time_degraded_s: degraded,
            recovery_latency_ms: worst * 1000.0,
        }
    }
}

/// Dead-reckoning pose source: the localization fallback. It listens to
/// IMU and GNSS continuously (so its state is warm when activated) but
/// publishes `/ndt_pose` only while active — a clean run never sees a
/// message from it.
pub struct FallbackLocalizer {
    active: bool,
    pose: Pose,
    speed: f64,
    yaw_rate: f64,
    last_imu_stamp: Option<SimTime>,
    last_gnss: Option<Vec3>,
    imu_count: u64,
    // Lineage of the last GNSS fix absorbed into the dead-reckoned pose,
    // merged into every published fallback pose so blame chains stay
    // anchored to real acquisitions across a fault window.
    reseed_lineage: Lineage,
    cost: NodeCost,
    rng: StreamRng,
}

/// Publish one dead-reckoned pose per this many IMU samples (100 Hz IMU
/// → 10 Hz pose stream, matching the primary's LiDAR-rate cadence).
const IMU_PUBLISH_DIVIDER: u64 = 10;

impl FallbackLocalizer {
    /// Creates the fallback seeded with the route's initial pose guess.
    pub fn new(initial_guess: Pose, calib: &Calibration, rng: StreamRng) -> FallbackLocalizer {
        FallbackLocalizer {
            active: false,
            pose: initial_guess,
            speed: 0.0,
            yaw_rate: 0.0,
            last_imu_stamp: None,
            last_gnss: None,
            imu_count: 0,
            reseed_lineage: Lineage::empty(),
            cost: calib.auxiliary.clone(),
            rng,
        }
    }

    /// The current dead-reckoned pose.
    pub fn pose(&self) -> Pose {
        self.pose
    }

    /// Whether the fallback is publishing.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Engages / disengages publishing (driven by the supervisor).
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }
}

impl Node<Msg> for FallbackLocalizer {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        w.put_bool(self.active);
        crate::snapshot::put_pose(w, &self.pose);
        w.put_f64(self.speed);
        w.put_f64(self.yaw_rate);
        crate::snapshot::put_opt_time(w, self.last_imu_stamp);
        crate::snapshot::put_opt_vec3(w, self.last_gnss);
        w.put_u64(self.imu_count);
        crate::snapshot::put_lineage(w, &self.reseed_lineage);
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.active = r.get_bool();
        self.pose = crate::snapshot::get_pose(r);
        self.speed = r.get_f64();
        self.yaw_rate = r.get_f64();
        self.last_imu_stamp = crate::snapshot::get_opt_time(r);
        self.last_gnss = crate::snapshot::get_opt_vec3(r);
        self.imu_count = r.get_u64();
        self.reseed_lineage = crate::snapshot::get_lineage(r);
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Imu(imu) => {
                // Midpoint-yaw dead reckoning, the same kinematic model
                // the primary uses between scan matches.
                if let Some(last) = self.last_imu_stamp {
                    let dt = msg.header.stamp.saturating_since(last).as_secs_f64();
                    let yaw = self.pose.yaw() + self.yaw_rate * dt * 0.5;
                    let delta = Vec3::new(yaw.cos(), yaw.sin(), 0.0) * (self.speed * dt);
                    self.pose = Pose::planar(
                        self.pose.translation.x + delta.x,
                        self.pose.translation.y + delta.y,
                        self.pose.yaw() + self.yaw_rate * dt,
                    );
                }
                self.last_imu_stamp = Some(msg.header.stamp);
                self.speed = imu.speed;
                self.yaw_rate = imu.yaw_rate;
                self.imu_count += 1;
                if self.active && self.imu_count.is_multiple_of(IMU_PUBLISH_DIVIDER) {
                    // The dead-reckoned pose derives from the triggering
                    // IMU sample *and* the last GNSS reseed.
                    let lineage = out.default_lineage().merged(&self.reseed_lineage);
                    out.publish_with_lineage(
                        topics::NDT_POSE,
                        Msg::Pose(PoseEstimate { pose: self.pose, fitness: 0.0, iterations: 0 }),
                        lineage,
                    );
                }
                Execution::cpu(self.cost.demand(0.0, &mut self.rng), self.cost.mem_intensity)
            }
            Msg::Gnss(fix) => {
                // Meter-level reseed; two consecutive fixes far enough
                // apart also give a heading (the GNSS initial-pose
                // recipe the primary uses).
                let yaw = match self.last_gnss {
                    Some(prev) => {
                        let delta = fix.position - prev;
                        if delta.norm_xy() > 3.0 {
                            delta.y.atan2(delta.x)
                        } else {
                            self.pose.yaw()
                        }
                    }
                    None => self.pose.yaw(),
                };
                self.pose = Pose::planar(fix.position.x, fix.position.y, yaw);
                self.last_gnss = Some(fix.position);
                self.reseed_lineage = msg.header.lineage.clone();
                Execution::cpu(self.cost.demand(0.0, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::FALLBACK_LOCALIZER, topic, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::{RngStreams, Sim};
    use av_platform::{CpuConfig, GpuConfig, Platform};
    use av_ros::{Header, Lineage, Source, SubscriptionSpec};
    use av_world::{GnssFix, ImuSample};

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = SupervisionPolicy::default();
        assert_eq!(policy.backoff_s(0), 0.5);
        assert_eq!(policy.backoff_s(1), 1.0);
        assert_eq!(policy.backoff_s(2), 2.0);
        assert_eq!(policy.backoff_s(10), 8.0, "capped at restart_max_backoff_s");
        policy.validate().expect("defaults validate");
    }

    #[test]
    fn policy_validation_rejects_bad_knobs() {
        let bad = SupervisionPolicy { liveness_timeout_s: 0.0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = SupervisionPolicy { restart_backoff_factor: 0.5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = SupervisionPolicy {
            restart_max_backoff_s: 0.1,
            restart_initial_backoff_s: 0.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = SupervisionPolicy { heartbeat_interval_s: f64::NAN, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    fn message(payload: Msg, source: Source, stamp: SimTime) -> Message<Msg> {
        Message::new(Header { seq: 1, stamp, lineage: Lineage::origin(source, stamp) }, payload)
    }

    #[test]
    fn fallback_localizer_dead_reckons_and_publishes_only_when_active() {
        let calib = Calibration::default();
        let mut node =
            FallbackLocalizer::new(Pose::IDENTITY, &calib, RngStreams::new(1).stream("fl"));
        // Warm up: a first IMU sample sets speed/heading state.
        let imu = |speed: f64, ms: u64| {
            message(
                Msg::Imu(ImuSample { linear_accel: Vec3::ZERO, yaw_rate: 0.0, speed }),
                Source::Imu,
                SimTime::from_millis(ms),
            )
        };
        let mut out = Outbox::new(Lineage::empty());
        for i in 0..20 {
            node.on_message(topics::IMU_RAW, &imu(10.0, 10 * i), &mut out);
        }
        assert!(out.is_empty(), "inactive fallback must stay silent");
        // 190 ms at 10 m/s (after the first warm-up sample) ≈ 1.9 m.
        assert!((node.pose().translation.x - 1.9).abs() < 1e-9);

        node.set_active(true);
        let mut out = Outbox::new(Lineage::empty());
        for i in 20..40 {
            node.on_message(topics::IMU_RAW, &imu(10.0, 10 * i), &mut out);
        }
        assert_eq!(out.len(), 2, "active fallback publishes 1-in-{IMU_PUBLISH_DIVIDER}");
        let items = out.into_items();
        assert_eq!(items[0].0, topics::NDT_POSE);
    }

    #[test]
    fn fallback_localizer_reseeds_from_gnss_with_heading() {
        let calib = Calibration::default();
        let mut node =
            FallbackLocalizer::new(Pose::IDENTITY, &calib, RngStreams::new(1).stream("fl2"));
        let fix = |x: f64, y: f64, ms: u64| {
            message(
                Msg::Gnss(GnssFix { position: Vec3::new(x, y, 0.0), accuracy: 1.0 }),
                Source::Gnss,
                SimTime::from_millis(ms),
            )
        };
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(topics::GNSS_POSE, &fix(100.0, 50.0, 100), &mut out);
        assert!((node.pose().translation.x - 100.0).abs() < 1e-9);
        assert!(node.pose().yaw().abs() < 1e-9, "single fix keeps prior heading");
        node.on_message(topics::GNSS_POSE, &fix(100.0, 60.0, 1100), &mut out);
        assert!(
            (node.pose().yaw() - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
            "two fixes 10 m apart give a heading"
        );
        assert!(out.is_empty(), "GNSS handling publishes nothing");
    }

    /// A minimal node so the supervisor has something to watch on a real
    /// bus: echoes input after a fixed CPU burst.
    struct Echo;
    impl Node<Msg> for Echo {
        fn on_message(&mut self, _t: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
            let Msg::Imu(_) = &*msg.payload else { panic!("echo expects imu") };
            let _ = out;
            Execution::cpu(SimDuration::from_millis(1), 0.0)
        }
    }

    fn test_bus(sim: &Sim) -> Bus<Msg> {
        let platform = Platform::new(
            sim,
            CpuConfig {
                cores: 4,
                dispatch_overhead: SimDuration::ZERO,
                mem_bandwidth: 1.0,
                contention_exponent: 1.0,
            },
            GpuConfig { copy_bandwidth: 1e12, launch_overhead: SimDuration::ZERO },
        );
        Bus::new(sim, &platform)
    }

    #[test]
    fn supervisor_detects_crash_restarts_and_reports_recovery() {
        let sim = Sim::new();
        let bus = test_bus(&sim);
        bus.add_node("echo", Echo, &[SubscriptionSpec::new("in", 4)]);

        let supervisor = Supervisor::new(SupervisionPolicy::default(), &["echo"]);
        bus.set_shared_observer(supervisor.observer());

        // 100 Hz input keeps the heartbeat alive.
        for i in 0..1000u64 {
            let t = SimTime::from_millis(10 * i);
            let bus = bus.clone();
            sim.schedule_at(t, move || {
                bus.publish(
                    "in",
                    Msg::Imu(ImuSample { linear_accel: Vec3::ZERO, yaw_rate: 0.0, speed: 0.0 }),
                    Lineage::origin(Source::Imu, t),
                );
            });
        }
        // Crash at 2 s; supervisor ticks at 4 Hz.
        {
            let bus = bus.clone();
            sim.schedule_at(SimTime::from_millis(2000), move || bus.crash_node("echo"));
        }
        for i in 0..40u64 {
            let t = SimTime::from_millis(250 * i);
            let bus = bus.clone();
            let sup = Supervisor { state: Rc::clone(&supervisor.state) };
            sim.schedule_at(t, move || sup.tick(&bus, t));
        }
        sim.run();

        let report = supervisor.report(SimTime::from_millis(10_000), bus.fault_lost_count(), 0);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.restarts, 1, "one restart recovers the echo node");
        assert!(report.heartbeat_misses >= 1);
        assert!(report.messages_lost > 0, "input arriving while down is lost");
        // Recovery = detection (~1-1.25 s) + backoff (0.5 s) + first
        // callback; well under 2.5 s, and degraded time matches it.
        assert!(
            report.recovery_latency_ms > 1000.0 && report.recovery_latency_ms < 2500.0,
            "recovery latency {} ms",
            report.recovery_latency_ms
        );
        assert!((report.time_degraded_s - report.recovery_latency_ms / 1000.0).abs() < 1e-9);
        assert!(!bus.is_down("echo"));
    }

    #[test]
    fn disabled_restarts_leave_the_node_down() {
        let sim = Sim::new();
        let bus = test_bus(&sim);
        bus.add_node("echo", Echo, &[SubscriptionSpec::new("in", 4)]);
        let policy = SupervisionPolicy { restarts_enabled: false, ..Default::default() };
        let supervisor = Supervisor::new(policy, &["echo"]);
        bus.set_shared_observer(supervisor.observer());
        {
            let bus = bus.clone();
            sim.schedule_at(SimTime::from_millis(1000), move || bus.crash_node("echo"));
        }
        for i in 0..20u64 {
            let t = SimTime::from_millis(250 * i);
            let bus = bus.clone();
            let sup = Supervisor { state: Rc::clone(&supervisor.state) };
            sim.schedule_at(t, move || sup.tick(&bus, t));
        }
        sim.run();
        let report = supervisor.report(SimTime::from_millis(5000), bus.fault_lost_count(), 0);
        assert_eq!(report.restarts, 0);
        assert!(bus.is_down("echo"), "no supervisor restart when disabled");
        assert!(report.recovery_latency_ms > 0.0, "open outage censored at run end");
    }
}
