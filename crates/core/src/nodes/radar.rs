//! Radar detection — the sensor interface the paper's Autoware had
//! "under development" (§II-A), implemented as an extension.
//!
//! Radar returns carry range, bearing and Doppler range-rate but no
//! shape or class. The node converts each return into an unclassified
//! [`DetectedObject`] in the map frame (sized by its radar cross-section)
//! and publishes it as an additional measurement stream for the tracker's
//! probabilistic data association.

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, Msg};
use crate::topics;
use av_des::StreamRng;
use av_geom::{Pose, Vec3};
use av_perception::DetectedObject;
use av_ros::{Execution, Message, Node, Outbox};

/// The `radar_detection` node.
pub struct RadarDetectionNode {
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    cached_pose: Option<Pose>,
}

impl RadarDetectionNode {
    /// Creates the node.
    pub fn new(calib: &Calibration, rng: StreamRng) -> RadarDetectionNode {
        RadarDetectionNode {
            cost: calib.radar_detection.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            cached_pose: None,
        }
    }
}

impl Node<Msg> for RadarDetectionNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Radar(scan) => {
                let pose = self.cached_pose.unwrap_or(Pose::IDENTITY);
                let objects: Vec<DetectedObject> = scan
                    .targets
                    .iter()
                    .map(|t| {
                        let body =
                            Vec3::new(t.range * t.bearing.cos(), t.range * t.bearing.sin(), 0.0);
                        // RCS-informed size guess: big cross-section → car-ish.
                        let half = if t.rcs > 5.0 {
                            Vec3::new(2.2, 0.9, 0.75)
                        } else {
                            Vec3::new(0.4, 0.4, 0.85)
                        };
                        DetectedObject::from_cluster(pose.transform_point(body), half, 1)
                    })
                    .collect();
                let units = objects.len() as f64;
                out.publish(topics::RADAR_DETECTOR_OBJECTS, Msg::DetectedObjects(objects));
                Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::RADAR_DETECTION, topic, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PoseEstimate;
    use av_des::{RngStreams, SimTime};
    use av_ros::{Header, Lineage, Source};
    use av_world::{RadarScan, RadarTarget};

    fn message(payload: Msg) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(50),
                lineage: Lineage::origin(Source::Radar, SimTime::from_millis(50)),
            },
            payload,
        )
    }

    #[test]
    fn targets_become_map_frame_objects() {
        let calib = Calibration::default();
        let mut node = RadarDetectionNode::new(&calib, RngStreams::new(1).stream("r"));
        node.on_message(
            topics::NDT_POSE,
            &message(Msg::Pose(PoseEstimate {
                pose: Pose::planar(50.0, 10.0, 0.0),
                fitness: 1.0,
                iterations: 4,
            })),
            &mut Outbox::new(Lineage::empty()),
        );
        let scan = RadarScan {
            targets: vec![
                RadarTarget { range: 100.0, bearing: 0.0, range_rate: -8.0, rcs: 10.0 },
                RadarTarget { range: 30.0, bearing: 0.2, range_rate: 1.0, rcs: 0.8 },
            ],
        };
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(topics::RADAR_RAW, &message(Msg::Radar(scan)), &mut out);
        let items = out.into_items();
        assert_eq!(items[0].0, topics::RADAR_DETECTOR_OBJECTS);
        let Msg::DetectedObjects(objs) = &items[0].1 else { panic!() };
        assert_eq!(objs.len(), 2);
        // First target: 100 m dead ahead of (50, 10) → (150, 10).
        assert!((objs[0].position.x - 150.0).abs() < 1e-9);
        assert!((objs[0].position.y - 10.0).abs() < 1e-9);
        // RCS sizing.
        assert!(objs[0].half_extents.x > objs[1].half_extents.x);
    }

    #[test]
    fn empty_scan_publishes_empty() {
        let calib = Calibration::default();
        let mut node = RadarDetectionNode::new(&calib, RngStreams::new(1).stream("r2"));
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(topics::RADAR_RAW, &message(Msg::Radar(RadarScan::default())), &mut out);
        let items = out.into_items();
        let Msg::DetectedObjects(objs) = &items[0].1 else { panic!() };
        assert!(objs.is_empty());
    }
}
