//! The LiDAR pipeline nodes: voxel filter, NDT localization, ground
//! filter, clustering.

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, Msg, PoseEstimate};
use crate::topics;
use av_des::{SimTime, StreamRng};
use av_geom::Pose;
use av_perception::{
    ClusterParams, EuclideanCluster, NdtMatcher, NdtParams, RayGroundFilter, RayGroundParams,
};
use av_pointcloud::{NdtGrid, VoxelGrid};
use av_ros::{Execution, Lineage, Message, Node, Outbox};

/// `voxel_grid_filter`: down-samples `/points_raw` for localization.
pub struct VoxelGridFilterNode {
    filter: VoxelGrid,
    cost: NodeCost,
    rng: StreamRng,
}

impl VoxelGridFilterNode {
    /// Creates the node with the given leaf size.
    pub fn new(leaf_size: f64, calib: &Calibration, rng: StreamRng) -> VoxelGridFilterNode {
        VoxelGridFilterNode {
            filter: VoxelGrid::new(leaf_size),
            cost: calib.voxel_grid_filter.clone(),
            rng,
        }
    }
}

impl Node<Msg> for VoxelGridFilterNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::PointCloud(cloud) = &*msg.payload else {
            unexpected(topics::nodes::VOXEL_GRID_FILTER, topic, &msg.payload)
        };
        let filtered = self.filter.filter(cloud);
        let units = cloud.len() as f64 / 1000.0;
        out.publish(topics::FILTERED_POINTS, Msg::PointCloud(filtered));
        Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
    }
}

/// `ndt_matching`: localizes against the HD map's NDT grid, seeded by the
/// previous pose advanced with the latest IMU motion (and by GNSS before
/// the first convergence).
pub struct NdtMatchingNode {
    matcher: NdtMatcher,
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    pose: Pose,
    localized: bool,
    consecutive_rejects: u32,
    last_match_stamp: Option<SimTime>,
    speed: f64,
    yaw_rate: f64,
    sensor_height: f64,
    last_gnss: Option<av_geom::Vec3>,
    last_accept_stamp: Option<SimTime>,
    awaiting_seed: bool,
    // Lineage of the GNSS fix currently seeding the pose. Merged into
    // published poses until the first accepted scan match, so the
    // post-restart reseed handshake stays visible in blame chains.
    seed_lineage: Lineage,
}

impl NdtMatchingNode {
    /// Creates the node around a map grid and an initial pose guess.
    pub fn new(
        map: NdtGrid,
        initial_guess: Pose,
        sensor_height: f64,
        calib: &Calibration,
        rng: StreamRng,
    ) -> NdtMatchingNode {
        NdtMatchingNode {
            matcher: NdtMatcher::new(map, NdtParams::default()),
            cost: calib.ndt_matching.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            pose: initial_guess,
            localized: false,
            consecutive_rejects: 0,
            last_match_stamp: None,
            speed: 0.0,
            yaw_rate: 0.0,
            sensor_height,
            last_gnss: None,
            last_accept_stamp: None,
            awaiting_seed: false,
            seed_lineage: Lineage::empty(),
        }
    }

    /// The latest pose estimate.
    pub fn pose(&self) -> Pose {
        self.pose
    }

    /// Whether the filter currently holds an accepted scan match (false
    /// before the first convergence and after a losing streak).
    pub fn is_localized(&self) -> bool {
        self.localized
    }

    fn predicted_guess(&self, stamp: SimTime) -> Pose {
        let dt = match self.last_match_stamp {
            Some(last) => stamp.saturating_since(last).as_secs_f64(),
            None => return self.pose,
        };
        // Dead-reckon with the IMU-observed motion (the paper: "the IMU
        // may be used to anticipate where the subsequent positions are
        // likely to be").
        let yaw = self.pose.yaw() + self.yaw_rate * dt * 0.5;
        let delta = av_geom::Vec3::new(yaw.cos(), yaw.sin(), 0.0) * (self.speed * dt);
        Pose::planar(
            self.pose.translation.x + delta.x,
            self.pose.translation.y + delta.y,
            self.pose.yaw() + self.yaw_rate * dt,
        )
    }
}

impl Node<Msg> for NdtMatchingNode {
    /// A relaunched `ndt_matching` has lost its scan-to-scan state: it
    /// keeps only the static map and the last published pose (the launch
    /// file's `initial_pose`), and must re-converge — reseeded by GNSS —
    /// before it reports itself localized again.
    fn on_restart(&mut self) {
        self.localized = false;
        self.consecutive_rejects = 0;
        self.last_match_stamp = None;
        self.last_accept_stamp = None;
        self.last_gnss = None;
        self.speed = 0.0;
        self.yaw_rate = 0.0;
        // Like the real node after a relaunch: do not scan-match until a
        // fresh pose seed arrives. The crash-time pose is stale (the
        // vehicle kept moving), and matching from it can lock onto a
        // false local optimum that then shuts out the GNSS reseed.
        self.awaiting_seed = true;
    }

    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        crate::snapshot::put_pose(w, &self.pose);
        w.put_bool(self.localized);
        w.put_u32(self.consecutive_rejects);
        crate::snapshot::put_opt_time(w, self.last_match_stamp);
        w.put_f64(self.speed);
        w.put_f64(self.yaw_rate);
        crate::snapshot::put_opt_vec3(w, self.last_gnss);
        crate::snapshot::put_opt_time(w, self.last_accept_stamp);
        w.put_bool(self.awaiting_seed);
        crate::snapshot::put_lineage(w, &self.seed_lineage);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.pose = crate::snapshot::get_pose(r);
        self.localized = r.get_bool();
        self.consecutive_rejects = r.get_u32();
        self.last_match_stamp = crate::snapshot::get_opt_time(r);
        self.speed = r.get_f64();
        self.yaw_rate = r.get_f64();
        self.last_gnss = crate::snapshot::get_opt_vec3(r);
        self.last_accept_stamp = crate::snapshot::get_opt_time(r);
        self.awaiting_seed = r.get_bool();
        self.seed_lineage = crate::snapshot::get_lineage(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Imu(imu) => {
                self.speed = imu.speed;
                self.yaw_rate = imu.yaw_rate;
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Gnss(fix) => {
                if !self.localized {
                    // Meter-level position seed; when moving, two
                    // consecutive fixes also give a heading seed (the
                    // standard GNSS initial-pose recipe).
                    let yaw = match self.last_gnss {
                        Some(prev) => {
                            let delta = fix.position - prev;
                            if delta.norm_xy() > 3.0 {
                                delta.y.atan2(delta.x)
                            } else {
                                self.pose.yaw()
                            }
                        }
                        None => self.pose.yaw(),
                    };
                    self.pose = Pose::planar(fix.position.x, fix.position.y, yaw);
                    self.seed_lineage = msg.header.lineage.clone();
                }
                self.last_gnss = Some(fix.position);
                self.awaiting_seed = false;
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::PointCloud(filtered) => {
                if self.awaiting_seed {
                    // No pose seed yet after the relaunch: the real node
                    // publishes nothing until /initialpose or a GNSS fix
                    // arrives, so drop the scan on the floor (cheap).
                    return Execution::cpu(
                        self.aux.demand(0.0, &mut self.rng),
                        self.aux.mem_intensity,
                    );
                }
                // The sweep is in the sensor frame; the map was built with
                // the sensor's mounting height, so lift the scan onto the
                // same z before the planar alignment.
                let lifted = filtered.transformed(&Pose::new(
                    av_geom::Vec3::new(0.0, 0.0, self.sensor_height),
                    av_geom::Quat::IDENTITY,
                ));
                let guess = self.predicted_guess(msg.header.stamp);
                let result = self.matcher.align(&lifted, &guess);
                // Accept solid matches near the motion prediction; a weak
                // or jumping match is rejected (coast on dead reckoning),
                // and a streak of rejections declares the filter lost so
                // the next GNSS fix can reseed it — standard ndt_matching
                // failure handling. The acceptance gate widens with the
                // time spent coasting: after a sensor gap the dead-
                // reckoned prediction has drifted, and the first good
                // match back may legitimately sit meters away.
                let jump = result.pose.translation.distance(guess.translation);
                let coast_s = self
                    .last_accept_stamp
                    .map(|t| msg.header.stamp.saturating_since(t).as_secs_f64())
                    .unwrap_or(10.0);
                let gate = 3.0 + 6.0 * coast_s.min(10.0);
                if result.matched_points > 100 && result.fitness > 0.15 && jump < gate {
                    self.pose = result.pose;
                    self.localized = true;
                    self.consecutive_rejects = 0;
                    self.last_accept_stamp = Some(msg.header.stamp);
                } else {
                    self.pose = guess;
                    self.consecutive_rejects += 1;
                    if self.consecutive_rejects > 10 {
                        self.localized = false;
                    }
                }
                let accepted_now = self.consecutive_rejects == 0 && self.localized;
                self.last_match_stamp = Some(msg.header.stamp);
                let payload = Msg::Pose(PoseEstimate {
                    pose: self.pose,
                    fitness: result.fitness,
                    iterations: result.iterations,
                });
                if self.seed_lineage.is_empty() {
                    out.publish(topics::NDT_POSE, payload);
                } else {
                    // While converging from a GNSS seed the pose still
                    // derives from that fix: keep its ancestry on the
                    // published estimate (and drop it once a scan match is
                    // accepted — from then on the pose is map-matched).
                    let lineage = out.default_lineage().merged(&self.seed_lineage);
                    out.publish_with_lineage(topics::NDT_POSE, payload, lineage);
                    if accepted_now {
                        self.seed_lineage = Lineage::empty();
                    }
                }
                let units = result.iterations as f64;
                Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::NDT_MATCHING, topic, other),
        }
    }
}

/// `ray_ground_filter`: splits the raw sweep into ground / non-ground.
pub struct RayGroundFilterNode {
    filter: RayGroundFilter,
    cost: NodeCost,
    rng: StreamRng,
}

impl RayGroundFilterNode {
    /// Creates the node.
    pub fn new(
        params: RayGroundParams,
        calib: &Calibration,
        rng: StreamRng,
    ) -> RayGroundFilterNode {
        RayGroundFilterNode {
            filter: RayGroundFilter::new(params),
            cost: calib.ray_ground_filter.clone(),
            rng,
        }
    }
}

impl Node<Msg> for RayGroundFilterNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::PointCloud(cloud) = &*msg.payload else {
            unexpected(topics::nodes::RAY_GROUND_FILTER, topic, &msg.payload)
        };
        let split = self.filter.split(cloud);
        let units = cloud.len() as f64 / 1000.0;
        out.publish(topics::POINTS_GROUND, Msg::PointCloud(split.ground));
        out.publish(topics::POINTS_NO_GROUND, Msg::PointCloud(split.no_ground));
        Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
    }
}

/// `euclidean_cluster`: groups non-ground points into objects. The
/// nearest-neighbour phase is GPU-accelerated in Autoware, giving the node
/// its Table V GPU share; clustering proper and bounding-box extraction
/// stay on the CPU.
pub struct EuclideanClusterNode {
    clusterer: EuclideanCluster,
    cost: NodeCost,
    gpu_kernel: av_des::SimDuration,
    gpu_energy_j: f64,
    rng: StreamRng,
}

impl EuclideanClusterNode {
    /// Creates the node.
    pub fn new(params: ClusterParams, calib: &Calibration, rng: StreamRng) -> EuclideanClusterNode {
        EuclideanClusterNode {
            clusterer: EuclideanCluster::new(params),
            cost: calib.euclidean_cluster.clone(),
            gpu_kernel: calib.cluster_gpu_kernel,
            gpu_energy_j: calib.cluster_gpu_energy_j,
            rng,
        }
    }
}

impl Node<Msg> for EuclideanClusterNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::PointCloud(no_ground) = &*msg.payload else {
            unexpected(topics::nodes::EUCLIDEAN_CLUSTER, topic, &msg.payload)
        };
        let detections = self.clusterer.detect(no_ground);
        let units = no_ground.len() as f64 / 1000.0;
        let copy_bytes = no_ground.byte_size();
        out.publish(topics::LIDAR_DETECTOR_OBJECTS, Msg::DetectedObjects(detections));
        // CPU preparation → GPU neighbour search → CPU extraction.
        let cpu = self.cost.demand(units, &mut self.rng);
        let pre = cpu.mul_f64(0.6);
        let post = cpu.mul_f64(0.4);
        Execution::cpu(pre, self.cost.mem_intensity)
            .then_gpu(self.gpu_kernel, copy_bytes, self.gpu_energy_j)
            .then_cpu(post, self.cost.mem_intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::RngStreams;
    use av_geom::Vec3;
    use av_pointcloud::PointCloud;
    use av_ros::{Header, Lineage, Source};

    fn message(payload: Msg, stamp_ms: u64) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(stamp_ms),
                lineage: Lineage::origin(Source::Lidar, SimTime::from_millis(stamp_ms)),
            },
            payload,
        )
    }

    fn rng(name: &str) -> StreamRng {
        RngStreams::new(1).stream(name)
    }

    #[test]
    fn voxel_node_downsamples_and_publishes() {
        let calib = Calibration::default();
        let mut node = VoxelGridFilterNode::new(1.0, &calib, rng("v"));
        let cloud = PointCloud::from_positions(
            (0..100).map(|i| Vec3::new((i % 10) as f64 * 0.05, (i / 10) as f64 * 0.05, 0.0)),
        );
        let mut out = Outbox::new(Lineage::empty());
        let exec =
            node.on_message(topics::POINTS_RAW, &message(Msg::PointCloud(cloud), 100), &mut out);
        assert_eq!(out.len(), 1);
        assert!(!exec.cpu_demand().is_zero());
        assert!(exec.gpu_demand().is_zero());
    }

    #[test]
    fn ray_ground_node_publishes_both_outputs() {
        let calib = Calibration::default();
        let mut node = RayGroundFilterNode::new(RayGroundParams::default(), &calib, rng("g"));
        let cloud = PointCloud::from_positions(
            (1..40).map(|i| Vec3::new(i as f64, 0.0, -1.9)).chain([Vec3::new(10.0, 0.0, 0.0)]),
        );
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(topics::POINTS_RAW, &message(Msg::PointCloud(cloud), 100), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cluster_node_has_gpu_phase() {
        let calib = Calibration::default();
        let mut node = EuclideanClusterNode::new(ClusterParams::default(), &calib, rng("c"));
        let cloud = PointCloud::from_positions(
            (0..30).map(|i| Vec3::new(5.0 + (i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2, 0.0)),
        );
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::POINTS_NO_GROUND,
            &message(Msg::PointCloud(cloud), 100),
            &mut out,
        );
        assert_eq!(exec.phases.len(), 3);
        assert!(!exec.gpu_demand().is_zero());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ndt_node_localizes_against_map() {
        // Structured map: ground + wall.
        let mut map_pts = PointCloud::new();
        let mut r = rng("map");
        for _ in 0..3000 {
            map_pts.push(av_pointcloud::Point::new(
                r.uniform(0.0, 30.0),
                r.uniform(0.0, 30.0),
                r.normal(0.0, 0.02),
            ));
            map_pts.push(av_pointcloud::Point::new(
                30.0 + r.normal(0.0, 0.02),
                r.uniform(0.0, 30.0),
                r.uniform(0.0, 4.0),
            ));
            map_pts.push(av_pointcloud::Point::new(
                r.uniform(0.0, 30.0),
                30.0 + r.normal(0.0, 0.02),
                r.uniform(0.0, 4.0),
            ));
        }
        let grid = NdtGrid::build(&map_pts, 2.0, 6);
        let calib = Calibration::default();
        let mut node = NdtMatchingNode::new(grid, Pose::IDENTITY, 0.0, &calib, rng("n"));

        // Scan from true pose (0.3, 0.2, 0.02).
        let true_pose = Pose::planar(0.3, 0.2, 0.02);
        let scan = map_pts
            .filtered(|p| p.position.x < 20.0 && p.position.y < 20.0)
            .transformed(&true_pose.inverse());
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::FILTERED_POINTS,
            &message(Msg::PointCloud(scan), 100),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(!exec.cpu_demand().is_zero());
        let err = node.pose().translation.distance(true_pose.translation);
        assert!(err < 0.1, "localization error {err}");
    }

    #[test]
    fn ndt_aux_inputs_are_cheap_and_publish_nothing() {
        let grid = NdtGrid::build(&PointCloud::new(), 2.0, 6);
        let calib = Calibration::default();
        let mut node = NdtMatchingNode::new(grid, Pose::IDENTITY, 0.0, &calib, rng("n2"));
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::IMU_RAW,
            &message(
                Msg::Imu(av_world::ImuSample {
                    linear_accel: Vec3::ZERO,
                    yaw_rate: 0.1,
                    speed: 8.0,
                }),
                100,
            ),
            &mut out,
        );
        assert!(out.is_empty());
        assert!(exec.cpu_demand().as_millis_f64() < 1.0);
        // GNSS before localization moves the guess.
        node.on_message(
            topics::GNSS_POSE,
            &message(
                Msg::Gnss(av_world::GnssFix { position: Vec3::new(5.0, 6.0, 0.0), accuracy: 1.0 }),
                150,
            ),
            &mut Outbox::new(Lineage::empty()),
        );
        assert!((node.pose().translation.x - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unexpected")]
    fn wrong_payload_panics() {
        let calib = Calibration::default();
        let mut node = VoxelGridFilterNode::new(1.0, &calib, rng("x"));
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(
            topics::POINTS_RAW,
            &message(Msg::Twist(av_geom::Twist::ZERO), 0),
            &mut out,
        );
    }
}
