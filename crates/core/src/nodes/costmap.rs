//! The costmap nodes: points-driven and objects-driven rasterization.

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, Msg};
use crate::topics;
use av_des::StreamRng;
use av_geom::Pose;
use av_perception::costmap::ObjectFootprint;
use av_perception::{CostmapGenerator, CostmapParams};
use av_ros::{Execution, Message, Node, Outbox};

/// `costmap_generator`: rasterizes `/points_no_ground` into the drivable
/// grid.
pub struct CostmapGeneratorNode {
    generator: CostmapGenerator,
    cost: NodeCost,
    rng: StreamRng,
}

impl CostmapGeneratorNode {
    /// Creates the node.
    pub fn new(params: CostmapParams, calib: &Calibration, rng: StreamRng) -> CostmapGeneratorNode {
        CostmapGeneratorNode {
            generator: CostmapGenerator::new(params),
            cost: calib.costmap_points.clone(),
            rng,
        }
    }
}

impl Node<Msg> for CostmapGeneratorNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::PointCloud(no_ground) = &*msg.payload else {
            unexpected(topics::nodes::COSTMAP_GENERATOR, topic, &msg.payload)
        };
        let grid = self.generator.from_points(no_ground);
        let units = no_ground.len() as f64 / 1000.0;
        out.publish(topics::COSTMAP_POINTS, Msg::Costmap(grid));
        Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
    }
}

/// `costmap_generator_obj`: rasterizes tracked objects and their predicted
/// paths — the node whose tail latency the paper tracks across detector
/// configurations (72 → 120 ms between SSD300 and SSD512).
pub struct CostmapGeneratorObjNode {
    generator: CostmapGenerator,
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    cached_pose: Option<Pose>,
}

impl CostmapGeneratorObjNode {
    /// Creates the node.
    pub fn new(
        params: CostmapParams,
        calib: &Calibration,
        rng: StreamRng,
    ) -> CostmapGeneratorObjNode {
        CostmapGeneratorObjNode {
            generator: CostmapGenerator::new(params),
            cost: calib.costmap_objects.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            cached_pose: None,
        }
    }
}

impl Node<Msg> for CostmapGeneratorObjNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::PredictedObjects(predicted) => {
                // Objects arrive in the map frame; the grid is ego-centered.
                let to_body = self.cached_pose.map(|p| p.inverse()).unwrap_or(Pose::IDENTITY);
                let footprints: Vec<ObjectFootprint> = predicted
                    .iter()
                    .map(|p| ObjectFootprint {
                        position: to_body.transform_point(p.object.position),
                        half_extents: p.object.half_extents,
                        yaw: p.object.yaw - self.cached_pose.map(|q| q.yaw()).unwrap_or(0.0),
                        path: p.path.iter().map(|&w| to_body.transform_point(w)).collect(),
                    })
                    .collect();
                let grid = self.generator.from_objects(&footprints);
                let units = footprints.len() as f64;
                out.publish(topics::COSTMAP_OBJECTS, Msg::Costmap(grid));
                Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::COSTMAP_GENERATOR_OBJ, topic, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PoseEstimate;
    use av_des::{RngStreams, SimTime};
    use av_geom::Vec3;
    use av_perception::ObjectClass;
    use av_pointcloud::PointCloud;
    use av_ros::{Header, Lineage, Source};
    use av_tracking::{PredictedObject, TrackedObject};

    fn message(payload: Msg) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(100),
                lineage: Lineage::origin(Source::Lidar, SimTime::from_millis(100)),
            },
            payload,
        )
    }

    #[test]
    fn points_costmap_marks_obstacles() {
        let calib = Calibration::default();
        let mut node = CostmapGeneratorNode::new(
            CostmapParams::default(),
            &calib,
            RngStreams::new(1).stream("c"),
        );
        let cloud = PointCloud::from_positions([Vec3::new(6.0, 1.0, 0.0)]);
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(topics::POINTS_NO_GROUND, &message(Msg::PointCloud(cloud)), &mut out);
        let items = out.into_items();
        let Msg::Costmap(grid) = &items[0].1 else { panic!() };
        assert!(grid.cost_at(Vec3::new(6.0, 1.0, 0.0)) > 0);
    }

    #[test]
    fn object_costmap_transforms_to_body_frame() {
        let calib = Calibration::default();
        let mut node = CostmapGeneratorObjNode::new(
            CostmapParams::default(),
            &calib,
            RngStreams::new(1).stream("o"),
        );
        // Ego at (100, 0) heading +x; object 10 m ahead in map frame.
        node.on_message(
            topics::NDT_POSE,
            &message(Msg::Pose(PoseEstimate {
                pose: Pose::planar(100.0, 0.0, 0.0),
                fitness: 1.0,
                iterations: 5,
            })),
            &mut Outbox::new(Lineage::empty()),
        );
        let track = TrackedObject {
            id: 1,
            position: Vec3::new(110.0, 0.0, 0.0),
            velocity: Vec3::new(5.0, 0.0, 0.0),
            yaw: 0.0,
            yaw_rate: 0.0,
            half_extents: Vec3::new(2.0, 0.9, 0.75),
            class: ObjectClass::Car,
            age: 10,
            model_probs: [0.8, 0.1, 0.1],
        };
        let predicted = PredictedObject {
            path: vec![Vec3::new(112.5, 0.0, 0.0), Vec3::new(115.0, 0.0, 0.0)],
            object: track,
        };
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(
            topics::MOTION_PREDICTOR_OBJECTS,
            &message(Msg::PredictedObjects(vec![predicted])),
            &mut out,
        );
        let items = out.into_items();
        let Msg::Costmap(grid) = &items[0].1 else { panic!() };
        // Body frame: the object sits 10 m ahead.
        assert!(grid.cost_at(Vec3::new(10.0, 0.0, 0.0)) > 0);
        // Predicted position 15 m ahead carries decayed cost.
        let future = grid.cost_at(Vec3::new(15.0, 0.0, 0.0));
        assert!(future > 0 && future < 100);
    }

    #[test]
    fn object_costmap_cost_scales_with_objects() {
        let calib = Calibration::default();
        let mut node = CostmapGeneratorObjNode::new(
            CostmapParams::default(),
            &calib,
            RngStreams::new(1).stream("o2"),
        );
        let many: Vec<PredictedObject> = (0..60)
            .map(|i| PredictedObject {
                object: TrackedObject {
                    id: i,
                    position: Vec3::new(10.0 + (i % 30) as f64, (i / 30) as f64 * 3.0, 0.0),
                    velocity: Vec3::ZERO,
                    yaw: 0.0,
                    yaw_rate: 0.0,
                    half_extents: Vec3::splat(0.5),
                    class: ObjectClass::Unknown,
                    age: 5,
                    model_probs: [0.4, 0.4, 0.2],
                },
                path: vec![],
            })
            .collect();
        let exec_many = node.on_message(
            topics::MOTION_PREDICTOR_OBJECTS,
            &message(Msg::PredictedObjects(many)),
            &mut Outbox::new(Lineage::empty()),
        );
        let exec_none = node.on_message(
            topics::MOTION_PREDICTOR_OBJECTS,
            &message(Msg::PredictedObjects(vec![])),
            &mut Outbox::new(Lineage::empty()),
        );
        assert!(exec_many.cpu_demand() > exec_none.cpu_demand() * 2);
    }
}
