//! The tracking pipeline nodes: tracker, relay, prediction.

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, Msg};
use crate::topics;
use av_des::{SimTime, StreamRng};
use av_ros::{Execution, Message, Node, Outbox};
use av_tracking::{predict_objects, ImmUkfPdaTracker, PredictParams, TrackerParams};

/// `imm_ukf_pda_tracker`: multi-object tracking over fused detections.
pub struct ImmUkfPdaTrackerNode {
    tracker: ImmUkfPdaTracker,
    cost: NodeCost,
    rng: StreamRng,
    last_stamp: Option<SimTime>,
}

impl ImmUkfPdaTrackerNode {
    /// Creates the node.
    pub fn new(params: TrackerParams, calib: &Calibration, rng: StreamRng) -> ImmUkfPdaTrackerNode {
        ImmUkfPdaTrackerNode {
            tracker: ImmUkfPdaTracker::new(params),
            cost: calib.imm_ukf_pda_tracker.clone(),
            rng,
            last_stamp: None,
        }
    }

    /// Number of live tracks (for tests/diagnostics).
    pub fn track_count(&self) -> usize {
        self.tracker.track_count()
    }
}

impl Node<Msg> for ImmUkfPdaTrackerNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.tracker.save_state(w);
        crate::snapshot::put_opt_time(w, self.last_stamp);
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.tracker.load_state(r);
        self.last_stamp = crate::snapshot::get_opt_time(r);
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::DetectedObjects(detections) = &*msg.payload else {
            unexpected(topics::nodes::IMM_UKF_PDA_TRACKER, topic, &msg.payload)
        };
        let dt = match self.last_stamp {
            Some(last) => msg.header.stamp.saturating_since(last).as_secs_f64().max(1e-3),
            None => 0.1,
        };
        self.last_stamp = Some(msg.header.stamp);
        let tracked = self.tracker.step(detections, dt);
        let work = self.tracker.last_work();
        let units = (work.tracks + work.measurements) as f64;
        out.publish(topics::OBJECT_TRACKER_OBJECTS, Msg::TrackedObjects(tracked));
        Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
    }
}

/// `ukf_track_relay`: forwards tracker output onto `/detection/objects`
/// (present in the paper's Table IV paths).
pub struct UkfTrackRelayNode {
    cost: NodeCost,
    rng: StreamRng,
}

impl UkfTrackRelayNode {
    /// Creates the relay.
    pub fn new(calib: &Calibration, rng: StreamRng) -> UkfTrackRelayNode {
        UkfTrackRelayNode { cost: calib.auxiliary.clone(), rng }
    }
}

impl Node<Msg> for UkfTrackRelayNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::TrackedObjects(tracks) = &*msg.payload else {
            unexpected(topics::nodes::UKF_TRACK_RELAY, topic, &msg.payload)
        };
        out.publish(topics::DETECTION_OBJECTS, Msg::TrackedObjects(tracks.clone()));
        Execution::cpu(self.cost.demand(0.0, &mut self.rng), self.cost.mem_intensity)
    }
}

/// `naive_motion_predict`: constant-velocity/turn extrapolation of each
/// track.
pub struct NaiveMotionPredictNode {
    params: PredictParams,
    cost: NodeCost,
    rng: StreamRng,
}

impl NaiveMotionPredictNode {
    /// Creates the node.
    pub fn new(
        params: PredictParams,
        calib: &Calibration,
        rng: StreamRng,
    ) -> NaiveMotionPredictNode {
        NaiveMotionPredictNode { params, cost: calib.naive_motion_predict.clone(), rng }
    }
}

impl Node<Msg> for NaiveMotionPredictNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::TrackedObjects(tracks) = &*msg.payload else {
            unexpected(topics::nodes::NAIVE_MOTION_PREDICT, topic, &msg.payload)
        };
        let predicted = predict_objects(tracks, &self.params);
        let units = tracks.len() as f64;
        out.publish(topics::MOTION_PREDICTOR_OBJECTS, Msg::PredictedObjects(predicted));
        Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::RngStreams;
    use av_geom::Vec3;
    use av_perception::DetectedObject;
    use av_ros::{Header, Lineage, Source};

    fn message(payload: Msg, stamp_ms: u64) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(stamp_ms),
                lineage: Lineage::origin(Source::Lidar, SimTime::from_millis(stamp_ms)),
            },
            payload,
        )
    }

    fn detections_at(x: f64) -> Msg {
        Msg::DetectedObjects(vec![DetectedObject::from_cluster(
            Vec3::new(x, 0.0, 0.0),
            Vec3::new(2.0, 0.9, 0.75),
            25,
        )])
    }

    #[test]
    fn tracker_node_confirms_and_publishes() {
        let calib = Calibration::default();
        let mut node = ImmUkfPdaTrackerNode::new(
            TrackerParams::default(),
            &calib,
            RngStreams::new(1).stream("t"),
        );
        let mut last_tracks = 0;
        for i in 0..8u64 {
            let mut out = Outbox::new(Lineage::empty());
            node.on_message(
                topics::FUSION_TOOLS_OBJECTS,
                &message(detections_at(10.0 + 0.8 * i as f64), 100 * (i + 1)),
                &mut out,
            );
            let items = out.into_items();
            let Msg::TrackedObjects(tracks) = &items[0].1 else { panic!() };
            last_tracks = tracks.len();
        }
        assert_eq!(last_tracks, 1);
        assert_eq!(node.track_count(), 1);
    }

    #[test]
    fn relay_and_predict_chain() {
        let calib = Calibration::default();
        let mut tracker = ImmUkfPdaTrackerNode::new(
            TrackerParams::default(),
            &calib,
            RngStreams::new(1).stream("t2"),
        );
        let mut tracks_msg = None;
        for i in 0..6u64 {
            let mut out = Outbox::new(Lineage::empty());
            tracker.on_message(
                topics::FUSION_TOOLS_OBJECTS,
                &message(detections_at(5.0 + 0.8 * i as f64), 100 * (i + 1)),
                &mut out,
            );
            tracks_msg = Some(out.into_items().remove(0).1);
        }

        let mut relay = UkfTrackRelayNode::new(&calib, RngStreams::new(1).stream("r"));
        let mut out = Outbox::new(Lineage::empty());
        let exec = relay.on_message(
            topics::OBJECT_TRACKER_OBJECTS,
            &message(tracks_msg.clone().unwrap(), 700),
            &mut out,
        );
        assert!(exec.cpu_demand().as_millis_f64() < 0.5, "relay must be nearly free");
        let relayed = out.into_items().remove(0);
        assert_eq!(relayed.0, topics::DETECTION_OBJECTS);

        let mut predict = NaiveMotionPredictNode::new(
            PredictParams::default(),
            &calib,
            RngStreams::new(1).stream("p"),
        );
        let mut out = Outbox::new(Lineage::empty());
        predict.on_message(topics::DETECTION_OBJECTS, &message(relayed.1, 705), &mut out);
        let items = out.into_items();
        let Msg::PredictedObjects(predicted) = &items[0].1 else { panic!() };
        assert_eq!(predicted.len(), 1);
        assert_eq!(predicted[0].path.len(), 6);
        // A moving track's predicted path must extend forward.
        assert!(predicted[0].path[5].distance(predicted[0].object.position) > 1.0);
    }
}
