//! The camera pipeline nodes: DNN detection and LiDAR/vision fusion.

use crate::calib::{Calibration, NodeCost, VisionCost};
use crate::msg::{unexpected, Msg};
use crate::topics;
use av_des::StreamRng;
use av_geom::Pose;
use av_perception::fusion::VisionDetection2d;
use av_perception::{fuse_objects, DetectedObject, FusionParams};
use av_ros::{Execution, Lineage, Message, Node, Outbox};
use av_vision::{DetectorParams, VisionDetector};

/// `vision_detection`: the DNN object detector (SSD512 / SSD300 / YOLO —
/// the stack's configuration variable).
///
/// The synthesis + the real ranking/NMS run in the callback; the modeled
/// execution is CPU pre-processing → GPU inference → CPU post-processing,
/// the split Fig 8 reports.
pub struct VisionDetectionNode {
    detector: VisionDetector,
    cost: VisionCost,
    rng: StreamRng,
}

impl VisionDetectionNode {
    /// Creates the node for a detector kind.
    pub fn new(
        kind: av_vision::DetectorKind,
        calib: &Calibration,
        rng: StreamRng,
    ) -> VisionDetectionNode {
        VisionDetectionNode {
            detector: VisionDetector::new(kind, DetectorParams::default()),
            cost: calib.vision_cost(kind),
            rng,
        }
    }

    /// The configured detector kind.
    pub fn kind(&self) -> av_vision::DetectorKind {
        self.detector.kind()
    }

    /// Hot-swaps the detector network (the supervision layer's detector
    /// fallback: run the cheapest network while the primary reloads).
    /// The node's RNG stream is untouched so the swap itself does not
    /// perturb unrelated draws.
    pub fn set_kind(&mut self, kind: av_vision::DetectorKind, cost: VisionCost) {
        self.detector = VisionDetector::new(kind, DetectorParams::default());
        self.cost = cost;
    }
}

impl Node<Msg> for VisionDetectionNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        // The detector may have been hot-swapped by the supervision
        // layer's fallback, so the active kind and its cost model are
        // dynamic state.
        crate::snapshot::put_detector_kind(w, self.detector.kind());
        crate::snapshot::put_vision_cost(w, &self.cost);
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        let kind = crate::snapshot::get_detector_kind(r);
        let cost = crate::snapshot::get_vision_cost(r);
        self.set_kind(kind, cost);
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::Image(frame) = &*msg.payload else {
            unexpected(topics::nodes::VISION_DETECTION, topic, &msg.payload)
        };
        let output = self.detector.detect(frame, &mut self.rng);
        let kilo_candidates = output.candidates_scored as f64 / 1000.0;
        out.publish(topics::IMAGE_DETECTOR_OBJECTS, Msg::VisionDetections(output.detections));
        let pre = self.cost.preprocess.demand(0.0, &mut self.rng);
        let post = self.cost.postprocess.demand(kilo_candidates, &mut self.rng);
        Execution::cpu(pre, self.cost.preprocess.mem_intensity)
            .then_gpu(self.cost.gpu_kernel, self.cost.copy_bytes, self.cost.energy_j)
            .then_cpu(post, self.cost.postprocess.mem_intensity)
    }
}

/// `range_vision_fusion`: matches the latest LiDAR clusters with each
/// incoming vision frame, transforms the fused objects into the map frame
/// using the latest localization, and republishes with merged lineage —
/// so downstream path latency accounts for *both* sensors, as the paper's
/// Table IV paths require.
pub struct RangeVisionFusionNode {
    params: FusionParams,
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    cached_lidar: Option<(Vec<DetectedObject>, Lineage)>,
    cached_pose: Option<Pose>,
}

impl RangeVisionFusionNode {
    /// Creates the node.
    pub fn new(params: FusionParams, calib: &Calibration, rng: StreamRng) -> RangeVisionFusionNode {
        RangeVisionFusionNode {
            params,
            cost: calib.range_vision_fusion.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            cached_lidar: None,
            cached_pose: None,
        }
    }

    fn fuse(
        &mut self,
        vision: &[VisionDetection2d],
        vision_lineage: &Lineage,
    ) -> (Vec<DetectedObject>, Lineage) {
        let (lidar, lidar_lineage) = match &self.cached_lidar {
            Some((objs, lineage)) => (objs.as_slice(), lineage.clone()),
            None => (&[] as &[DetectedObject], Lineage::empty()),
        };
        let mut fused = fuse_objects(lidar, vision, &self.params);
        // Transform body-frame objects into the map frame.
        if let Some(pose) = &self.cached_pose {
            for obj in &mut fused {
                obj.position = pose.transform_point(obj.position);
                obj.yaw += pose.yaw();
            }
        }
        (fused, vision_lineage.merged(&lidar_lineage))
    }
}

impl Node<Msg> for RangeVisionFusionNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match &self.cached_lidar {
            Some((objs, lineage)) => {
                w.put_bool(true);
                crate::snapshot::encode_msg(&Msg::DetectedObjects(objs.clone()), w);
                crate::snapshot::put_lineage(w, lineage);
            }
            None => w.put_bool(false),
        }
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_lidar = if r.get_bool() {
            let Msg::DetectedObjects(objs) = crate::snapshot::decode_msg(r) else {
                panic!("checkpoint corrupt: cached lidar is not DetectedObjects")
            };
            Some((objs, crate::snapshot::get_lineage(r)))
        } else {
            None
        };
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::DetectedObjects(objs) => {
                self.cached_lidar = Some((objs.clone(), msg.header.lineage.clone()));
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::VisionDetections(vision) => {
                let (fused, lineage) = self.fuse(vision, &msg.header.lineage);
                let units = fused.len() as f64 + vision.len() as f64;
                out.publish_with_lineage(
                    topics::FUSION_TOOLS_OBJECTS,
                    Msg::DetectedObjects(fused),
                    lineage,
                );
                Execution::cpu(self.cost.demand(units, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::RANGE_VISION_FUSION, topic, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PoseEstimate;
    use av_des::{RngStreams, SimTime};
    use av_geom::Vec3;
    use av_perception::ObjectClass;
    use av_ros::{Header, Source};
    use av_vision::DetectorKind;
    use av_world::{CameraConfig, CameraModel, ScenarioConfig, World};

    fn message(payload: Msg, source: Source, stamp_ms: u64) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(stamp_ms),
                lineage: Lineage::origin(source, SimTime::from_millis(stamp_ms)),
            },
            payload,
        )
    }

    #[test]
    fn vision_node_three_phase_execution() {
        let calib = Calibration::default();
        let mut node =
            VisionDetectionNode::new(DetectorKind::Ssd512, &calib, RngStreams::new(1).stream("v"));
        assert_eq!(node.kind(), DetectorKind::Ssd512);
        let world = World::generate(&ScenarioConfig::smoke_test());
        let frame = CameraModel::new(CameraConfig::default()).capture(&world, &world.snapshot(0.0));
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::IMAGE_RAW,
            &message(Msg::Image(frame), Source::Camera, 100),
            &mut out,
        );
        assert_eq!(exec.phases.len(), 3);
        assert_eq!(out.len(), 1);
        // SSD512's CPU+GPU lands near its 73 ms standalone anchor.
        let total = exec.cpu_demand().as_millis_f64() + exec.gpu_demand().as_millis_f64();
        assert!((60.0..90.0).contains(&total), "SSD512 demand {total} ms");
    }

    #[test]
    fn yolo_is_gpu_dominated() {
        let calib = Calibration::default();
        let mut node =
            VisionDetectionNode::new(DetectorKind::YoloV3, &calib, RngStreams::new(1).stream("y"));
        let world = World::generate(&ScenarioConfig::smoke_test());
        let frame = CameraModel::new(CameraConfig::default()).capture(&world, &world.snapshot(0.0));
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::IMAGE_RAW,
            &message(Msg::Image(frame), Source::Camera, 100),
            &mut out,
        );
        let gpu = exec.gpu_demand().as_millis_f64();
        let cpu = exec.cpu_demand().as_millis_f64();
        assert!(gpu / (gpu + cpu) > 0.85, "YOLO GPU share {}", gpu / (gpu + cpu));
    }

    #[test]
    fn fusion_combines_and_transforms() {
        let calib = Calibration::default();
        let mut node = RangeVisionFusionNode::new(
            FusionParams::default(),
            &calib,
            RngStreams::new(1).stream("f"),
        );
        // Cache pose and lidar objects.
        node.on_message(
            topics::NDT_POSE,
            &message(
                Msg::Pose(PoseEstimate {
                    pose: Pose::planar(100.0, 50.0, 0.0),
                    fitness: 1.0,
                    iterations: 5,
                }),
                Source::Lidar,
                90,
            ),
            &mut Outbox::new(Lineage::empty()),
        );
        let cluster = DetectedObject::from_cluster(Vec3::new(12.0, 0.0, 0.0), Vec3::splat(0.9), 30);
        node.on_message(
            topics::LIDAR_DETECTOR_OBJECTS,
            &message(Msg::DetectedObjects(vec![cluster]), Source::Lidar, 95),
            &mut Outbox::new(Lineage::empty()),
        );
        // Vision arrives: fuse.
        let vision = vec![VisionDetection2d {
            bbox: (600.0, 300.0, 80.0, 120.0),
            class: ObjectClass::Car,
            confidence: 0.9,
        }];
        let mut out = Outbox::new(Lineage::origin(Source::Camera, SimTime::from_millis(100)));
        node.on_message(
            topics::IMAGE_DETECTOR_OBJECTS,
            &message(Msg::VisionDetections(vision), Source::Camera, 100),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        let items = out.into_items();
        let (topic, payload, lineage) = &items[0];
        assert_eq!(topic, topics::FUSION_TOOLS_OBJECTS);
        // Lineage carries both sensors.
        assert!(lineage.stamp_of(Source::Camera).is_some());
        assert!(lineage.stamp_of(Source::Lidar).is_some());
        // Object classified and transformed to map frame.
        let Msg::DetectedObjects(fused) = payload else { panic!("wrong payload") };
        assert_eq!(fused[0].class, ObjectClass::Car);
        assert!((fused[0].position.x - 112.0).abs() < 1e-9);
    }

    #[test]
    fn fusion_without_cached_lidar_emits_empty() {
        let calib = Calibration::default();
        let mut node = RangeVisionFusionNode::new(
            FusionParams::default(),
            &calib,
            RngStreams::new(1).stream("f2"),
        );
        let mut out = Outbox::new(Lineage::empty());
        node.on_message(
            topics::IMAGE_DETECTOR_OBJECTS,
            &message(Msg::VisionDetections(vec![]), Source::Camera, 100),
            &mut out,
        );
        assert_eq!(out.len(), 1, "fusion always publishes (possibly empty) output");
    }
}
