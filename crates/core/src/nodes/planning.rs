//! The actuation-layer nodes (exercised by examples; excluded from the
//! headline experiments, as in the paper §III-C).

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, Msg};
use crate::topics;
use av_des::StreamRng;
use av_geom::{Pose, Vec3};
use av_perception::OccupancyGrid;
use av_planning::{
    LocalPlanner, LocalPlannerParams, PurePursuit, PurePursuitParams, TwistFilter,
    TwistFilterParams, Waypoint,
};
use av_ros::{Execution, Message, Node, Outbox};

/// `op_local_planner`: picks the best rollout against the latest costmap
/// and publishes the local path (map frame).
pub struct OpLocalPlannerNode {
    planner: LocalPlanner,
    global_path: Vec<Waypoint>,
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    cached_pose: Option<Pose>,
    last_pose_stamp: Option<av_des::SimTime>,
    hold_after_stale_s: Option<f64>,
    holds: u64,
}

impl OpLocalPlannerNode {
    /// Creates the node with the route's global waypoints.
    pub fn new(
        params: LocalPlannerParams,
        global_path: Vec<Waypoint>,
        calib: &Calibration,
        rng: StreamRng,
    ) -> OpLocalPlannerNode {
        OpLocalPlannerNode {
            planner: LocalPlanner::new(params),
            global_path,
            cost: calib.planning.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            cached_pose: None,
            last_pose_stamp: None,
            hold_after_stale_s: None,
            holds: 0,
        }
    }

    /// Enables the safe-stop degradation: when the latest pose is older
    /// than `secs` at costmap time (stale perception — localization down
    /// or stalled), the planner publishes a single-point hold path at the
    /// last known position instead of a rollout, and the controller
    /// downstream commands no forward motion.
    pub fn hold_after_stale(mut self, secs: f64) -> OpLocalPlannerNode {
        assert!(secs.is_finite() && secs > 0.0, "stale-pose hold threshold must be positive");
        self.hold_after_stale_s = Some(secs);
        self
    }

    /// How many planning cycles degraded to the hold path.
    pub fn hold_count(&self) -> u64 {
        self.holds
    }

    /// `true` when the hold gate is armed and the pose is stale at `now`.
    fn pose_stale(&self, now: av_des::SimTime) -> bool {
        let Some(limit) = self.hold_after_stale_s else { return false };
        match self.last_pose_stamp {
            Some(stamp) => now.saturating_since(stamp).as_secs_f64() > limit,
            None => true,
        }
    }

    fn plan(&mut self, costmap: &OccupancyGrid) -> Option<Vec<Vec3>> {
        let pose = self.cached_pose?;
        let rollout = self.planner.best(&pose, &self.global_path, costmap)?;
        // Rollout samples are body frame; publish in map frame.
        Some(rollout.samples.iter().map(|&p| pose.transform_point(p)).collect())
    }
}

impl Node<Msg> for OpLocalPlannerNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
        crate::snapshot::put_opt_time(w, self.last_pose_stamp);
        w.put_u64(self.holds);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
        self.last_pose_stamp = crate::snapshot::get_opt_time(r);
        self.holds = r.get_u64();
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                self.last_pose_stamp = Some(msg.header.stamp);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Costmap(grid) => {
                if self.pose_stale(msg.header.stamp) {
                    self.holds += 1;
                    if let Some(pose) = self.cached_pose {
                        out.publish(topics::FINAL_WAYPOINTS, Msg::Path(vec![pose.translation]));
                    }
                } else if let Some(path) = self.plan(grid) {
                    out.publish(topics::FINAL_WAYPOINTS, Msg::Path(path));
                }
                Execution::cpu(self.cost.demand(7.0, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::OP_LOCAL_PLANNER, topic, other),
        }
    }
}

/// `pure_pursuit`: turns the local path into a velocity command.
pub struct PurePursuitNode {
    controller: PurePursuit,
    cost: NodeCost,
    aux: NodeCost,
    rng: StreamRng,
    cached_pose: Option<Pose>,
}

impl PurePursuitNode {
    /// Creates the node.
    pub fn new(params: PurePursuitParams, calib: &Calibration, rng: StreamRng) -> PurePursuitNode {
        PurePursuitNode {
            controller: PurePursuit::new(params),
            cost: calib.planning.clone(),
            aux: calib.auxiliary.clone(),
            rng,
            cached_pose: None,
        }
    }
}

impl Node<Msg> for PurePursuitNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Path(path) => {
                if let Some(pose) = self.cached_pose {
                    let speed = self.controller.params().cruise_speed;
                    if let Some(twist) = self.controller.control(&pose, speed, path) {
                        out.publish(topics::TWIST_RAW, Msg::Twist(twist));
                    }
                }
                Execution::cpu(self.cost.demand(1.0, &mut self.rng), self.cost.mem_intensity)
            }
            other => unexpected(topics::nodes::PURE_PURSUIT, topic, other),
        }
    }
}

/// `twist_filter`: low-pass + rate limits on the velocity command.
pub struct TwistFilterNode {
    filter: TwistFilter,
    cost: NodeCost,
    rng: StreamRng,
    last_stamp: Option<av_des::SimTime>,
}

impl TwistFilterNode {
    /// Creates the node.
    pub fn new(params: TwistFilterParams, calib: &Calibration, rng: StreamRng) -> TwistFilterNode {
        TwistFilterNode {
            filter: TwistFilter::new(params),
            cost: calib.auxiliary.clone(),
            rng,
            last_stamp: None,
        }
    }
}

impl Node<Msg> for TwistFilterNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.filter.save_state(w);
        crate::snapshot::put_opt_time(w, self.last_stamp);
        self.rng.save(w);
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.filter.load_state(r);
        self.last_stamp = crate::snapshot::get_opt_time(r);
        self.rng.restore(r);
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        let Msg::Twist(raw) = &*msg.payload else {
            unexpected(topics::nodes::TWIST_FILTER, topic, &msg.payload)
        };
        let dt = match self.last_stamp {
            Some(last) => msg.header.stamp.saturating_since(last).as_secs_f64().max(1e-3),
            None => 0.1,
        };
        self.last_stamp = Some(msg.header.stamp);
        let smoothed = self.filter.apply(*raw, dt);
        out.publish(topics::TWIST_CMD, Msg::Twist(smoothed));
        Execution::cpu(self.cost.demand(0.0, &mut self.rng), self.cost.mem_intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PoseEstimate;
    use av_des::{RngStreams, SimTime};
    use av_perception::{CostmapGenerator, CostmapParams};
    use av_pointcloud::PointCloud;
    use av_ros::{Header, Lineage, Source};

    fn message(payload: Msg, stamp_ms: u64) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(stamp_ms),
                lineage: Lineage::origin(Source::Lidar, SimTime::from_millis(stamp_ms)),
            },
            payload,
        )
    }

    fn straight_waypoints() -> Vec<Waypoint> {
        (0..40)
            .map(|i| Waypoint { position: Vec3::new(i as f64 * 2.0, 0.0, 0.0), speed_limit: 10.0 })
            .collect()
    }

    #[test]
    fn planner_pursuit_filter_chain() {
        let calib = Calibration::default();
        let mut planner = OpLocalPlannerNode::new(
            LocalPlannerParams::default(),
            straight_waypoints(),
            &calib,
            RngStreams::new(1).stream("lp"),
        );
        let pose = Msg::Pose(PoseEstimate {
            pose: Pose::planar(0.0, 0.0, 0.0),
            fitness: 1.0,
            iterations: 5,
        });
        planner.on_message(
            topics::NDT_POSE,
            &message(pose.clone(), 90),
            &mut Outbox::new(Lineage::empty()),
        );
        let empty_grid =
            CostmapGenerator::new(CostmapParams::default()).from_points(&PointCloud::new());
        let mut out = Outbox::new(Lineage::empty());
        planner.on_message(
            topics::COSTMAP_OBJECTS,
            &message(Msg::Costmap(empty_grid), 100),
            &mut out,
        );
        let items = out.into_items();
        assert_eq!(items[0].0, topics::FINAL_WAYPOINTS);
        let Msg::Path(path) = items[0].1.clone() else { panic!() };
        assert!(!path.is_empty());

        let mut pursuit = PurePursuitNode::new(
            PurePursuitParams::default(),
            &calib,
            RngStreams::new(1).stream("pp"),
        );
        pursuit.on_message(
            topics::NDT_POSE,
            &message(pose, 100),
            &mut Outbox::new(Lineage::empty()),
        );
        let mut out = Outbox::new(Lineage::empty());
        pursuit.on_message(topics::FINAL_WAYPOINTS, &message(Msg::Path(path), 105), &mut out);
        let items = out.into_items();
        assert_eq!(items[0].0, topics::TWIST_RAW);
        let Msg::Twist(raw) = items[0].1.clone() else { panic!() };
        assert!(raw.speed() > 0.0);

        let mut filter = TwistFilterNode::new(
            TwistFilterParams::default(),
            &calib,
            RngStreams::new(1).stream("tf"),
        );
        let mut out = Outbox::new(Lineage::empty());
        filter.on_message(topics::TWIST_RAW, &message(Msg::Twist(raw), 110), &mut out);
        let items = out.into_items();
        assert_eq!(items[0].0, topics::TWIST_CMD);
        let Msg::Twist(smoothed) = items[0].1.clone() else { panic!() };
        assert!(smoothed.speed() < raw.speed(), "filter must ramp up gradually");
    }
}
