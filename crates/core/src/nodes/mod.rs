//! Every Autoware node, wired as an [`av_ros::Node`] over
//! [`Msg`](crate::Msg).
//!
//! Each node runs its *real* algorithm in the callback (the payloads are
//! real point clouds, detections and tracks), queues outputs on the
//! outbox, and returns an [`Execution`](av_ros::Execution) whose phases
//! are sampled from the calibrated cost model with the *actual work* of
//! this invocation (points processed, Newton iterations taken, candidates
//! ranked, objects stamped) as the unit count — so per-frame latency
//! variation tracks scene complexity, as §IV-A observes ("the more the
//! driving players, the higher the time").

mod costmap;
mod lidar;
mod lights;
mod planning;
mod radar;
mod tracking;
mod vision;

pub use costmap::{CostmapGeneratorNode, CostmapGeneratorObjNode};
pub use lidar::{EuclideanClusterNode, NdtMatchingNode, RayGroundFilterNode, VoxelGridFilterNode};
pub use lights::TrafficLightRecognitionNode;
pub use planning::{OpLocalPlannerNode, PurePursuitNode, TwistFilterNode};
pub use radar::RadarDetectionNode;
pub use tracking::{ImmUkfPdaTrackerNode, NaiveMotionPredictNode, UkfTrackRelayNode};
pub use vision::{RangeVisionFusionNode, VisionDetectionNode};
