//! Traffic-light recognition — the node the paper *could not* stimulate.
//!
//! "Since we do not have the annotation for traffic light poles position,
//! we cannot perform traffic light detection algorithms" (§III-C). Our
//! synthetic HD map carries the annotations, so the reproduction
//! exercises the node as an extension (off by default, so the headline
//! experiments stay comparable with the paper's setup).
//!
//! The node mirrors Autoware's `feat_proj` + `region_tlr` pair: project
//! the map-annotated light positions into the image using the current
//! localization, crop the ROIs, and classify each light's state with a
//! small CNN (modeled as a short GPU phase).

use crate::calib::{Calibration, NodeCost};
use crate::msg::{unexpected, LightObservation, Msg};
use crate::topics;
use av_des::{SimDuration, StreamRng};
use av_geom::Pose;
use av_ros::{Execution, Message, Node, Outbox};
use av_world::{LightState, TrafficLight};

/// The `traffic_light_recognition` node.
pub struct TrafficLightRecognitionNode {
    /// HD-map annotations: the light positions (§II-A's "3D position of
    /// traffic lights").
    map_lights: Vec<TrafficLight>,
    cost: NodeCost,
    aux: NodeCost,
    gpu_kernel: SimDuration,
    rng: StreamRng,
    cached_pose: Option<Pose>,
    /// Classification accuracy per ROI.
    accuracy: f64,
}

impl TrafficLightRecognitionNode {
    /// Creates the node from the HD map's light annotations.
    pub fn new(
        map_lights: Vec<TrafficLight>,
        calib: &Calibration,
        rng: StreamRng,
    ) -> TrafficLightRecognitionNode {
        TrafficLightRecognitionNode {
            map_lights,
            cost: calib.traffic_light.clone(),
            aux: calib.auxiliary.clone(),
            gpu_kernel: calib.traffic_light_gpu,
            rng,
            cached_pose: None,
            accuracy: 0.97,
        }
    }

    fn misclassify(state: LightState) -> LightState {
        match state {
            LightState::Green => LightState::Yellow,
            LightState::Yellow => LightState::Red,
            LightState::Red => LightState::Yellow,
        }
    }
}

impl Node<Msg> for TrafficLightRecognitionNode {
    fn save_state(&self, w: &mut av_des::SnapWriter) {
        self.rng.save(w);
        match self.cached_pose {
            Some(pose) => {
                w.put_bool(true);
                crate::snapshot::put_pose(w, &pose);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(&mut self, r: &mut av_des::SnapReader<'_>) {
        self.rng.restore(r);
        self.cached_pose = if r.get_bool() { Some(crate::snapshot::get_pose(r)) } else { None };
    }

    fn on_message(&mut self, topic: &str, msg: &Message<Msg>, out: &mut Outbox<Msg>) -> Execution {
        match &*msg.payload {
            Msg::Pose(estimate) => {
                self.cached_pose = Some(estimate.pose);
                Execution::cpu(self.aux.demand(0.0, &mut self.rng), self.aux.mem_intensity)
            }
            Msg::Image(frame) => {
                // feat_proj: select map lights plausibly in view of the
                // current pose (the ROI proposal step). A light whose ROI
                // the camera confirms gets classified.
                let pose = self.cached_pose.unwrap_or(Pose::IDENTITY);
                let candidate_ids: Vec<u32> = self
                    .map_lights
                    .iter()
                    .filter(|l| {
                        let rel = l.position - pose.translation;
                        rel.norm_xy() < 80.0
                    })
                    .map(|l| l.id)
                    .collect();
                let observations: Vec<LightObservation> = frame
                    .lights
                    .iter()
                    .filter(|l| candidate_ids.contains(&l.id))
                    .map(|l| {
                        let correct = self.rng.chance(self.accuracy);
                        let state = if correct { l.state } else { Self::misclassify(l.state) };
                        LightObservation {
                            id: l.id,
                            state,
                            confidence: if correct {
                                self.rng.uniform(0.8, 0.99)
                            } else {
                                self.rng.uniform(0.5, 0.8)
                            },
                            distance: l.distance,
                        }
                    })
                    .collect();
                let rois = observations.len();
                out.publish(topics::LIGHT_COLOR, Msg::LightColors(observations));
                let exec = Execution::cpu(
                    self.cost.demand(rois as f64, &mut self.rng),
                    self.cost.mem_intensity,
                );
                if rois > 0 {
                    // The classifier CNN runs once over the batched ROIs.
                    exec.then_gpu(self.gpu_kernel, 64 * 64 * 3 * rois as u64, 0.08)
                } else {
                    exec
                }
            }
            other => unexpected(topics::nodes::TRAFFIC_LIGHT_RECOGNITION, topic, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PoseEstimate;
    use av_des::{RngStreams, SimTime};
    use av_ros::{Header, Lineage, Source};
    use av_world::{CameraConfig, CameraModel, ScenarioConfig, World};

    fn message(payload: Msg, stamp_ms: u64) -> Message<Msg> {
        Message::new(
            Header {
                seq: 1,
                stamp: SimTime::from_millis(stamp_ms),
                lineage: Lineage::origin(Source::Camera, SimTime::from_millis(stamp_ms)),
            },
            payload,
        )
    }

    /// Drives the camera along the route until a frame contains a light.
    fn frame_with_light(world: &World) -> Option<(f64, av_world::ImageFrame)> {
        let camera = CameraModel::new(CameraConfig::default());
        for i in 0..400 {
            let t = i as f64 * 0.5;
            let frame = camera.capture(world, &world.snapshot(t));
            if !frame.lights.is_empty() {
                return Some((t, frame));
            }
        }
        None
    }

    #[test]
    fn world_annotates_traffic_lights() {
        let world = World::generate(&ScenarioConfig::smoke_test());
        assert_eq!(world.traffic_lights().len(), 4);
        for light in world.traffic_lights() {
            assert!(light.position.z > 4.0, "lights mounted overhead");
            // Cycle covers all three states.
            let states: std::collections::HashSet<_> =
                (0..40).map(|i| light.state_at(i as f64)).collect();
            assert_eq!(states.len(), 3);
        }
    }

    #[test]
    fn camera_sees_lights_somewhere_on_the_loop() {
        let world = World::generate(&ScenarioConfig::smoke_test());
        let found = frame_with_light(&world);
        assert!(found.is_some(), "no frame saw a light over a full loop");
    }

    #[test]
    fn node_classifies_visible_lights() {
        let world = World::generate(&ScenarioConfig::smoke_test());
        let (t, frame) = frame_with_light(&world).expect("a frame with lights");
        let truth: Vec<(u32, LightState)> = frame.lights.iter().map(|l| (l.id, l.state)).collect();

        let calib = Calibration::default();
        let mut node = TrafficLightRecognitionNode::new(
            world.traffic_lights().to_vec(),
            &calib,
            RngStreams::new(1).stream("tlr"),
        );
        // Cache the ego pose at that instant.
        node.on_message(
            topics::NDT_POSE,
            &message(
                Msg::Pose(PoseEstimate {
                    pose: world.ego_state(t).pose,
                    fitness: 1.0,
                    iterations: 3,
                }),
                (t * 1000.0) as u64,
            ),
            &mut Outbox::new(Lineage::empty()),
        );
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(
            topics::IMAGE_RAW,
            &message(Msg::Image(frame), (t * 1000.0) as u64 + 5),
            &mut out,
        );
        assert!(!exec.gpu_demand().is_zero(), "classifier CNN must run");
        let items = out.into_items();
        assert_eq!(items[0].0, topics::LIGHT_COLOR);
        let Msg::LightColors(obs) = &items[0].1 else { panic!("wrong payload") };
        assert_eq!(obs.len(), truth.len());
        // With 97% accuracy and a handful of lights, expect agreement.
        let correct =
            obs.iter().filter(|o| truth.iter().any(|&(id, s)| id == o.id && s == o.state)).count();
        assert!(correct * 2 > obs.len(), "mostly correct classifications");
    }

    #[test]
    fn empty_frame_publishes_empty_and_skips_gpu() {
        let world = World::generate(&ScenarioConfig::smoke_test());
        let calib = Calibration::default();
        let mut node = TrafficLightRecognitionNode::new(
            world.traffic_lights().to_vec(),
            &calib,
            RngStreams::new(1).stream("tlr2"),
        );
        let frame = av_world::ImageFrame {
            width: 1280,
            height: 960,
            visible: vec![],
            lights: vec![],
            clutter: 0.0,
        };
        let mut out = Outbox::new(Lineage::empty());
        let exec = node.on_message(topics::IMAGE_RAW, &message(Msg::Image(frame), 10), &mut out);
        assert!(exec.gpu_demand().is_zero());
        let items = out.into_items();
        let Msg::LightColors(obs) = &items[0].1 else { panic!() };
        assert!(obs.is_empty());
    }
}
