//! Crash-safe durable checkpoint store: the persistence layer under the
//! checkpoint/resume seam.
//!
//! Checkpoints are stored one per file, keyed by
//! `(config_fingerprint, barrier_virtual_time)` — the same identity
//! [`Checkpoint`] carries in its own header — so hour-scale drives can
//! be built up incrementally *across processes*: one process captures a
//! barrier, a later one resumes from it byte-identically.
//!
//! # On-disk layout (store version 1)
//!
//! ```text
//! <dir>/<fingerprint:016x>-<barrier_ns:016x>.ckpt     published entries
//! <dir>/pending/                                      outbox (writes in flight)
//! <dir>/quarantine/                                   entries set aside, never deleted
//! <dir>/quarantine/<name>.reason                      one-line reason sidecar
//! ```
//!
//! Each entry file is:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `AVCKPTS1` |
//! | 8      | 4    | store version (u32 LE, currently 1) |
//! | 12     | 8    | config fingerprint (u64 LE) |
//! | 20     | 8    | barrier virtual time, ns (u64 LE) |
//! | 28     | 8    | payload length (u64 LE) |
//! | 36     | n    | checkpoint payload ([`Checkpoint::as_bytes`]) |
//! | 36+n   | 8    | FNV-64 checksum over bytes `[0, 36+n)` (u64 LE) |
//!
//! # Crash safety and recovery
//!
//! Writes use the outbox pattern (mirroring the av-serve result spool):
//! the entry is written to `pending/`, fsynced, then atomically renamed
//! into the store, followed by a best-effort directory fsync. A crash
//! can therefore leave only a `pending/` leftover (never a half-visible
//! entry) — unless the medium itself mangles published bytes, which the
//! checksum catches. [`CkptStore::open`] runs a recovery scan: every
//! entry is verified end to end (length, magic, version, checksum,
//! filename↔header agreement, checkpoint-payload header), and anything
//! that fails is **quarantined** — renamed into `quarantine/` with a
//! reason sidecar, never silently deleted — and reported loudly in the
//! returned [`RecoveryReport`].
//!
//! # Eviction
//!
//! [`CkptStore::gc`] is the only thing that ever deletes entries, and it
//! is deterministic: given the same entry set and byte budget it always
//! picks the same survivor set (newest barrier per fingerprint is kept
//! preferentially; victims fall in `(barrier, fingerprint)` order).
//!
//! # Fault injection
//!
//! [`StoreFaultPlan`] and [`CkptStore::put_with_fault`] simulate a
//! writer dying mid-put in four distinct ways (torn write, bit flip,
//! truncation, crash inside the rename window) so tests can prove every
//! corruption mode is detected, quarantined and recovered from.

use crate::stack::{Checkpoint, CheckpointHeader};
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes every store entry opens with.
pub const STORE_MAGIC: [u8; 8] = *b"AVCKPTS1";
/// On-disk layout version this build reads and writes.
pub const STORE_VERSION: u32 = 1;

/// Fixed bytes before the payload: magic + version + fingerprint +
/// barrier + payload length.
const ENTRY_HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 8;
/// Trailing checksum.
const ENTRY_FOOTER_BYTES: usize = 8;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything the store knows about one published entry without
/// re-reading its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryInfo {
    /// Full configuration fingerprint the entry is keyed by.
    pub fingerprint: u64,
    /// Barrier virtual time the entry is keyed by, nanoseconds.
    pub barrier_ns: u64,
    /// Blackout-stripped fingerprint (the prefix-sharing identity).
    pub fingerprint_stripped: u64,
    /// Earliest blackout start of the captured configuration, seconds.
    pub earliest_blackout_s: Option<f64>,
    /// Whether the captured run was tracing.
    pub traced: bool,
    /// Total size of the entry file, bytes.
    pub file_bytes: u64,
}

impl EntryInfo {
    /// Barrier virtual time, seconds.
    pub fn barrier_s(&self) -> f64 {
        self.barrier_ns as f64 / 1e9
    }

    /// The entry's file name inside the store directory.
    pub fn file_name(&self) -> String {
        entry_file_name(self.fingerprint, self.barrier_ns)
    }
}

/// One entry set aside during a recovery scan or a failed read.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedEntry {
    /// File name the entry now has inside `quarantine/`.
    pub file: String,
    /// Human-readable reason (also written to the `.reason` sidecar).
    pub reason: String,
}

/// What [`CkptStore::open`] found: how many entries verified clean and
/// which were quarantined, with reasons.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Entries that verified end to end and are now indexed.
    pub loaded: usize,
    /// Entries renamed into `quarantine/`, with reasons.
    pub quarantined: Vec<QuarantinedEntry>,
}

impl RecoveryReport {
    /// `true` when nothing had to be quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The loud one-entry-per-line report the binaries print after a
    /// recovery scan (empty when the scan was clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for q in &self.quarantined {
            out.push_str(&format!("QUARANTINED {}: {}\n", q.file, q.reason));
        }
        if !self.quarantined.is_empty() {
            out.push_str(&format!(
                "recovery: {} entr{} loaded, {} quarantined (bytes kept under quarantine/)\n",
                self.loaded,
                if self.loaded == 1 { "y" } else { "ies" },
                self.quarantined.len()
            ));
        }
        out
    }
}

/// What one [`CkptStore::gc`] pass did.
#[derive(Debug)]
pub struct GcReport {
    /// Store size before the pass, bytes.
    pub bytes_before: u64,
    /// Store size after the pass, bytes.
    pub bytes_after: u64,
    /// Entries deleted, in eviction order.
    pub evicted: Vec<EntryInfo>,
    /// Entries surviving the pass.
    pub kept: usize,
}

/// One way a writer can die mid-`put`. See
/// [`CkptStore::put_with_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Only the first `keep_bytes` of the entry reach the disk, yet the
    /// rename still happens (a torn write that got published).
    TornWrite {
        /// Bytes that survive, from the front.
        keep_bytes: usize,
    },
    /// One bit of the published entry flips (`at_byte` is clamped into
    /// the entry by modulo).
    BitFlip {
        /// Byte offset whose low bit flips.
        at_byte: usize,
    },
    /// The published entry is truncated to `keep_bytes` after the
    /// rename (post-publish media damage).
    Truncate {
        /// Bytes that survive, from the front.
        keep_bytes: usize,
    },
    /// The writer dies inside the rename window: the entry is complete
    /// in `pending/` but never published.
    RenameCrash,
}

/// A seeded generator of [`StoreFault`]s: deterministic per
/// `(seed, index)`, cycling through all four modes with
/// pseudorandomly placed offsets, so a crash-window sweep can sample
/// byte offsets reproducibly.
#[derive(Debug, Clone, Copy)]
pub struct StoreFaultPlan {
    seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl StoreFaultPlan {
    /// A plan deriving every fault from `seed`.
    pub fn new(seed: u64) -> StoreFaultPlan {
        StoreFaultPlan { seed }
    }

    /// The `index`-th fault for an entry of `entry_len` total bytes.
    /// Cycles through the four modes; offsets land uniformly inside the
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics when `entry_len` is zero.
    pub fn fault(&self, index: u64, entry_len: usize) -> StoreFault {
        assert!(entry_len > 0, "entry_len must be positive");
        let r = splitmix64(self.seed ^ splitmix64(index));
        let offset = (r >> 2) as usize % entry_len;
        match index % 4 {
            0 => StoreFault::TornWrite { keep_bytes: offset },
            1 => StoreFault::BitFlip { at_byte: offset },
            2 => StoreFault::Truncate { keep_bytes: offset },
            _ => StoreFault::RenameCrash,
        }
    }
}

#[derive(Debug, Clone)]
struct IndexEntry {
    fingerprint_stripped: u64,
    earliest_blackout_s: Option<f64>,
    traced: bool,
    file_bytes: u64,
}

fn info(key: (u64, u64), e: &IndexEntry) -> EntryInfo {
    EntryInfo {
        fingerprint: key.0,
        barrier_ns: key.1,
        fingerprint_stripped: e.fingerprint_stripped,
        earliest_blackout_s: e.earliest_blackout_s,
        traced: e.traced,
        file_bytes: e.file_bytes,
    }
}

fn entry_file_name(fingerprint: u64, barrier_ns: u64) -> String {
    format!("{fingerprint:016x}-{barrier_ns:016x}.ckpt")
}

fn parse_entry_file_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_suffix(".ckpt")?;
    if stem.len() != 33 {
        return None;
    }
    let fp = stem.get(0..16)?;
    let barrier = stem.get(16..)?.strip_prefix('-')?;
    Some((u64::from_str_radix(fp, 16).ok()?, u64::from_str_radix(barrier, 16).ok()?))
}

/// Serializes one entry: header, payload, checksum footer.
fn encode_entry(fingerprint: u64, barrier_ns: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ENTRY_HEADER_BYTES + payload.len() + ENTRY_FOOTER_BYTES);
    buf.extend_from_slice(&STORE_MAGIC);
    buf.extend_from_slice(&STORE_VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&barrier_ns.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = fnv64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Verifies one entry end to end and returns its metadata plus the
/// checkpoint payload. Every failure mode gets a distinct, quotable
/// reason.
fn verify_entry_bytes(name: &str, data: &[u8]) -> Result<(EntryInfo, Vec<u8>), String> {
    let min = ENTRY_HEADER_BYTES + ENTRY_FOOTER_BYTES;
    if data.len() < min {
        return Err(format!("truncated: {} bytes, a valid entry needs at least {min}", data.len()));
    }
    if data[0..8] != STORE_MAGIC {
        return Err("bad magic: not a checkpoint-store entry".to_string());
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != STORE_VERSION {
        return Err(format!(
            "unsupported store version {version} (this build reads {STORE_VERSION})"
        ));
    }
    let fingerprint = u64::from_le_bytes(data[12..20].try_into().unwrap());
    let barrier_ns = u64::from_le_bytes(data[20..28].try_into().unwrap());
    let payload_len = u64::from_le_bytes(data[28..36].try_into().unwrap());
    let expected = (ENTRY_HEADER_BYTES as u64)
        .saturating_add(payload_len)
        .saturating_add(ENTRY_FOOTER_BYTES as u64);
    if data.len() as u64 != expected {
        return Err(format!(
            "length mismatch: header promises {expected} bytes, file has {}",
            data.len()
        ));
    }
    let body = &data[..data.len() - ENTRY_FOOTER_BYTES];
    let stored = u64::from_le_bytes(data[data.len() - ENTRY_FOOTER_BYTES..].try_into().unwrap());
    let computed = fnv64(body);
    if stored != computed {
        return Err(format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"));
    }
    let payload = &data[ENTRY_HEADER_BYTES..data.len() - ENTRY_FOOTER_BYTES];
    let header = CheckpointHeader::parse(payload)
        .map_err(|e| format!("checkpoint payload rejected: {e}"))?;
    if let Err(e) = Checkpoint::from_bytes(payload.to_vec()) {
        return Err(format!("checkpoint payload rejected: {e}"));
    }
    if header.fingerprint != fingerprint || header.barrier_ns != barrier_ns {
        return Err("key mismatch between store header and checkpoint payload".to_string());
    }
    match parse_entry_file_name(name) {
        Some((name_fp, name_barrier)) => {
            if name_fp != fingerprint || name_barrier != barrier_ns {
                return Err("entry name does not match its header key".to_string());
            }
        }
        None => return Err("malformed entry name".to_string()),
    }
    Ok((
        EntryInfo {
            fingerprint,
            barrier_ns,
            fingerprint_stripped: header.fingerprint_stripped,
            earliest_blackout_s: header.earliest_blackout_s,
            traced: header.traced,
            file_bytes: data.len() as u64,
        },
        payload.to_vec(),
    ))
}

/// Renames `path` into `quarantine_dir` (appending `.2`, `.3`, … on
/// name collisions) and writes a `.reason` sidecar. Never deletes.
fn quarantine_file(quarantine_dir: &Path, path: &Path, reason: &str) -> io::Result<String> {
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "entry".to_string());
    let mut name = base.clone();
    let mut n = 1u32;
    while quarantine_dir.join(&name).exists() {
        n += 1;
        name = format!("{base}.{n}");
    }
    let target = quarantine_dir.join(&name);
    fs::rename(path, &target)?;
    fs::write(quarantine_dir.join(format!("{name}.reason")), format!("{reason}\n"))?;
    Ok(name)
}

/// The durable checkpoint store. See the module docs for layout,
/// recovery and eviction semantics.
///
/// Thread-safe within a process (`&self` everywhere). Across processes,
/// concurrent writers are safe (atomic renames; identical keys carry
/// identical bytes by construction), and a reader racing another
/// process's `gc` simply misses the evicted entry.
pub struct CkptStore {
    root: PathBuf,
    pending: PathBuf,
    quarantine: PathBuf,
    index: Mutex<BTreeMap<(u64, u64), IndexEntry>>,
    put_seq: AtomicU64,
}

impl std::fmt::Debug for CkptStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptStore")
            .field("root", &self.root)
            .field("entries", &self.index.lock().unwrap().len())
            .finish()
    }
}

impl CkptStore {
    /// Opens (or creates) a store at `dir`, running the recovery scan:
    /// `pending/` leftovers are quarantined as interrupted writes, and
    /// every published entry is verified end to end — failures are
    /// renamed into `quarantine/` with a reason sidecar and reported.
    pub fn open(dir: &Path) -> io::Result<(CkptStore, RecoveryReport)> {
        let root = dir.to_path_buf();
        let pending = root.join("pending");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&pending)?;
        fs::create_dir_all(&quarantine)?;

        let mut report = RecoveryReport::default();
        let mut leftovers: Vec<PathBuf> = fs::read_dir(&pending)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        leftovers.sort();
        for path in leftovers {
            let reason = "interrupted write: found in pending/ (writer crashed before publish)";
            let file = quarantine_file(&quarantine, &path, reason)?;
            report.quarantined.push(QuarantinedEntry { file, reason: reason.to_string() });
        }

        let mut index = BTreeMap::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(&root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
            let outcome = match fs::read(&path) {
                Ok(data) => verify_entry_bytes(&name, &data),
                Err(e) => Err(format!("unreadable: {e}")),
            };
            match outcome {
                Ok((entry, _)) => {
                    index.insert(
                        (entry.fingerprint, entry.barrier_ns),
                        IndexEntry {
                            fingerprint_stripped: entry.fingerprint_stripped,
                            earliest_blackout_s: entry.earliest_blackout_s,
                            traced: entry.traced,
                            file_bytes: entry.file_bytes,
                        },
                    );
                    report.loaded += 1;
                }
                Err(reason) => {
                    let file = quarantine_file(&quarantine, &path, &reason)?;
                    report.quarantined.push(QuarantinedEntry { file, reason });
                }
            }
        }

        let store = CkptStore {
            root,
            pending,
            quarantine,
            index: Mutex::new(index),
            put_seq: AtomicU64::new(0),
        };
        Ok((store, report))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (entries set aside plus `.reason`
    /// sidecars).
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes across all indexed entries.
    pub fn total_bytes(&self) -> u64 {
        self.index.lock().unwrap().values().map(|e| e.file_bytes).sum()
    }

    /// Every indexed entry, sorted by `(fingerprint, barrier)`.
    pub fn entries(&self) -> Vec<EntryInfo> {
        self.index.lock().unwrap().iter().map(|(&k, e)| info(k, e)).collect()
    }

    /// File names currently in quarantine (reason sidecars excluded),
    /// sorted.
    pub fn quarantined(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(&self.quarantine)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| !n.ends_with(".reason"))
            .collect();
        names.sort();
        Ok(names)
    }

    /// Persists a checkpoint through the outbox: pending file → fsync →
    /// atomic rename → best-effort directory fsync. The key is read
    /// from the checkpoint's own header. Re-putting an existing key
    /// atomically replaces the entry with identical bytes (checkpoints
    /// are content-addressed: same key ⇒ same bytes).
    pub fn put(&self, checkpoint: &Checkpoint) -> io::Result<EntryInfo> {
        let header = checkpoint.header();
        let buf = encode_entry(header.fingerprint, header.barrier_ns, checkpoint.as_bytes());
        let name = entry_file_name(header.fingerprint, header.barrier_ns);
        let tmp =
            self.pending.join(format!("{name}.{}", self.put_seq.fetch_add(1, Ordering::Relaxed)));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(&name))?;
        // Make the rename itself durable; best-effort (not all
        // platforms allow fsyncing a directory handle).
        if let Ok(d) = File::open(&self.root) {
            let _ = d.sync_all();
        }
        let entry = IndexEntry {
            fingerprint_stripped: header.fingerprint_stripped,
            earliest_blackout_s: header.earliest_blackout_s,
            traced: header.traced,
            file_bytes: buf.len() as u64,
        };
        let key = (header.fingerprint, header.barrier_ns);
        self.index.lock().unwrap().insert(key, entry.clone());
        Ok(info(key, &entry))
    }

    /// Simulates a writer dying mid-[`put`](CkptStore::put) according
    /// to `fault`. The entry is **not** registered in this process's
    /// index — the writer is dead; whatever landed on disk is what the
    /// next [`CkptStore::open`] finds.
    pub fn put_with_fault(&self, checkpoint: &Checkpoint, fault: StoreFault) -> io::Result<()> {
        let header = checkpoint.header();
        let mut buf = encode_entry(header.fingerprint, header.barrier_ns, checkpoint.as_bytes());
        let name = entry_file_name(header.fingerprint, header.barrier_ns);
        let tmp =
            self.pending.join(format!("{name}.{}", self.put_seq.fetch_add(1, Ordering::Relaxed)));
        let written: &[u8] = match fault {
            StoreFault::TornWrite { keep_bytes } => &buf[..keep_bytes.min(buf.len())],
            StoreFault::BitFlip { at_byte } => {
                let at = at_byte % buf.len();
                buf[at] ^= 1;
                &buf
            }
            _ => &buf,
        };
        {
            let mut f = File::create(&tmp)?;
            f.write_all(written)?;
            f.sync_all()?;
        }
        if matches!(fault, StoreFault::RenameCrash) {
            // Died inside the rename window: complete in pending/,
            // never published.
            return Ok(());
        }
        fs::rename(&tmp, self.root.join(&name))?;
        if let StoreFault::Truncate { keep_bytes } = fault {
            let f = fs::OpenOptions::new().write(true).open(self.root.join(&name))?;
            f.set_len(keep_bytes.min(buf.len()) as u64)?;
            f.sync_all()?;
        }
        Ok(())
    }

    /// Reads and re-verifies one entry. A verification failure — the
    /// entry rotted since the open scan — quarantines it, drops it from
    /// the index and returns `None`; it never hands back bytes the
    /// checksum does not vouch for.
    pub fn load(&self, fingerprint: u64, barrier_ns: u64) -> Option<Checkpoint> {
        let key = (fingerprint, barrier_ns);
        if !self.index.lock().unwrap().contains_key(&key) {
            return None;
        }
        let name = entry_file_name(fingerprint, barrier_ns);
        let path = self.root.join(&name);
        let outcome = match fs::read(&path) {
            Ok(data) => verify_entry_bytes(&name, &data),
            Err(e) => Err(format!("unreadable: {e}")),
        };
        match outcome {
            Ok((_, payload)) => {
                Some(Checkpoint::from_bytes(payload).expect("verified payload parses"))
            }
            Err(reason) => {
                self.index.lock().unwrap().remove(&key);
                if path.exists() {
                    let _ = quarantine_file(&self.quarantine, &path, &reason);
                }
                None
            }
        }
    }

    /// The newest verifiable checkpoint for `fingerprint` with barrier
    /// at most `max_barrier_ns` and matching tracing mode. Falls back
    /// to the next-newest barrier when a candidate turns out corrupt
    /// (which quarantines it), so resume always lands on the best entry
    /// the checksums vouch for.
    pub fn best_resume(
        &self,
        fingerprint: u64,
        traced: bool,
        max_barrier_ns: u64,
    ) -> Option<Checkpoint> {
        let candidates: Vec<u64> = {
            let index = self.index.lock().unwrap();
            index
                .range((fingerprint, 0)..=(fingerprint, max_barrier_ns))
                .filter(|(_, e)| e.traced == traced)
                .map(|(&(_, barrier), _)| barrier)
                .rev()
                .collect()
        };
        candidates.into_iter().find_map(|barrier| self.load(fingerprint, barrier))
    }

    /// The checkpoint sharing a blackout-stripped identity with
    /// `fingerprint_stripped` at exactly `barrier_ns` (matching tracing
    /// mode, captured under a configuration whose blackouts all start
    /// strictly after the barrier) — the prefix-sharing lookup sweeps
    /// use to reuse a prior session's shared barriers. Prefers an exact
    /// full-fingerprint match, then the smallest qualifying fingerprint
    /// (deterministic).
    pub fn best_prefix(
        &self,
        fingerprint: u64,
        fingerprint_stripped: u64,
        traced: bool,
        barrier_ns: u64,
    ) -> Option<Checkpoint> {
        let barrier_s = barrier_ns as f64 / 1e9;
        let candidates: Vec<u64> = {
            let index = self.index.lock().unwrap();
            let mut fps: Vec<u64> = index
                .iter()
                .filter(|(&(_, b), e)| {
                    b == barrier_ns
                        && e.traced == traced
                        && e.fingerprint_stripped == fingerprint_stripped
                        && e.earliest_blackout_s.is_none_or(|s| s > barrier_s)
                })
                .map(|(&(fp, _), _)| fp)
                .collect();
            fps.sort();
            if let Some(pos) = fps.iter().position(|&fp| fp == fingerprint) {
                fps.swap(0, pos);
            }
            fps
        };
        candidates.into_iter().find_map(|fp| self.load(fp, barrier_ns))
    }

    /// Deterministic eviction down to `max_bytes`: the newest barrier
    /// of every fingerprint is kept preferentially; victims are evicted
    /// in `(barrier, fingerprint)` order until the budget holds. When
    /// the keepers alone still exceed the budget they are evicted in
    /// the same order (so `gc(0)` empties the store). This is the only
    /// code path that deletes entries, and the report names every one.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut index = self.index.lock().unwrap();
        let bytes_before: u64 = index.values().map(|e| e.file_bytes).sum();
        let mut newest: BTreeMap<u64, u64> = BTreeMap::new();
        for &(fp, barrier) in index.keys() {
            let slot = newest.entry(fp).or_insert(barrier);
            *slot = (*slot).max(barrier);
        }
        let mut victims: Vec<(u64, u64)> = index
            .keys()
            .filter(|&&(fp, barrier)| newest[&fp] != barrier)
            .map(|&(fp, barrier)| (barrier, fp))
            .collect();
        victims.sort();
        let mut keepers: Vec<(u64, u64)> = newest.iter().map(|(&fp, &b)| (b, fp)).collect();
        keepers.sort();
        victims.extend(keepers);

        let mut bytes_after = bytes_before;
        let mut evicted = Vec::new();
        for (barrier, fp) in victims {
            if bytes_after <= max_bytes {
                break;
            }
            let key = (fp, barrier);
            let entry = index.remove(&key).expect("victim is indexed");
            fs::remove_file(self.root.join(entry_file_name(fp, barrier)))?;
            bytes_after -= entry.file_bytes;
            evicted.push(info(key, &entry));
        }
        Ok(GcReport { bytes_before, bytes_after, evicted, kept: index.len() })
    }

    /// Deletes entries for `fingerprint` — one barrier, or every
    /// barrier when `barrier_ns` is `None`. Returns how many were
    /// removed. Explicit operator surface (`ckpt rm`); like `gc`, it
    /// reports rather than hides what it deletes.
    pub fn remove(&self, fingerprint: u64, barrier_ns: Option<u64>) -> io::Result<Vec<EntryInfo>> {
        let mut index = self.index.lock().unwrap();
        let keys: Vec<(u64, u64)> = index
            .range((fingerprint, 0)..=(fingerprint, u64::MAX))
            .filter(|(&(_, b), _)| barrier_ns.is_none_or(|want| want == b))
            .map(|(&k, _)| k)
            .collect();
        let mut removed = Vec::new();
        for key in keys {
            let entry = index.remove(&key).expect("key is indexed");
            fs::remove_file(self.root.join(entry_file_name(key.0, key.1)))?;
            removed.push(info(key, &entry));
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_file_names_round_trip() {
        let name = entry_file_name(0xdead_beef_1234_5678, 42_000_000_000);
        assert_eq!(parse_entry_file_name(&name), Some((0xdead_beef_1234_5678, 42_000_000_000)));
        assert_eq!(parse_entry_file_name("nope.ckpt"), None);
        assert_eq!(parse_entry_file_name("0123456789abcdef-zzzz.ckpt"), None);
        assert_eq!(parse_entry_file_name("0123456789abcdef-0000000000000001.json"), None);
    }

    #[test]
    fn fault_plan_is_deterministic_and_cycles_modes() {
        let plan = StoreFaultPlan::new(7);
        let a: Vec<StoreFault> = (0..8).map(|i| plan.fault(i, 1000)).collect();
        let b: Vec<StoreFault> = (0..8).map(|i| plan.fault(i, 1000)).collect();
        assert_eq!(a, b);
        assert!(matches!(a[0], StoreFault::TornWrite { .. }));
        assert!(matches!(a[1], StoreFault::BitFlip { .. }));
        assert!(matches!(a[2], StoreFault::Truncate { .. }));
        assert!(matches!(a[3], StoreFault::RenameCrash));
        assert_ne!(
            StoreFaultPlan::new(8).fault(0, 1000),
            a[0],
            "different seeds place offsets differently"
        );
    }

    #[test]
    fn verify_rejects_every_frame_malformation() {
        let payload = b"not-a-checkpoint".to_vec();
        let buf = encode_entry(1, 2, &payload);
        let name = entry_file_name(1, 2);
        // The frame itself is fine; the payload is not a checkpoint.
        let err = verify_entry_bytes(&name, &buf).unwrap_err();
        assert!(err.contains("checkpoint payload rejected"), "{err}");

        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(verify_entry_bytes(&name, &bad).unwrap_err().contains("bad magic"));

        let mut bad = buf.clone();
        bad[9] ^= 0x01;
        assert!(verify_entry_bytes(&name, &bad).unwrap_err().contains("unsupported store version"));

        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(verify_entry_bytes(&name, &bad).unwrap_err().contains("checksum mismatch"));

        let bad = &buf[..buf.len() - 3];
        assert!(verify_entry_bytes(&name, bad).unwrap_err().contains("length mismatch"));

        assert!(verify_entry_bytes(&name, &buf[..10]).unwrap_err().contains("truncated"));
    }
}
