//! Calibrated cost models: real algorithm work → modeled service demands.
//!
//! Our substrate is a simulator, not the authors' Xeon + GTX-1080-class
//! testbed, so per-node constants are calibrated once against the paper's
//! *unloaded means* (Fig 5, Fig 8's standalone bars, Table VI) and then
//! never touched per experiment. Everything the paper reports beyond those
//! anchors — tail inflation, contention deltas, drop percentages, path
//! sums, utilization ratios — *emerges* from the queueing, bandwidth and
//! serialization mechanics of `av-platform`/`av-ros` plus the real
//! per-frame work variation of the algorithms.
//!
//! Anchors used (from the paper):
//!
//! * SSD512 standalone mean 73.45 ms, σ ≈ 1 ms; YOLO 31.23 ms (Fig 8);
//!   SSD512 ≈ 50/50 CPU/GPU, YOLO > 90% GPU (Fig 8).
//! * `ndt_matching`, `ray_ground_filter` means > 20 ms (Fig 5).
//! * CPU ≈ 43–45 W across detectors; GPU 122 / 67 / 117 W (Table VI).

use av_des::{SimDuration, StreamRng};
use av_platform::{CpuConfig, GpuConfig, PowerModel};
use av_vision::{DetectorKind, NetworkDescriptor};

/// One node's CPU cost model: affine in its work units with log-normal
/// per-frame jitter (scheduling noise, allocator behaviour, DVFS — the
/// residual variation not explained by scene complexity).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCost {
    /// Fixed cost per invocation, ms.
    pub base_ms: f64,
    /// Cost per work unit (the unit is node-specific: kilo-points,
    /// Newton iterations, objects, kilo-candidates), ms.
    pub per_unit_ms: f64,
    /// Memory-bandwidth intensity while running (see
    /// [`av_platform::CpuTask`]).
    pub mem_intensity: f64,
    /// σ of the multiplicative log-normal jitter.
    pub jitter_sigma: f64,
}

impl NodeCost {
    /// Samples the service demand for `units` of work.
    pub fn demand(&self, units: f64, rng: &mut StreamRng) -> SimDuration {
        let ms = (self.base_ms + self.per_unit_ms * units) * rng.log_normal(0.0, self.jitter_sigma);
        SimDuration::from_millis_f64(ms)
    }
}

/// A vision detector's three-phase cost: CPU pre-processing, GPU
/// inference (from the network descriptor), CPU post-processing.
#[derive(Debug, Clone, PartialEq)]
pub struct VisionCost {
    /// CPU pre-processing (resize/normalize), ms.
    pub preprocess: NodeCost,
    /// CPU post-processing per kilo-candidate (the ranking/NMS pass).
    pub postprocess: NodeCost,
    /// GPU kernel time per inference.
    pub gpu_kernel: SimDuration,
    /// Host→device copy bytes per inference.
    pub copy_bytes: u64,
    /// GPU dynamic energy per inference, joules.
    pub energy_j: f64,
}

/// The full calibration: per-node cost models + platform parameters.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// `voxel_grid_filter`; unit: kilo-points of raw sweep.
    pub voxel_grid_filter: NodeCost,
    /// `ndt_matching`; unit: Newton iterations of the real matcher.
    pub ndt_matching: NodeCost,
    /// `ray_ground_filter`; unit: kilo-points of raw sweep.
    pub ray_ground_filter: NodeCost,
    /// `euclidean_cluster` CPU phases; unit: kilo-points of non-ground
    /// cloud.
    pub euclidean_cluster: NodeCost,
    /// `euclidean_cluster` GPU phase.
    pub cluster_gpu_kernel: SimDuration,
    /// `euclidean_cluster` GPU energy per sweep, joules.
    pub cluster_gpu_energy_j: f64,
    /// `range_vision_fusion`; unit: objects fused.
    pub range_vision_fusion: NodeCost,
    /// `imm_ukf_pda_tracker`; unit: tracks + measurements.
    pub imm_ukf_pda_tracker: NodeCost,
    /// `naive_motion_predict`; unit: tracks.
    pub naive_motion_predict: NodeCost,
    /// `costmap_generator` (points input); unit: kilo-points.
    pub costmap_points: NodeCost,
    /// `costmap_generator_obj` (objects input); unit: predicted objects.
    pub costmap_objects: NodeCost,
    /// Auxiliary subscriptions (pose caches, GNSS/IMU intake).
    pub auxiliary: NodeCost,
    /// Planning nodes (actuation layer), per invocation.
    pub planning: NodeCost,
    /// `traffic_light_recognition` (extension); unit: lights classified.
    pub traffic_light: NodeCost,
    /// Traffic-light classifier GPU time per frame with ≥1 ROI.
    pub traffic_light_gpu: SimDuration,
    /// `radar_detection` (extension); unit: targets converted.
    pub radar_detection: NodeCost,
    /// GPU peak FLOP/s used to derive network kernel times.
    pub gpu_peak_flops: f64,
    /// GPU memory bandwidth, bytes/s.
    pub gpu_mem_bandwidth: f64,
    /// CPU platform parameters.
    pub cpu: CpuConfig,
    /// GPU platform parameters.
    pub gpu: GpuConfig,
    /// Power model.
    pub power: PowerModel,
}

impl Default for Calibration {
    fn default() -> Calibration {
        Calibration {
            voxel_grid_filter: NodeCost {
                base_ms: 2.0,
                per_unit_ms: 0.8,
                mem_intensity: 0.40,
                jitter_sigma: 0.15,
            },
            ndt_matching: NodeCost {
                base_ms: 8.0,
                per_unit_ms: 3.0,
                mem_intensity: 0.25,
                jitter_sigma: 0.12,
            },
            ray_ground_filter: NodeCost {
                base_ms: 6.0,
                per_unit_ms: 3.0,
                mem_intensity: 0.35,
                jitter_sigma: 0.12,
            },
            euclidean_cluster: NodeCost {
                base_ms: 3.0,
                per_unit_ms: 2.4,
                mem_intensity: 0.40,
                jitter_sigma: 0.22,
            },
            cluster_gpu_kernel: SimDuration::from_millis_f64(3.0),
            cluster_gpu_energy_j: 0.35,
            range_vision_fusion: NodeCost {
                base_ms: 1.5,
                per_unit_ms: 0.15,
                mem_intensity: 0.20,
                jitter_sigma: 0.20,
            },
            imm_ukf_pda_tracker: NodeCost {
                base_ms: 2.0,
                per_unit_ms: 0.12,
                mem_intensity: 0.25,
                jitter_sigma: 0.30,
            },
            naive_motion_predict: NodeCost {
                base_ms: 0.5,
                per_unit_ms: 0.08,
                mem_intensity: 0.15,
                jitter_sigma: 0.20,
            },
            costmap_points: NodeCost {
                base_ms: 3.0,
                per_unit_ms: 1.2,
                mem_intensity: 0.35,
                jitter_sigma: 0.18,
            },
            costmap_objects: NodeCost {
                base_ms: 3.0,
                per_unit_ms: 0.35,
                mem_intensity: 0.60,
                jitter_sigma: 0.35,
            },
            auxiliary: NodeCost {
                base_ms: 0.05,
                per_unit_ms: 0.0,
                mem_intensity: 0.02,
                jitter_sigma: 0.10,
            },
            planning: NodeCost {
                base_ms: 2.0,
                per_unit_ms: 0.2,
                mem_intensity: 0.15,
                jitter_sigma: 0.20,
            },
            traffic_light: NodeCost {
                base_ms: 1.0,
                per_unit_ms: 0.8,
                mem_intensity: 0.20,
                jitter_sigma: 0.20,
            },
            traffic_light_gpu: SimDuration::from_millis_f64(2.5),
            radar_detection: NodeCost {
                base_ms: 0.4,
                per_unit_ms: 0.05,
                mem_intensity: 0.05,
                jitter_sigma: 0.15,
            },
            gpu_peak_flops: 8.9e12,
            gpu_mem_bandwidth: 320e9,
            cpu: CpuConfig {
                cores: 8,
                dispatch_overhead: SimDuration::from_micros(30),
                mem_bandwidth: 1.0,
                contention_exponent: 1.7,
            },
            gpu: GpuConfig::default(),
            power: PowerModel {
                cpu_idle_w: 28.0,
                cpu_peak_w: 95.0,
                cpu_background_util: 0.10,
                gpu_idle_w: 12.0,
            },
        }
    }
}

impl Calibration {
    /// The vision-detector cost for a given network, anchored to Fig 8's
    /// standalone means (SSD512 ≈ 73 ms split ~50/50 CPU/GPU; YOLO ≈ 31 ms
    /// with > 90% on the GPU).
    pub fn vision_cost(&self, kind: DetectorKind) -> VisionCost {
        let network = NetworkDescriptor::for_kind(kind);
        let gpu_seconds = network.gpu_kernel_seconds(self.gpu_peak_flops, self.gpu_mem_bandwidth);
        let (pre_ms, post_per_kcand, jitter) = match kind {
            // SSD's Caffe-era pipeline does heavy CPU pre/post-processing.
            DetectorKind::Ssd512 => (3.0, 1.15, 0.013),
            DetectorKind::Ssd300 => (3.0, 1.15, 0.020),
            // YOLO (darknet) keeps almost everything on the GPU.
            DetectorKind::YoloV3 => (1.0, 0.07, 0.025),
        };
        VisionCost {
            preprocess: NodeCost {
                base_ms: pre_ms,
                per_unit_ms: 0.0,
                mem_intensity: 0.25,
                jitter_sigma: jitter,
            },
            postprocess: NodeCost {
                base_ms: 0.2,
                per_unit_ms: post_per_kcand,
                mem_intensity: 0.60,
                jitter_sigma: jitter,
            },
            gpu_kernel: SimDuration::from_secs_f64(gpu_seconds),
            copy_bytes: network.input_bytes(),
            energy_j: network.energy_per_inference_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_des::RngStreams;

    #[test]
    fn demand_is_affine_in_units() {
        let cost =
            NodeCost { base_ms: 2.0, per_unit_ms: 3.0, mem_intensity: 0.1, jitter_sigma: 0.0 };
        let mut rng = RngStreams::new(1).stream("c");
        let d1 = cost.demand(1.0, &mut rng);
        let d4 = cost.demand(4.0, &mut rng);
        assert_eq!(d1, SimDuration::from_millis(5));
        assert_eq!(d4, SimDuration::from_millis(14));
    }

    #[test]
    fn jitter_spreads_samples() {
        let cost =
            NodeCost { base_ms: 10.0, per_unit_ms: 0.0, mem_intensity: 0.1, jitter_sigma: 0.3 };
        let mut rng = RngStreams::new(2).stream("c");
        let samples: Vec<f64> =
            (0..500).map(|_| cost.demand(0.0, &mut rng).as_millis_f64()).collect();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 8.0 && max > 13.0, "jitter too tight: [{min}, {max}]");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn standalone_vision_anchors() {
        let calib = Calibration::default();
        // SSD512: pre + GPU + post(24.56 kcand) ≈ 73 ms, roughly half GPU.
        let ssd = calib.vision_cost(DetectorKind::Ssd512);
        let cpu_ms = ssd.preprocess.base_ms + 0.2 + 1.15 * 24.564;
        let total = cpu_ms + ssd.gpu_kernel.as_millis_f64();
        assert!((65.0..82.0).contains(&total), "SSD512 standalone {total} ms");
        let gpu_share = ssd.gpu_kernel.as_millis_f64() / total;
        assert!((0.4..0.6).contains(&gpu_share), "SSD512 GPU share {gpu_share}");

        // YOLO: ≈ 31 ms, > 85% GPU.
        let yolo = calib.vision_cost(DetectorKind::YoloV3);
        let cpu_ms = yolo.preprocess.base_ms + 0.2 + 0.07 * 10.647;
        let total = cpu_ms + yolo.gpu_kernel.as_millis_f64();
        assert!((27.0..36.0).contains(&total), "YOLO standalone {total} ms");
        assert!(yolo.gpu_kernel.as_millis_f64() / total > 0.85);

        // SSD300 is the cheapest.
        let ssd300 = calib.vision_cost(DetectorKind::Ssd300);
        let total300 =
            ssd300.preprocess.base_ms + 0.2 + 1.15 * 8.732 + ssd300.gpu_kernel.as_millis_f64();
        assert!(total300 < total, "SSD300 must beat YOLO's total");
    }

    #[test]
    fn gpu_power_anchors() {
        // Mean GPU power over a drive ≈ idle + energy rate. SSD512 at its
        // ~12 fps effective rate lands near 122 W; SSD300 at 15 fps near
        // 67 W; YOLO near 117 W (Table VI).
        let calib = Calibration::default();
        let power = |energy_j: f64, fps: f64| calib.power.gpu_idle_w + energy_j * fps + 3.5;
        let ssd512 = power(calib.vision_cost(DetectorKind::Ssd512).energy_j, 12.2);
        let ssd300 = power(calib.vision_cost(DetectorKind::Ssd300).energy_j, 15.0);
        let yolo = power(calib.vision_cost(DetectorKind::YoloV3).energy_j, 15.0);
        assert!((110.0..135.0).contains(&ssd512), "SSD512 GPU power {ssd512}");
        assert!((58.0..80.0).contains(&ssd300), "SSD300 GPU power {ssd300}");
        assert!((105.0..130.0).contains(&yolo), "YOLO GPU power {yolo}");
        assert!(ssd512 > yolo && yolo > ssd300);
    }
}
