//! Scalar metrics extracted from a finished run.
//!
//! A [`RunReport`] carries full distributions; optimization loops (the
//! scenario-space search in `av-sweep`) and cross-run tables need single
//! numbers. This module is the one place those scalars are defined, so
//! the sweep aggregator and the search objective agree byte-for-byte on
//! what "p99 end-to-end latency" or "drop rate" means.

use crate::stack::{computation_paths, RunReport};
use av_trace::blame::{analyze_blame, BlamePathSpec, Component};
use std::collections::BTreeMap;

/// The perception deadline the paper's Finding 2 is stated against:
/// "the detection results... should be delivered within 100 ms".
pub const DEADLINE_MS: f64 = 100.0;

/// Scalar facts about one run, all derived deterministically from the
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Name of the worst computation path by mean (the paper's
    /// end-to-end definition), `-` when no path completed.
    pub worst_path: String,
    /// Mean end-to-end latency over the worst path, ms.
    pub e2e_mean_ms: f64,
    /// p99 end-to-end latency over the worst path, ms.
    pub e2e_p99_ms: f64,
    /// Peak end-to-end latency over the worst path, ms.
    pub e2e_max_ms: f64,
    /// `e2e_p99_ms / DEADLINE_MS` — how many times over the 100 ms
    /// deadline the tail is. Finding 2's "broken by more than 2×" is
    /// `deadline_factor > 2`.
    pub deadline_factor: f64,
    /// Fraction of end-to-end frames over the 100 ms deadline.
    pub deadline_miss_fraction: f64,
    /// Dropped messages as a percentage of delivered messages, summed
    /// over every subscription.
    pub drop_pct: f64,
    /// Mean CPU power, W.
    pub cpu_w: f64,
    /// Mean GPU power, W.
    pub gpu_w: f64,
    /// Mean localization error, m.
    pub loc_err_m: f64,
    /// Total wall-clock time spent degraded (node down or running on a
    /// fallback), s. Zero for clean runs.
    pub time_degraded_s: f64,
    /// Worst crash-to-first-callback recovery latency, ms. Zero for
    /// clean runs and runs with no crash.
    pub recovery_latency_ms: f64,
    /// Messages dropped by injected edge faults (distinct from
    /// queue-capacity drops counted in `drop_pct`).
    pub fault_lost_msgs: u64,
}

/// Extracts the scalar metrics from a run report.
pub fn run_metrics(report: &RunReport) -> RunMetrics {
    let (worst_path, e2e) = report
        .end_to_end()
        .map(|(name, s)| (name, Some(s)))
        .unwrap_or_else(|| ("-".to_string(), None));
    let deadline_miss_fraction = report
        .recorder
        .path_latencies(&worst_path)
        .map(|d| d.fraction_above(DEADLINE_MS))
        .unwrap_or(0.0);
    let delivered: u64 = report.drops.iter().map(|d| d.delivered).sum();
    let dropped: u64 = report.drops.iter().map(|d| d.dropped).sum();
    let drop_pct = if delivered == 0 { 0.0 } else { 100.0 * dropped as f64 / delivered as f64 };
    let e2e_p99_ms = e2e.as_ref().map_or(0.0, |s| s.p99);
    RunMetrics {
        worst_path,
        e2e_mean_ms: e2e.as_ref().map_or(0.0, |s| s.mean),
        e2e_p99_ms,
        e2e_max_ms: e2e.as_ref().map_or(0.0, |s| s.max),
        deadline_factor: e2e_p99_ms / DEADLINE_MS,
        deadline_miss_fraction,
        drop_pct,
        cpu_w: report.power.cpu_w,
        gpu_w: report.power.gpu_w,
        loc_err_m: report.localization_error_m,
        time_degraded_s: report.fault.as_ref().map_or(0.0, |f| f.time_degraded_s),
        recovery_latency_ms: report.fault.as_ref().map_or(0.0, |f| f.recovery_latency_ms),
        fault_lost_msgs: report.fault.as_ref().map_or(0, |f| f.messages_lost),
    }
}

/// Blame-attribution scalars from a traced run, keyed for sweep columns
/// and search objectives (`blame:<key>`):
///
/// * `critical_path_share_queue` — queue-wait share of the worst path's
///   p99 instance (Finding 1's contention signal),
/// * `critical_path_share_queue_p50` — the same share at the median, so
///   the tail-vs-typical gap is one subtraction away,
/// * `p99_blame_<node>` — each node's share of the worst path's p99
///   instance (COLA-style tail blame),
/// * `energy_per_frame_<node>_mj` — mean attributed energy per worst-path
///   instance, by node.
///
/// Errors when the run was not traced (`RunConfig::with_trace`) or when a
/// blame chain cannot be reconstructed.
pub fn blame_scalars(report: &RunReport) -> Result<BTreeMap<String, f64>, String> {
    let trace =
        report.trace.as_ref().ok_or("blame scalars need a traced run (RunConfig::with_trace)")?;
    let specs: Vec<BlamePathSpec> = computation_paths()
        .into_iter()
        .map(|p| BlamePathSpec::new(p.name, p.sink_node, p.source))
        .collect();
    let blame = analyze_blame(trace, &specs)?;
    let mut out = BTreeMap::new();
    let Some((worst, _)) = report.end_to_end() else { return Ok(out) };
    let Some(path) = blame.path(&worst) else { return Ok(out) };
    out.insert(
        "critical_path_share_queue".to_string(),
        path.component_share_at(99.0, Component::QueueWait),
    );
    out.insert(
        "critical_path_share_queue_p50".to_string(),
        path.component_share_at(50.0, Component::QueueWait),
    );
    if let Some(inst) = path.instance_at_percentile(99.0) {
        let total = inst.total_ns().max(1);
        for (node, ns) in inst.node_ns() {
            out.insert(format!("p99_blame_{node}"), ns as f64 / total as f64);
        }
    }
    for (node, mj) in path.mean_energy_mj_by_node() {
        out.insert(format!("energy_per_frame_{node}_mj"), mj);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{run_drive, RunConfig, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn metrics_agree_with_the_report_distributions() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let report = run_drive(&config, &RunConfig::seconds(5.0));
        let m = run_metrics(&report);
        let (name, e2e) = report.end_to_end().expect("paths completed");
        assert_eq!(m.worst_path, name);
        assert_eq!(m.e2e_p99_ms, e2e.p99);
        assert_eq!(m.e2e_mean_ms, e2e.mean);
        assert_eq!(m.deadline_factor, e2e.p99 / DEADLINE_MS);
        assert!(m.deadline_miss_fraction >= 0.0 && m.deadline_miss_fraction <= 1.0);
        assert!(m.drop_pct >= 0.0);
        assert!(m.cpu_w > 0.0 && m.gpu_w > 0.0);
        assert_eq!(m.time_degraded_s, 0.0);
        assert_eq!(m.recovery_latency_ms, 0.0);
        assert_eq!(m.fault_lost_msgs, 0);
    }

    #[test]
    fn blame_scalars_require_a_trace_and_shares_sum_to_one() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let untraced = run_drive(&config, &RunConfig::seconds(5.0));
        assert!(blame_scalars(&untraced).is_err(), "untraced runs cannot be attributed");

        let report = run_drive(&config, &RunConfig::seconds(5.0).with_trace());
        let m = blame_scalars(&report).expect("traced run attributes");
        let q99 = m["critical_path_share_queue"];
        let q50 = m["critical_path_share_queue_p50"];
        assert!((0.0..=1.0).contains(&q99), "queue share {q99}");
        assert!((0.0..=1.0).contains(&q50), "queue share {q50}");
        let blame_sum: f64 =
            m.iter().filter(|(k, _)| k.starts_with("p99_blame_")).map(|(_, v)| v).sum();
        assert!((blame_sum - 1.0).abs() < 1e-9, "p99 blame shares sum to 1, got {blame_sum}");
        assert!(m.keys().any(|k| k.starts_with("energy_per_frame_")), "energy scalars present");
    }
}
