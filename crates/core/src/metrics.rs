//! Scalar metrics extracted from a finished run.
//!
//! A [`RunReport`] carries full distributions; optimization loops (the
//! scenario-space search in `av-sweep`) and cross-run tables need single
//! numbers. This module is the one place those scalars are defined, so
//! the sweep aggregator and the search objective agree byte-for-byte on
//! what "p99 end-to-end latency" or "drop rate" means.

use crate::stack::RunReport;

/// The perception deadline the paper's Finding 2 is stated against:
/// "the detection results... should be delivered within 100 ms".
pub const DEADLINE_MS: f64 = 100.0;

/// Scalar facts about one run, all derived deterministically from the
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Name of the worst computation path by mean (the paper's
    /// end-to-end definition), `-` when no path completed.
    pub worst_path: String,
    /// Mean end-to-end latency over the worst path, ms.
    pub e2e_mean_ms: f64,
    /// p99 end-to-end latency over the worst path, ms.
    pub e2e_p99_ms: f64,
    /// Peak end-to-end latency over the worst path, ms.
    pub e2e_max_ms: f64,
    /// `e2e_p99_ms / DEADLINE_MS` — how many times over the 100 ms
    /// deadline the tail is. Finding 2's "broken by more than 2×" is
    /// `deadline_factor > 2`.
    pub deadline_factor: f64,
    /// Fraction of end-to-end frames over the 100 ms deadline.
    pub deadline_miss_fraction: f64,
    /// Dropped messages as a percentage of delivered messages, summed
    /// over every subscription.
    pub drop_pct: f64,
    /// Mean CPU power, W.
    pub cpu_w: f64,
    /// Mean GPU power, W.
    pub gpu_w: f64,
    /// Mean localization error, m.
    pub loc_err_m: f64,
    /// Total wall-clock time spent degraded (node down or running on a
    /// fallback), s. Zero for clean runs.
    pub time_degraded_s: f64,
    /// Worst crash-to-first-callback recovery latency, ms. Zero for
    /// clean runs and runs with no crash.
    pub recovery_latency_ms: f64,
    /// Messages dropped by injected edge faults (distinct from
    /// queue-capacity drops counted in `drop_pct`).
    pub fault_lost_msgs: u64,
}

/// Extracts the scalar metrics from a run report.
pub fn run_metrics(report: &RunReport) -> RunMetrics {
    let (worst_path, e2e) = report
        .end_to_end()
        .map(|(name, s)| (name, Some(s)))
        .unwrap_or_else(|| ("-".to_string(), None));
    let deadline_miss_fraction = report
        .recorder
        .path_latencies(&worst_path)
        .map(|d| d.fraction_above(DEADLINE_MS))
        .unwrap_or(0.0);
    let delivered: u64 = report.drops.iter().map(|d| d.delivered).sum();
    let dropped: u64 = report.drops.iter().map(|d| d.dropped).sum();
    let drop_pct = if delivered == 0 { 0.0 } else { 100.0 * dropped as f64 / delivered as f64 };
    let e2e_p99_ms = e2e.as_ref().map_or(0.0, |s| s.p99);
    RunMetrics {
        worst_path,
        e2e_mean_ms: e2e.as_ref().map_or(0.0, |s| s.mean),
        e2e_p99_ms,
        e2e_max_ms: e2e.as_ref().map_or(0.0, |s| s.max),
        deadline_factor: e2e_p99_ms / DEADLINE_MS,
        deadline_miss_fraction,
        drop_pct,
        cpu_w: report.power.cpu_w,
        gpu_w: report.power.gpu_w,
        loc_err_m: report.localization_error_m,
        time_degraded_s: report.fault.as_ref().map_or(0.0, |f| f.time_degraded_s),
        recovery_latency_ms: report.fault.as_ref().map_or(0.0, |f| f.recovery_latency_ms),
        fault_lost_msgs: report.fault.as_ref().map_or(0, |f| f.messages_lost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{run_drive, RunConfig, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn metrics_agree_with_the_report_distributions() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let report = run_drive(&config, &RunConfig::seconds(5.0));
        let m = run_metrics(&report);
        let (name, e2e) = report.end_to_end().expect("paths completed");
        assert_eq!(m.worst_path, name);
        assert_eq!(m.e2e_p99_ms, e2e.p99);
        assert_eq!(m.e2e_mean_ms, e2e.mean);
        assert_eq!(m.deadline_factor, e2e.p99 / DEADLINE_MS);
        assert!(m.deadline_miss_fraction >= 0.0 && m.deadline_miss_fraction <= 1.0);
        assert!(m.drop_pct >= 0.0);
        assert!(m.cpu_w > 0.0 && m.gpu_w > 0.0);
        assert_eq!(m.time_degraded_s, 0.0);
        assert_eq!(m.recovery_latency_ms, 0.0);
        assert_eq!(m.fault_lost_msgs, 0);
    }
}
