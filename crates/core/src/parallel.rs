//! A scoped-thread run pool for the experiment matrix.
//!
//! Every characterization drive is a deterministic discrete-event
//! simulation over virtual time — runs share no mutable state, so the
//! matrix is embarrassingly parallel at the run level. This module fans
//! independent tasks out over `std::thread::scope` workers (no external
//! thread-pool dependency) while preserving input order, so parallel
//! results are byte-identical to sequential ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `tasks` through `f` on up to `jobs` worker threads, returning
/// results in input order.
///
/// `jobs <= 1` (or a single task) runs inline on the caller's thread —
/// the sequential path spawns nothing, so `--jobs 1` is exactly the old
/// behavior. Worker threads pull tasks from a shared atomic cursor, so
/// uneven task durations load-balance automatically.
///
/// Determinism: `f` receives the same task values in either mode; as
/// long as `f` itself is deterministic (every `run_drive` is), the
/// output vector is identical for any `jobs`.
///
/// # Panics
///
/// Propagates a panic from any worker after the scope joins.
pub fn parallel_map<T, R, F>(tasks: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_streamed(tasks, jobs, f, |_, _| {})
}

/// [`parallel_map`], additionally invoking `sink(index, &result)` for
/// every task *in input order* as soon as the result is available — the
/// streaming seam the scenario service uses to ship sweep-point results
/// while later points are still simulating.
///
/// The sink runs on the caller's thread. Results may complete out of
/// order on the workers; a reorder buffer holds them until every
/// earlier index has been emitted, so the sink-call sequence is
/// identical at any `jobs` level (determinism of streamed output).
pub fn parallel_map_streamed<T, R, F, S>(tasks: Vec<T>, jobs: usize, f: F, mut sink: S) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    S: FnMut(usize, &R),
{
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let r = f(t);
                sink(i, &r);
                r
            })
            .collect();
    }
    let workers = jobs.min(tasks.len());
    let n = tasks.len();
    // Hand out owned tasks through per-slot Options; the atomic cursor
    // assigns each index to exactly one worker.
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        tasks.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i].lock().unwrap().take().expect("task taken twice");
                if tx.send((i, f(task))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Drain on the caller's thread *inside* the scope, so the sink
        // observes results while workers are still running.
        let mut frontier = 0;
        for _ in 0..n {
            let (i, r) = rx.recv().expect("worker died before finishing its task");
            out[i] = Some(r);
            while frontier < n {
                match &out[frontier] {
                    Some(r) => sink(frontier, r),
                    None => break,
                }
                frontier += 1;
            }
        }
    });

    out.into_iter().map(|r| r.expect("worker died before finishing its task")).collect()
}

/// Resolves a `--jobs` request against the machine: `None` means "use
/// every available core", clamped to at least 1.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let tasks: Vec<u64> = (0..50).collect();
        let got = parallel_map(tasks.clone(), 8, |t| t * 3);
        assert_eq!(got, tasks.iter().map(|t| t * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let tasks: Vec<u64> = (0..20).collect();
        let seq = parallel_map(tasks.clone(), 1, |t| t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let par = parallel_map(tasks, 7, |t| t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        assert_eq!(seq, par);
    }

    #[test]
    fn more_jobs_than_tasks() {
        assert_eq!(parallel_map(vec![1, 2], 16, |t| t + 1), vec![2, 3]);
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(parallel_map(Vec::<u8>::new(), 4, |t| t), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![9], 4, |t| t * 2), vec![18]);
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(Some(0)), 1);
        assert_eq!(effective_jobs(Some(5)), 5);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn streamed_sink_fires_in_input_order_at_any_jobs_level() {
        let tasks: Vec<u64> = (0..40).collect();
        for jobs in [1, 3, 8] {
            let mut seen: Vec<(usize, u64)> = Vec::new();
            let got =
                parallel_map_streamed(tasks.clone(), jobs, |t| t * 7, |i, r| seen.push((i, *r)));
            assert_eq!(got, tasks.iter().map(|t| t * 7).collect::<Vec<_>>());
            let want: Vec<(usize, u64)> = tasks.iter().map(|&t| (t as usize, t * 7)).collect();
            assert_eq!(seen, want, "sink order diverged at jobs={jobs}");
        }
    }

    #[test]
    fn uneven_durations_load_balance() {
        // Tasks of wildly different cost still come back in order.
        let tasks: Vec<u32> = vec![200_000, 1, 1, 150_000, 1, 90_000, 1, 1];
        let spin = |n: u32| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(u64::from(i)).rotate_left(7);
            }
            (n, acc)
        };
        let got = parallel_map(tasks.clone(), 4, spin);
        let want: Vec<(u32, u64)> = tasks.into_iter().map(spin).collect();
        assert_eq!(got, want);
    }
}
