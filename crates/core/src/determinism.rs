//! Golden determinism hashes over run outputs.
//!
//! Every drive is a deterministic discrete-event simulation, so its key
//! outputs — latency samples, drop counts, path sums, device statistics,
//! finding verdicts — must be *bit-identical* regardless of how many
//! worker threads executed the matrix or which kernel implementation
//! (reference or optimized) ran underneath. This module folds those
//! outputs into a single FNV-1a 64-bit hash; the determinism harness
//! asserts the hash is byte-identical across `--jobs 1` / `--jobs 8`
//! and across kernel swaps.
//!
//! Floats are hashed via [`f64::to_bits`], so the check is exact bit
//! equality, not an epsilon comparison. Hash-map contents are folded in
//! sorted key order so the hash never depends on iteration order.

use crate::experiments::{ExperimentMatrix, IsolationResult};
use crate::findings::FindingsReport;
use crate::stack::RunReport;
use av_trace::{TraceData, TraceEvent};

/// Incremental FNV-1a 64-bit hasher (the classic offset basis / prime
/// pair), used instead of `DefaultHasher` because its output is stable
/// across Rust releases — golden values can live in tests and docs.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: Fnv64::OFFSET_BASIS }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Fnv64::PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string (bytes plus a length terminator, so `("ab","c")`
    /// and `("a","bc")` hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_u64(s.len() as u64);
    }

    /// Folds a slice of floats, preserving order.
    pub fn write_f64_slice(&mut self, vs: &[f64]) {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes every key output of one drive: per-node latency and queue-wait
/// samples (in arrival order), per-path latency samples, subscription
/// drop statistics, CPU/GPU device statistics, power, and the
/// localization metrics.
pub fn run_hash(report: &RunReport) -> u64 {
    let mut h = Fnv64::new();
    fold_run(&mut h, report);
    h.finish()
}

fn fold_run(h: &mut Fnv64, report: &RunReport) {
    h.write_str(report.detector.name());
    h.write_f64(report.elapsed.as_secs_f64());

    let rec = &report.recorder;
    for node in rec.nodes() {
        h.write_str(&node);
        if let Some(d) = rec.node_latencies(&node) {
            h.write_f64_slice(d.samples());
        }
        if let Some(d) = rec.node_queue_wait(&node) {
            h.write_f64_slice(d.samples());
        }
    }
    for path in rec.paths() {
        h.write_str(&path);
        if let Some(d) = rec.path_latencies(&path) {
            h.write_f64_slice(d.samples());
        }
    }
    let mut observed: Vec<(&(String, String), &u64)> = rec.observed_drops().iter().collect();
    observed.sort();
    for ((topic, node), count) in observed {
        h.write_str(topic);
        h.write_str(node);
        h.write_u64(*count);
    }

    // Subscription-level delivery/drop counters (Table III inputs).
    let mut drops = report.drops.clone();
    drops.sort_by(|a, b| (&a.topic, &a.node).cmp(&(&b.topic, &b.node)));
    for d in &drops {
        h.write_str(&d.topic);
        h.write_str(&d.node);
        h.write_u64(d.delivered);
        h.write_u64(d.dropped);
    }

    // Device statistics (Table V/VI inputs).
    h.write_u64(report.cpu.tasks_completed);
    h.write_f64(report.cpu.total_busy.as_secs_f64());
    h.write_f64(report.cpu.total_wait.as_secs_f64());
    h.write_f64(report.cpu.max_wait.as_secs_f64());
    let mut cpu_clients: Vec<_> = report.cpu.busy_by_client.iter().collect();
    cpu_clients.sort_by(|a, b| a.0.cmp(b.0));
    for (client, busy) in cpu_clients {
        h.write_str(client);
        h.write_f64(busy.as_secs_f64());
    }
    h.write_u64(report.cores as u64);
    h.write_u64(report.gpu.jobs_completed);
    h.write_f64(report.gpu.total_busy.as_secs_f64());
    h.write_f64(report.gpu.total_energy_j);
    h.write_f64(report.gpu.total_wait.as_secs_f64());
    h.write_f64(report.gpu.max_wait.as_secs_f64());
    let mut gpu_clients: Vec<_> = report.gpu.busy_by_client.iter().collect();
    gpu_clients.sort_by(|a, b| a.0.cmp(b.0));
    for (client, busy) in gpu_clients {
        h.write_str(client);
        h.write_f64(busy.as_secs_f64());
    }

    h.write_f64(report.power.cpu_w);
    h.write_f64(report.power.gpu_w);
    h.write_f64(report.localization_error_m);
    h.write_f64(report.localization_error_final_m);

    // The structured trace, when one was recorded. Folding the events and
    // samples makes the golden hash cover the whole observability layer:
    // a traced run must produce a bit-identical timeline at every `--jobs`
    // level. Untraced runs skip this block, so pre-trace golden values
    // stay valid.
    if let Some(trace) = &report.trace {
        fold_trace(h, trace);
    }
    if let Some(fault) = &report.fault {
        h.write_u64(fault.crashes);
        h.write_u64(fault.heartbeat_misses);
        h.write_u64(fault.restarts);
        h.write_u64(fault.fallback_enters);
        h.write_u64(fault.fallback_exits);
        h.write_u64(fault.messages_lost);
        h.write_u64(fault.messages_duplicated);
        h.write_f64(fault.time_degraded_s);
        h.write_f64(fault.recovery_latency_ms);
    }
}

fn fold_trace(h: &mut Fnv64, trace: &TraceData) {
    h.write_u64(trace.sample_interval.as_nanos());
    // The scheduling-policy header is folded only when present, so
    // FIFO runs (which never set it) keep their pre-policy hashes.
    if let Some(policy) = &trace.policy {
        h.write_str("sched_policy");
        h.write_str(policy);
    }
    h.write_u64(trace.nodes.len() as u64);
    for node in &trace.nodes {
        h.write_str(node);
    }
    h.write_u64(trace.subscriptions.len() as u64);
    for (topic, node) in &trace.subscriptions {
        h.write_str(topic);
        h.write_str(node);
    }
    h.write_u64(trace.events.len() as u64);
    for event in &trace.events {
        match event {
            TraceEvent::Callback {
                node,
                topic,
                arrival,
                started,
                completed,
                lineage,
                published,
            } => {
                h.write_u64(0);
                h.write_str(node);
                h.write_str(topic);
                h.write_u64(arrival.as_nanos());
                h.write_u64(started.as_nanos());
                h.write_u64(completed.as_nanos());
                h.write_u64(lineage.len() as u64);
                for (source, stamp) in lineage {
                    h.write_str(source.name());
                    h.write_u64(stamp.as_nanos());
                }
                h.write_u64(published.len() as u64);
                for topic in published {
                    h.write_str(topic);
                }
            }
            TraceEvent::Enqueued { topic, node, depth, time }
            | TraceEvent::Dequeued { topic, node, depth, time }
            | TraceEvent::Dropped { topic, node, depth, time } => {
                h.write_u64(match event {
                    TraceEvent::Enqueued { .. } => 1,
                    TraceEvent::Dequeued { .. } => 2,
                    _ => 3,
                });
                h.write_str(topic);
                h.write_str(node);
                h.write_u64(*depth as u64);
                h.write_u64(time.as_nanos());
            }
            TraceEvent::Fault { kind, node, info, time } => {
                h.write_u64(4);
                h.write_u64(u64::from(kind.code()));
                h.write_str(node);
                h.write_str(info);
                h.write_u64(time.as_nanos());
            }
            TraceEvent::SchedDecision { node, topic, considered, key, time } => {
                h.write_u64(5);
                h.write_str(node);
                h.write_str(topic);
                h.write_u64(*considered);
                h.write_u64(*key as u64);
                h.write_u64(time.as_nanos());
            }
        }
    }
    h.write_u64(trace.samples.len() as u64);
    for s in &trace.samples {
        h.write_u64(s.time.as_nanos());
        h.write_u64(s.queue_depths.len() as u64);
        for &d in &s.queue_depths {
            h.write_u64(d);
        }
        h.write_f64_slice(&s.node_busy_frac);
        h.write_f64(s.cpu_util);
        h.write_f64(s.gpu_util);
        h.write_f64(s.cpu_w);
        h.write_f64(s.gpu_w);
    }
}

/// Hashes Fig 8 isolation rows, preserving row order.
pub fn isolation_hash(rows: &[IsolationResult]) -> u64 {
    let mut h = Fnv64::new();
    fold_isolation(&mut h, rows);
    h.finish()
}

fn fold_isolation(h: &mut Fnv64, rows: &[IsolationResult]) {
    h.write_u64(rows.len() as u64);
    for r in rows {
        h.write_str(r.detector.name());
        h.write_f64(r.isolated_mean);
        h.write_f64(r.isolated_std);
        h.write_f64(r.full_mean);
        h.write_f64(r.full_std);
        h.write_f64(r.gpu_share);
    }
}

/// Hashes the finding verdicts (the booleans the paper's five findings
/// reduce to) plus the quantities behind them.
pub fn findings_hash(findings: &FindingsReport) -> u64 {
    let mut h = Fnv64::new();
    for (node, a, b, change) in &findings.tail_inflation {
        h.write_str(node);
        h.write_f64(*a);
        h.write_f64(*b);
        h.write_f64(*change);
    }
    for (detector, p99, frac) in &findings.e2e_tail {
        h.write_str(detector.name());
        h.write_f64(*p99);
        h.write_f64(*frac);
    }
    for (detector, cpu, gpu) in &findings.utilization {
        h.write_str(detector.name());
        h.write_f64(*cpu);
        h.write_f64(*gpu);
    }
    fold_isolation(&mut h, &findings.isolation);
    for verdict in [
        findings.finding1_contention(0.2),
        findings.finding2_deadline_broken(),
        findings.finding3_not_saturated(0.7, 0.8),
        findings.finding4_isolation_underestimates(),
        findings.finding5_variability(1.5),
    ] {
        h.write_u64(u64::from(verdict));
    }
    h.finish()
}

/// The golden hash of a whole experiment matrix: every full-stack run,
/// the isolation rows, and the finding verdicts, folded in a fixed
/// order. This is the value `repro` prints and the determinism tests
/// compare across `--jobs` settings and kernel implementations.
pub fn matrix_hash(matrix: &ExperimentMatrix) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(matrix.reports.len() as u64);
    for report in &matrix.reports {
        fold_run(&mut h, report);
    }
    fold_isolation(&mut h, &matrix.isolation);
    let findings = FindingsReport::from_runs(&matrix.reports, matrix.isolation.clone());
    h.write_u64(findings_hash(&findings));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{run_drive, RunConfig, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn string_framing_distinguishes_boundaries() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn same_run_same_hash_different_seed_different_hash() {
        let run = RunConfig::seconds(3.0);
        let config = StackConfig::smoke_test(DetectorKind::Ssd300);
        let h1 = run_hash(&run_drive(&config, &run));
        let h2 = run_hash(&run_drive(&config, &run));
        assert_eq!(h1, h2, "identical configs must hash identically");

        let mut other = StackConfig::smoke_test(DetectorKind::Ssd300);
        other.seed ^= 1;
        let h3 = run_hash(&run_drive(&other, &run));
        assert_ne!(h1, h3, "a different seed must change the golden hash");
    }

    #[test]
    fn tracing_extends_the_hash_without_perturbing_other_outputs() {
        let config = StackConfig::smoke_test(DetectorKind::Ssd300);
        let untraced = run_drive(&config, &RunConfig::seconds(3.0));
        let traced = run_drive(&config, &RunConfig::seconds(3.0).with_trace());
        assert!(traced.trace.is_some());
        assert_ne!(
            run_hash(&untraced),
            run_hash(&traced),
            "the recorded trace must fold into the golden hash"
        );
        // Tracing is read-only: with the trace stripped, a traced run must
        // hash identically to an untraced one.
        let mut stripped = traced.clone();
        stripped.trace = None;
        assert_eq!(
            run_hash(&untraced),
            run_hash(&stripped),
            "enabling the tracer must not perturb any non-trace output"
        );
    }
}
