//! The declarative sweep specification.
//!
//! A sweep is a grid over stack and scenario knobs — detector, traffic
//! density, sensor rates, queue capacity, seed, blackout schedule —
//! optionally extended with explicit extra points. The spec expands into
//! an ordered list of [`SweepPoint`]s (cartesian product in a fixed axis
//! order, explicit points appended), each of which knows how to override
//! a base [`StackConfig`]. Specs are written as JSON and loaded through
//! the same hermetic reader ([`av_trace::json`]) that backs the trace
//! tools, so a sweep file, like everything else in the build, needs no
//! external dependency.

use av_core::fault::FaultPlan;
use av_core::stack::{Blackout, SchedPolicyKind, StackConfig};
use av_ros::Source;
use av_vision::DetectorKind;
use std::fmt::Write as _;

/// Which base world the sweep runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldKind {
    /// The paper's 8-minute urban drive ([`StackConfig::paper_default`]).
    Paper,
    /// The tiny CI world ([`StackConfig::smoke_test`]).
    Smoke,
}

impl WorldKind {
    /// Parses a world name (`"paper"` or `"smoke"`), as it appears in
    /// sweep specs and scenario-service requests.
    pub fn parse(s: &str) -> Result<WorldKind, String> {
        match s {
            "paper" => Ok(WorldKind::Paper),
            "smoke" => Ok(WorldKind::Smoke),
            other => Err(format!("unknown world {other:?} (expected \"paper\" or \"smoke\")")),
        }
    }

    /// The world's name as written in specs.
    pub fn name(self) -> &'static str {
        match self {
            WorldKind::Paper => "paper",
            WorldKind::Smoke => "smoke",
        }
    }

    /// The base configuration this world starts every point from.
    /// SSD512 is the paper's headline detector; point overrides replace
    /// it as needed.
    pub fn base_config(self) -> StackConfig {
        match self {
            WorldKind::Paper => StackConfig::paper_default(DetectorKind::Ssd512),
            WorldKind::Smoke => StackConfig::smoke_test(DetectorKind::Ssd512),
        }
    }
}

/// A named blackout schedule: zero or more sensor outage windows.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackoutSpec {
    /// The schedule as written in the spec (e.g. `lidar:4-7+camera:4-7`,
    /// or `none`). Used in labels and artifact names.
    pub label: String,
    /// The outage windows.
    pub windows: Vec<Blackout>,
}

impl BlackoutSpec {
    /// Parses a schedule string: `none`, or `+`-separated
    /// `source:from-to` windows with times in seconds, e.g.
    /// `lidar:4-7+camera:4-7`.
    pub fn parse(s: &str) -> Result<BlackoutSpec, String> {
        let label = s.to_string();
        if s == "none" {
            return Ok(BlackoutSpec { label, windows: Vec::new() });
        }
        let mut windows = Vec::new();
        for part in s.split('+') {
            let (source, window) = part
                .split_once(':')
                .ok_or_else(|| format!("blackout {part:?}: expected source:from-to"))?;
            let source = parse_source(source)?;
            let (from, to) = window
                .split_once('-')
                .ok_or_else(|| format!("blackout {part:?}: expected from-to window"))?;
            let from_s: f64 =
                from.parse().map_err(|_| format!("blackout {part:?}: bad start {from:?}"))?;
            let to_s: f64 = to.parse().map_err(|_| format!("blackout {part:?}: bad end {to:?}"))?;
            let blackout = Blackout { source, from_s, to_s };
            blackout.validate().map_err(|e| format!("blackout {part:?}: {e}"))?;
            windows.push(blackout);
        }
        Ok(BlackoutSpec { label, windows })
    }
}

/// A named fault plan: the fault DSL string plus its parsed form.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// The plan as written in the spec (e.g. `crash:ndt_matching@4`, or
    /// `none`). Used in labels and artifact names.
    pub label: String,
    /// The parsed plan.
    pub plan: FaultPlan,
}

impl FaultPlanSpec {
    /// Parses a fault plan string (see [`FaultPlan::parse`] for the
    /// DSL): `none`, or `+`-separated faults like
    /// `crash:ndt_matching@4+drop:/image_raw>vision_detection:0.3:2-6`.
    pub fn parse(s: &str) -> Result<FaultPlanSpec, String> {
        Ok(FaultPlanSpec { label: s.to_string(), plan: FaultPlan::parse(s)? })
    }
}

fn parse_source(s: &str) -> Result<Source, String> {
    const ALL: [Source; 5] =
        [Source::Lidar, Source::Camera, Source::Gnss, Source::Imu, Source::Radar];
    ALL.into_iter()
        .find(|src| src.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown sensor source {s:?}"))
}

fn parse_detector(s: &str) -> Result<DetectorKind, String> {
    DetectorKind::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown detector {s:?} (expected SSD512, SSD300 or YOLOv3)"))
}

/// One point of the expanded sweep: the base config plus the axis
/// overrides that are in effect there. `None` means "leave the base
/// value alone".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepPoint {
    /// Position in expansion order; stable across `--jobs` levels.
    pub ordinal: usize,
    /// Detector override.
    pub detector: Option<DetectorKind>,
    /// Scenario traffic-density override (1.0 = the paper's street).
    pub traffic_density: Option<f64>,
    /// Camera frame-rate override, Hz.
    pub camera_rate_hz: Option<f64>,
    /// LiDAR sweep-rate override, Hz.
    pub lidar_rate_hz: Option<f64>,
    /// Subscription queue-capacity override.
    pub queue_capacity: Option<usize>,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Blackout schedule override.
    pub blackouts: Option<BlackoutSpec>,
    /// Fault plan override.
    pub faults: Option<FaultPlanSpec>,
    /// Supervision restart initial-backoff override, seconds.
    pub restart_backoff_s: Option<f64>,
    /// Callback scheduling-policy override.
    pub sched_policy: Option<SchedPolicyKind>,
}

impl SweepPoint {
    /// Stable short identifier used in artifact file names: `p00`,
    /// `p01`, …
    pub fn id(&self) -> String {
        format!("p{:02}", self.ordinal)
    }

    /// Human-readable list of the overrides in effect, or `base` when
    /// there are none.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(d) = self.detector {
            parts.push(format!("detector={}", d.name()));
        }
        if let Some(v) = self.traffic_density {
            parts.push(format!("density={v}"));
        }
        if let Some(v) = self.camera_rate_hz {
            parts.push(format!("camera_hz={v}"));
        }
        if let Some(v) = self.lidar_rate_hz {
            parts.push(format!("lidar_hz={v}"));
        }
        if let Some(v) = self.queue_capacity {
            parts.push(format!("qcap={v}"));
        }
        if let Some(v) = self.seed {
            parts.push(format!("seed={v}"));
        }
        if let Some(b) = &self.blackouts {
            parts.push(format!("blackouts={}", b.label));
        }
        if let Some(f) = &self.faults {
            parts.push(format!("faults={}", f.label));
        }
        if let Some(v) = self.restart_backoff_s {
            parts.push(format!("backoff={v}"));
        }
        if let Some(v) = self.sched_policy {
            parts.push(format!("sched={}", v.name()));
        }
        if parts.is_empty() {
            "base".to_string()
        } else {
            parts.join(" ")
        }
    }

    /// Parses a point from a JSON object value (the `points` entries of a
    /// sweep spec, or the `point` entries of a search trajectory).
    pub fn from_json_value(value: &av_trace::json::JsonValue) -> Result<SweepPoint, String> {
        use av_trace::json::JsonValue;
        let members = match value {
            JsonValue::Obj(members) => members,
            _ => return Err("point must be a JSON object".to_string()),
        };
        let mut point = SweepPoint::default();
        for (key, value) in members {
            let num =
                || value.as_f64().ok_or_else(|| format!("point key {key:?} must be a number"));
            let text =
                || value.as_str().ok_or_else(|| format!("point key {key:?} must be a string"));
            match key.as_str() {
                "detector" => point.detector = Some(parse_detector(text()?)?),
                "traffic_density" => point.traffic_density = Some(num()?),
                "camera_rate_hz" => point.camera_rate_hz = Some(num()?),
                "lidar_rate_hz" => point.lidar_rate_hz = Some(num()?),
                "queue_capacity" => {
                    point.queue_capacity = Some(value.as_u64().ok_or_else(|| {
                        "point key \"queue_capacity\" must be an integer".to_string()
                    })? as usize);
                }
                "seed" => {
                    point.seed = Some(
                        value
                            .as_u64()
                            .ok_or_else(|| "point key \"seed\" must be an integer".to_string())?,
                    );
                }
                "blackouts" => point.blackouts = Some(BlackoutSpec::parse(text()?)?),
                "faults" => point.faults = Some(FaultPlanSpec::parse(text()?)?),
                "restart_backoff_s" => point.restart_backoff_s = Some(num()?),
                "sched_policy" => point.sched_policy = Some(SchedPolicyKind::parse(text()?)?),
                other => return Err(format!("unknown point key {other:?}")),
            }
        }
        Ok(point)
    }

    /// Renders the overrides as a JSON object, inverse of
    /// [`SweepPoint::from_json_value`]. Floats print in shortest
    /// round-trip form, so parse-back is bit-exact.
    pub fn to_json(&self) -> String {
        let mut fields = Vec::new();
        if let Some(d) = self.detector {
            fields.push(format!("\"detector\": \"{}\"", d.name()));
        }
        if let Some(v) = self.traffic_density {
            fields.push(format!("\"traffic_density\": {v:?}"));
        }
        if let Some(v) = self.camera_rate_hz {
            fields.push(format!("\"camera_rate_hz\": {v:?}"));
        }
        if let Some(v) = self.lidar_rate_hz {
            fields.push(format!("\"lidar_rate_hz\": {v:?}"));
        }
        if let Some(v) = self.queue_capacity {
            fields.push(format!("\"queue_capacity\": {v}"));
        }
        if let Some(v) = self.seed {
            fields.push(format!("\"seed\": {v}"));
        }
        if let Some(b) = &self.blackouts {
            fields.push(format!("\"blackouts\": \"{}\"", b.label));
        }
        if let Some(f) = &self.faults {
            fields.push(format!("\"faults\": \"{}\"", f.label));
        }
        if let Some(v) = self.restart_backoff_s {
            fields.push(format!("\"restart_backoff_s\": {v:?}"));
        }
        if let Some(v) = self.sched_policy {
            fields.push(format!("\"sched_policy\": \"{}\"", v.name()));
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// Applies the overrides to a base configuration.
    pub fn apply(&self, base: &StackConfig) -> StackConfig {
        let mut config = base.clone();
        if let Some(d) = self.detector {
            config.detector = d;
        }
        if let Some(v) = self.traffic_density {
            config.scenario.traffic_density = v;
        }
        if let Some(v) = self.camera_rate_hz {
            config.camera.rate_hz = v;
        }
        if let Some(v) = self.lidar_rate_hz {
            config.lidar.rate_hz = v;
        }
        if let Some(v) = self.queue_capacity {
            config.queue_capacity = v;
        }
        if let Some(v) = self.seed {
            config.seed = v;
        }
        if let Some(b) = &self.blackouts {
            config.blackouts = b.windows.clone();
        }
        if let Some(f) = &self.faults {
            config.faults = f.plan.clone();
        }
        if let Some(v) = self.restart_backoff_s {
            config.supervision.restart_initial_backoff_s = v;
        }
        if let Some(v) = self.sched_policy {
            config.sched_policy = v;
        }
        config
    }
}

/// A declarative sweep: grid axes crossed in a fixed order, plus
/// explicit extra points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name; prefixes artifact files and report headers.
    pub name: String,
    /// Base world.
    pub world: WorldKind,
    /// Per-point drive duration override, seconds (a CLI `--duration`
    /// wins over this).
    pub duration_s: Option<f64>,
    /// Detector axis (empty = base detector only).
    pub detectors: Vec<DetectorKind>,
    /// Traffic-density axis.
    pub traffic_density: Vec<f64>,
    /// Camera-rate axis, Hz.
    pub camera_rate_hz: Vec<f64>,
    /// LiDAR-rate axis, Hz.
    pub lidar_rate_hz: Vec<f64>,
    /// Queue-capacity axis.
    pub queue_capacity: Vec<usize>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Blackout-schedule axis.
    pub blackouts: Vec<BlackoutSpec>,
    /// Fault-plan axis.
    pub faults: Vec<FaultPlanSpec>,
    /// Restart initial-backoff axis, seconds.
    pub restart_backoff_s: Vec<f64>,
    /// Scheduling-policy axis.
    pub sched_policy: Vec<SchedPolicyKind>,
    /// Explicit extra points, appended after the grid.
    pub extra_points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// An empty spec (single base point) with the given name and world.
    pub fn new(name: impl Into<String>, world: WorldKind) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            world,
            duration_s: None,
            detectors: Vec::new(),
            traffic_density: Vec::new(),
            camera_rate_hz: Vec::new(),
            lidar_rate_hz: Vec::new(),
            queue_capacity: Vec::new(),
            seeds: Vec::new(),
            blackouts: Vec::new(),
            faults: Vec::new(),
            restart_backoff_s: Vec::new(),
            sched_policy: Vec::new(),
            extra_points: Vec::new(),
        }
    }

    /// The base configuration every point starts from.
    pub fn base_config(&self) -> StackConfig {
        self.world.base_config()
    }

    /// Expands the grid (fixed axis order: detector, density, camera
    /// rate, lidar rate, queue capacity, seed, blackouts, faults,
    /// restart backoff, scheduling policy — outermost first) and appends
    /// the explicit
    /// points. Ordinals number the
    /// result sequentially, so the expansion is deterministic and
    /// independent of how the runner later schedules it.
    ///
    /// An entirely empty grid contributes the single base point —
    /// except when explicit points are given, in which case a
    /// points-only spec runs exactly those points.
    pub fn points(&self) -> Vec<SweepPoint> {
        fn axis<T: Clone>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().cloned().map(Some).collect()
            }
        }
        let grid_empty = self.detectors.is_empty()
            && self.traffic_density.is_empty()
            && self.camera_rate_hz.is_empty()
            && self.lidar_rate_hz.is_empty()
            && self.queue_capacity.is_empty()
            && self.seeds.is_empty()
            && self.blackouts.is_empty()
            && self.faults.is_empty()
            && self.restart_backoff_s.is_empty()
            && self.sched_policy.is_empty();
        let mut points = Vec::new();
        if grid_empty && !self.extra_points.is_empty() {
            for extra in &self.extra_points {
                let mut point = extra.clone();
                point.ordinal = points.len();
                points.push(point);
            }
            return points;
        }
        for detector in axis(&self.detectors) {
            for traffic_density in axis(&self.traffic_density) {
                for camera_rate_hz in axis(&self.camera_rate_hz) {
                    for lidar_rate_hz in axis(&self.lidar_rate_hz) {
                        for queue_capacity in axis(&self.queue_capacity) {
                            for seed in axis(&self.seeds) {
                                for blackouts in axis(&self.blackouts) {
                                    for faults in axis(&self.faults) {
                                        for restart_backoff_s in axis(&self.restart_backoff_s) {
                                            for sched_policy in axis(&self.sched_policy) {
                                                points.push(SweepPoint {
                                                    ordinal: points.len(),
                                                    detector,
                                                    traffic_density,
                                                    camera_rate_hz,
                                                    lidar_rate_hz,
                                                    queue_capacity,
                                                    seed,
                                                    blackouts: blackouts.clone(),
                                                    faults: faults.clone(),
                                                    restart_backoff_s,
                                                    sched_policy,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for extra in &self.extra_points {
            let mut point = extra.clone();
            point.ordinal = points.len();
            points.push(point);
        }
        points
    }

    /// Renders the expanded point list (for `sweep --list`).
    pub fn describe(&self) -> String {
        let points = self.points();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {:?}: {} point(s), world {}",
            self.name,
            points.len(),
            self.world.name()
        );
        for p in &points {
            let _ = writeln!(out, "  {}  {}", p.id(), p.label());
        }
        out
    }

    /// Validates axis values (positive rates, capacity ≥ 1, positive
    /// duration). Called by [`SweepSpec::from_json`]; builders
    /// constructing specs in code can call it directly.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("sweep name must not be empty".to_string());
        }
        if let Some(d) = self.duration_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("duration_s must be positive and finite, got {d}"));
            }
        }
        let points = self.points();
        for p in &points {
            for v in p.traffic_density.iter().chain(&p.camera_rate_hz).chain(&p.lidar_rate_hz) {
                // `1e999` in a spec parses to +inf — reject it along with
                // zero and negatives rather than simulating forever.
                if !v.is_finite() || *v <= 0.0 {
                    return Err(format!(
                        "point {}: rates and density must be positive and finite",
                        p.id()
                    ));
                }
            }
            if p.queue_capacity == Some(0) {
                return Err(format!("point {}: queue_capacity must be >= 1", p.id()));
            }
            if let Some(v) = p.restart_backoff_s {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "point {}: restart_backoff_s must be positive and finite",
                        p.id()
                    ));
                }
            }
        }
        Ok(())
    }
}

mod from_json {
    use super::*;
    use av_trace::json::{self, JsonValue};

    fn as_obj(value: &JsonValue, what: &str) -> Result<Vec<(String, JsonValue)>, String> {
        match value {
            JsonValue::Obj(members) => Ok(members.clone()),
            _ => Err(format!("{what} must be a JSON object")),
        }
    }

    fn f64_list(value: &JsonValue, what: &str) -> Result<Vec<f64>, String> {
        value
            .as_array()
            .ok_or_else(|| format!("{what} must be an array of numbers"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| format!("{what} must contain only numbers")))
            .collect()
    }

    fn u64_list(value: &JsonValue, what: &str) -> Result<Vec<u64>, String> {
        value
            .as_array()
            .ok_or_else(|| format!("{what} must be an array of integers"))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| format!("{what} must contain only integers")))
            .collect()
    }

    fn str_list<'v>(value: &'v JsonValue, what: &str) -> Result<Vec<&'v str>, String> {
        value
            .as_array()
            .ok_or_else(|| format!("{what} must be an array of strings"))?
            .iter()
            .map(|v| v.as_str().ok_or_else(|| format!("{what} must contain only strings")))
            .collect()
    }

    fn parse_grid(spec: &mut SweepSpec, grid: &JsonValue) -> Result<(), String> {
        for (key, value) in as_obj(grid, "grid")? {
            match key.as_str() {
                "detector" => {
                    spec.detectors = str_list(&value, "grid.detector")?
                        .into_iter()
                        .map(parse_detector)
                        .collect::<Result<_, _>>()?;
                }
                "traffic_density" => {
                    spec.traffic_density = f64_list(&value, "grid.traffic_density")?;
                }
                "camera_rate_hz" => spec.camera_rate_hz = f64_list(&value, "grid.camera_rate_hz")?,
                "lidar_rate_hz" => spec.lidar_rate_hz = f64_list(&value, "grid.lidar_rate_hz")?,
                "queue_capacity" => {
                    spec.queue_capacity = u64_list(&value, "grid.queue_capacity")?
                        .into_iter()
                        .map(|v| v as usize)
                        .collect();
                }
                "seed" => spec.seeds = u64_list(&value, "grid.seed")?,
                "blackouts" => {
                    spec.blackouts = str_list(&value, "grid.blackouts")?
                        .into_iter()
                        .map(BlackoutSpec::parse)
                        .collect::<Result<_, _>>()?;
                }
                "faults" => {
                    spec.faults = str_list(&value, "grid.faults")?
                        .into_iter()
                        .map(FaultPlanSpec::parse)
                        .collect::<Result<_, _>>()?;
                }
                "restart_backoff_s" => {
                    spec.restart_backoff_s = f64_list(&value, "grid.restart_backoff_s")?;
                }
                "sched_policy" => {
                    spec.sched_policy = str_list(&value, "grid.sched_policy")?
                        .into_iter()
                        .map(SchedPolicyKind::parse)
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown grid axis {other:?}")),
            }
        }
        Ok(())
    }

    /// Parses a sweep spec from its JSON text.
    pub fn parse_spec(text: &str) -> Result<SweepSpec, String> {
        let doc = json::parse(text).map_err(|e| format!("sweep spec is not valid JSON: {e}"))?;
        let mut name = None;
        let mut spec = SweepSpec::new("", WorldKind::Paper);
        for (key, value) in as_obj(&doc, "sweep spec")? {
            match key.as_str() {
                "name" => {
                    name = Some(
                        value
                            .as_str()
                            .ok_or_else(|| "name must be a string".to_string())?
                            .to_string(),
                    );
                }
                "world" => {
                    spec.world = WorldKind::parse(
                        value.as_str().ok_or_else(|| "world must be a string".to_string())?,
                    )?;
                }
                "duration_s" => {
                    spec.duration_s = Some(
                        value.as_f64().ok_or_else(|| "duration_s must be a number".to_string())?,
                    );
                }
                "grid" => parse_grid(&mut spec, &value)?,
                "points" => {
                    spec.extra_points = value
                        .as_array()
                        .ok_or_else(|| "points must be an array".to_string())?
                        .iter()
                        .map(SweepPoint::from_json_value)
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown sweep key {other:?}")),
            }
        }
        spec.name = name.ok_or("sweep spec must have a name")?;
        spec.validate()?;
        Ok(spec)
    }
}

impl SweepSpec {
    /// Parses a spec from JSON text (see `specs/` for examples).
    pub fn from_json(text: &str) -> Result<SweepSpec, String> {
        from_json::parse_spec(text)
    }

    /// The tier-1 gate's sweep: 4 smoke-world points, detector ×
    /// camera rate, a few seconds each.
    pub fn builtin_smoke() -> SweepSpec {
        SweepSpec {
            duration_s: Some(8.0),
            detectors: vec![DetectorKind::Ssd512, DetectorKind::YoloV3],
            camera_rate_hz: vec![10.0, 20.0],
            ..SweepSpec::new("smoke", WorldKind::Smoke)
        }
    }

    /// The E-sweep parameter study: detector × camera rate on the paper
    /// world — 12 points locating SSD512's camera-queue drop cliff.
    pub fn builtin_detector_camera() -> SweepSpec {
        SweepSpec {
            duration_s: Some(60.0),
            detectors: DetectorKind::ALL.to_vec(),
            camera_rate_hz: vec![10.0, 15.0, 20.0, 30.0],
            ..SweepSpec::new("detector_camera", WorldKind::Paper)
        }
    }

    /// The tier-1 scheduler gate's sweep: smoke world, FIFO vs EDF over
    /// two camera rates — 4 points exercising the policy plumbing
    /// end-to-end without paper-scale cost.
    pub fn builtin_sched_smoke() -> SweepSpec {
        SweepSpec {
            duration_s: Some(8.0),
            camera_rate_hz: vec![10.0, 20.0],
            sched_policy: vec![SchedPolicyKind::Fifo, SchedPolicyKind::Edf],
            ..SweepSpec::new("sched_smoke", WorldKind::Smoke)
        }
    }

    /// Named builtin lookup (for `sweep --builtin`).
    pub fn builtin(name: &str) -> Option<SweepSpec> {
        match name {
            "smoke" => Some(SweepSpec::builtin_smoke()),
            "detector-camera" => Some(SweepSpec::builtin_detector_camera()),
            "sched-smoke" => Some(SweepSpec::builtin_sched_smoke()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_a_cartesian_product_in_fixed_order() {
        let spec = SweepSpec {
            detectors: vec![DetectorKind::Ssd512, DetectorKind::YoloV3],
            camera_rate_hz: vec![10.0, 20.0],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let points = spec.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].id(), "p00");
        assert_eq!(points[0].detector, Some(DetectorKind::Ssd512));
        assert_eq!(points[0].camera_rate_hz, Some(10.0));
        // Innermost axis varies fastest.
        assert_eq!(points[1].detector, Some(DetectorKind::Ssd512));
        assert_eq!(points[1].camera_rate_hz, Some(20.0));
        assert_eq!(points[3].detector, Some(DetectorKind::YoloV3));
        assert_eq!(points[3].label(), "detector=YOLOv3 camera_hz=20");
    }

    #[test]
    fn apply_overrides_only_named_knobs() {
        let spec = SweepSpec::new("t", WorldKind::Smoke);
        let base = spec.base_config();
        let point = SweepPoint {
            camera_rate_hz: Some(30.0),
            queue_capacity: Some(4),
            blackouts: Some(BlackoutSpec::parse("gnss:2-5").unwrap()),
            ..SweepPoint::default()
        };
        let config = point.apply(&base);
        assert_eq!(config.camera.rate_hz, 30.0);
        assert_eq!(config.queue_capacity, 4);
        assert_eq!(config.blackouts.len(), 1);
        assert_eq!(config.blackouts[0].source, Source::Gnss);
        assert_eq!(config.lidar.rate_hz, base.lidar.rate_hz);
        assert_eq!(config.detector, base.detector);
    }

    #[test]
    fn blackout_spec_parses_combined_windows() {
        let spec = BlackoutSpec::parse("lidar:4-7+camera:4.5-7").unwrap();
        assert_eq!(spec.windows.len(), 2);
        assert_eq!(spec.windows[0].source, Source::Lidar);
        assert_eq!(spec.windows[0].from_s, 4.0);
        assert_eq!(spec.windows[1].source, Source::Camera);
        assert_eq!(spec.windows[1].from_s, 4.5);
        assert!(BlackoutSpec::parse("none").unwrap().windows.is_empty());
        assert!(BlackoutSpec::parse("lidar:7-4").is_err());
        assert!(BlackoutSpec::parse("sonar:1-2").is_err());
    }

    #[test]
    fn fault_axes_expand_apply_and_validate() {
        let spec = SweepSpec {
            faults: vec![
                FaultPlanSpec::parse("none").unwrap(),
                FaultPlanSpec::parse("crash:ndt_matching@4").unwrap(),
            ],
            restart_backoff_s: vec![0.25, 1.0],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let points = spec.points();
        assert_eq!(points.len(), 4);
        // Backoff is the innermost axis.
        assert_eq!(points[0].faults.as_ref().unwrap().label, "none");
        assert_eq!(points[0].restart_backoff_s, Some(0.25));
        assert_eq!(points[1].restart_backoff_s, Some(1.0));
        assert_eq!(points[2].faults.as_ref().unwrap().label, "crash:ndt_matching@4");
        assert_eq!(points[3].label(), "faults=crash:ndt_matching@4 backoff=1");

        let config = points[3].apply(&spec.base_config());
        assert_eq!(config.faults.label(), "crash:ndt_matching@4");
        assert_eq!(config.supervision.restart_initial_backoff_s, 1.0);
        let clean = points[0].apply(&spec.base_config());
        assert!(clean.faults.is_empty());

        assert!(FaultPlanSpec::parse("crash:ndt_matching").is_err());
        let bad =
            SweepSpec { restart_backoff_s: vec![-1.0], ..SweepSpec::new("t", WorldKind::Smoke) };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fault_point_json_round_trips() {
        let point = SweepPoint {
            faults: Some(
                FaultPlanSpec::parse("crash:ndt_matching@4+slow:euclidean_cluster:x2:1-5").unwrap(),
            ),
            restart_backoff_s: Some(0.75),
            ..SweepPoint::default()
        };
        let json = point.to_json();
        let parsed = SweepPoint::from_json_value(&av_trace::json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.faults, point.faults);
        assert_eq!(parsed.restart_backoff_s, point.restart_backoff_s);
    }

    #[test]
    fn sched_policy_axis_expands_applies_and_round_trips() {
        let spec = SweepSpec {
            camera_rate_hz: vec![10.0],
            sched_policy: vec![SchedPolicyKind::Fifo, SchedPolicyKind::Edf],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let points = spec.points();
        assert_eq!(points.len(), 2);
        // The policy axis is the innermost: it varies fastest.
        assert_eq!(points[0].sched_policy, Some(SchedPolicyKind::Fifo));
        assert_eq!(points[1].sched_policy, Some(SchedPolicyKind::Edf));
        assert_eq!(points[1].label(), "camera_hz=10 sched=edf");

        let config = points[1].apply(&spec.base_config());
        assert_eq!(config.sched_policy, SchedPolicyKind::Edf);
        let base = points[0].apply(&spec.base_config());
        assert_eq!(base.sched_policy, SchedPolicyKind::Fifo);

        let json = points[1].to_json();
        assert!(json.contains("\"sched_policy\": \"edf\""));
        let parsed = SweepPoint::from_json_value(&av_trace::json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.sched_policy, Some(SchedPolicyKind::Edf));

        // Grid parsing, including the clean rejection of unknown names.
        let text = r#"{"name": "s", "world": "smoke",
                       "grid": {"sched_policy": ["fifo", "priority", "edf", "chain"]}}"#;
        assert_eq!(SweepSpec::from_json(text).unwrap().points().len(), 4);
        let bad = r#"{"name": "s", "grid": {"sched_policy": ["lifo"]}}"#;
        let err = SweepSpec::from_json(bad).unwrap_err();
        assert!(err.contains("unknown sched_policy"), "got: {err}");
        let bad_point = r#"{"name": "s", "points": [{"sched_policy": 3}]}"#;
        assert!(SweepSpec::from_json(bad_point).is_err());
    }

    #[test]
    fn json_roundtrip_covers_grid_and_points() {
        let text = r#"{
            "name": "demo",
            "world": "smoke",
            "duration_s": 10.0,
            "grid": {
                "detector": ["SSD512", "YOLOv3"],
                "camera_rate_hz": [10, 20],
                "seed": [2020, 2021]
            },
            "points": [
                {"detector": "SSD300", "blackouts": "lidar:4-7+camera:4-7"}
            ]
        }"#;
        let spec = SweepSpec::from_json(text).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.world, WorldKind::Smoke);
        assert_eq!(spec.duration_s, Some(10.0));
        let points = spec.points();
        assert_eq!(points.len(), 2 * 2 * 2 + 1);
        let last = points.last().unwrap();
        assert_eq!(last.detector, Some(DetectorKind::Ssd300));
        assert_eq!(last.blackouts.as_ref().unwrap().windows.len(), 2);
        assert_eq!(last.ordinal, 8);
    }

    #[test]
    fn json_rejects_unknown_keys_and_bad_values() {
        assert!(SweepSpec::from_json("{\"world\": \"smoke\"}").is_err(), "missing name");
        assert!(SweepSpec::from_json("{\"name\": \"x\", \"bogus\": 1}").is_err());
        assert!(
            SweepSpec::from_json("{\"name\": \"x\", \"grid\": {\"warp\": [1]}}").is_err(),
            "unknown axis"
        );
        assert!(
            SweepSpec::from_json("{\"name\": \"x\", \"grid\": {\"queue_capacity\": [0]}}").is_err(),
            "capacity 0"
        );
        assert!(
            SweepSpec::from_json("{\"name\": \"x\", \"points\": [{\"camera_rate_hz\": -5}]}")
                .is_err(),
            "negative rate"
        );
    }

    #[test]
    fn builtins_expand_to_expected_sizes() {
        assert_eq!(SweepSpec::builtin_smoke().points().len(), 4);
        assert_eq!(SweepSpec::builtin_detector_camera().points().len(), 12);
        assert!(SweepSpec::builtin("smoke").is_some());
        assert!(SweepSpec::builtin("nope").is_none());
        // A points-only spec runs exactly its points — no implicit base.
        let spec = SweepSpec {
            extra_points: vec![SweepPoint::default(), SweepPoint::default()],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        assert_eq!(spec.points().len(), 2);
        let listing = SweepSpec::builtin_smoke().describe();
        assert!(listing.contains("4 point(s)"));
        assert!(listing.contains("p03"));
    }
}
