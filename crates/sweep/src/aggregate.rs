//! Order-independent aggregation of sweep results.
//!
//! The aggregator turns a batch of [`PointResult`]s into text artifacts:
//! a cross-point summary table (+CSV), per-point report files carrying
//! the paper tables (Fig 6 path latencies, Table III drops, Table VI
//! power, localization error), a knob-effect report flagging which axes
//! move tail latency and drop rate, and a golden-hash manifest. Results
//! are sorted by expansion ordinal before anything is rendered, so the
//! artifacts are a pure function of the result *set* — the schedule that
//! produced them (jobs count, completion order) cannot leak in.

use crate::runner::PointResult;
use crate::spec::SweepSpec;
use av_core::determinism::Fnv64;
use av_core::experiments::power_cells;
use av_core::metrics::run_metrics;
use av_profiling::Table;
use std::fmt::Write as _;

/// Everything the aggregator renders, as `(file name, contents)`-style
/// strings ready to be written under `results/sweep/`.
#[derive(Debug, Clone)]
pub struct SweepArtifacts {
    /// Cross-point summary table, text.
    pub summary_txt: String,
    /// The same summary as CSV.
    pub summary_csv: String,
    /// Knob-effect report: which axes move tail latency / drop rate.
    pub effects_txt: String,
    /// Per-point reports: `(point id, contents)`, in ordinal order.
    pub per_point: Vec<(String, String)>,
    /// Golden-hash manifest (JSON).
    pub hashes_json: String,
    /// Golden hash over every point's `(id, label, run_hash)`.
    pub sweep_hash: u64,
}

/// The per-point facts the summary and effect analysis work from.
struct PointFacts {
    id: String,
    label: String,
    /// Effective value of every axis at this point (override or base).
    axes: Vec<(&'static str, String)>,
    worst_path: String,
    e2e_mean_ms: f64,
    e2e_p99_ms: f64,
    drop_pct: f64,
    cpu_w: f64,
    gpu_w: f64,
    loc_err_m: f64,
    time_degraded_s: f64,
    recovery_latency_ms: f64,
    run_hash: u64,
}

fn facts(spec: &SweepSpec, result: &PointResult) -> PointFacts {
    let base = spec.base_config();
    let config = result.point.apply(&base);
    let m = run_metrics(&result.report);
    PointFacts {
        id: result.point.id(),
        label: result.point.label(),
        axes: vec![
            ("detector", config.detector.name().to_string()),
            ("traffic_density", format!("{}", config.scenario.traffic_density)),
            ("camera_rate_hz", format!("{}", config.camera.rate_hz)),
            ("lidar_rate_hz", format!("{}", config.lidar.rate_hz)),
            ("queue_capacity", format!("{}", config.queue_capacity)),
            ("seed", format!("{}", config.seed)),
            (
                "blackouts",
                result.point.blackouts.as_ref().map_or_else(
                    || {
                        if config.blackouts.is_empty() {
                            "none".to_string()
                        } else {
                            "base".to_string()
                        }
                    },
                    |b| b.label.clone(),
                ),
            ),
            (
                "faults",
                result.point.faults.as_ref().map_or_else(
                    || {
                        if config.faults.is_empty() {
                            "none".to_string()
                        } else {
                            "base".to_string()
                        }
                    },
                    |f| f.label.clone(),
                ),
            ),
            ("restart_backoff_s", format!("{}", config.supervision.restart_initial_backoff_s)),
        ],
        e2e_mean_ms: m.e2e_mean_ms,
        e2e_p99_ms: m.e2e_p99_ms,
        worst_path: m.worst_path,
        drop_pct: m.drop_pct,
        cpu_w: m.cpu_w,
        gpu_w: m.gpu_w,
        loc_err_m: m.loc_err_m,
        time_degraded_s: m.time_degraded_s,
        recovery_latency_ms: m.recovery_latency_ms,
        run_hash: result.run_hash,
    }
}

fn summary_table(all: &[PointFacts]) -> Table {
    let mut table = Table::with_headers(&[
        "Point",
        "Detector",
        "Density",
        "Cam Hz",
        "LiDAR Hz",
        "Qcap",
        "Seed",
        "Blackouts",
        "Faults",
        "Backoff s",
        "Worst path",
        "E2E mean ms",
        "E2E p99 ms",
        "Drop %",
        "CPU W",
        "GPU W",
        "Loc err m",
        "Degraded s",
        "Rec ms",
        "Run hash",
    ]);
    for f in all {
        let axis = |name: &str| {
            f.axes.iter().find(|(n, _)| *n == name).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        table.add_row(vec![
            f.id.clone(),
            axis("detector"),
            axis("traffic_density"),
            axis("camera_rate_hz"),
            axis("lidar_rate_hz"),
            axis("queue_capacity"),
            axis("seed"),
            axis("blackouts"),
            axis("faults"),
            axis("restart_backoff_s"),
            f.worst_path.clone(),
            format!("{:.2}", f.e2e_mean_ms),
            format!("{:.2}", f.e2e_p99_ms),
            format!("{:.2}", f.drop_pct),
            format!("{:.2}", f.cpu_w),
            format!("{:.2}", f.gpu_w),
            format!("{:.3}", f.loc_err_m),
            format!("{:.3}", f.time_degraded_s),
            format!("{:.1}", f.recovery_latency_ms),
            format!("{:#018x}", f.run_hash),
        ]);
    }
    table
}

/// Relative spread above which an axis is flagged as moving tail
/// latency (20 % of the smallest group mean).
const TAIL_FLAG_REL: f64 = 0.20;
/// Absolute drop-rate spread (percentage points) above which an axis is
/// flagged as moving the drop rate.
const DROP_FLAG_PP: f64 = 1.0;

fn effects_report(spec_name: &str, all: &[PointFacts]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# knob effects — sweep {spec_name:?}\n");
    let _ = writeln!(
        out,
        "Per-axis means over the {} sweep points (grouping by the axis's\n\
         effective value, all other knobs pooled). An axis is flagged when\n\
         it spreads mean tail latency by more than {:.0} % or the drop rate\n\
         by more than {} percentage point(s).\n",
        all.len(),
        TAIL_FLAG_REL * 100.0,
        DROP_FLAG_PP
    );
    let axis_count = all.first().map_or(0, |f| f.axes.len());
    let mut flagged = Vec::new();
    for axis_idx in 0..axis_count {
        let name = all[0].axes[axis_idx].0;
        // Group by effective value, preserving first-seen (ordinal) order.
        let mut groups: Vec<(&str, Vec<&PointFacts>)> = Vec::new();
        for f in all {
            let value = f.axes[axis_idx].1.as_str();
            match groups.iter_mut().find(|(v, _)| *v == value) {
                Some((_, members)) => members.push(f),
                None => groups.push((value, vec![f])),
            }
        }
        if groups.len() < 2 {
            continue;
        }
        let _ = writeln!(out, "## {name}\n");
        let mut table = Table::with_headers(&["Value", "Points", "Mean e2e p99 ms", "Mean drop %"]);
        let mut p99s = Vec::new();
        let mut drops = Vec::new();
        for (value, members) in &groups {
            let n = members.len() as f64;
            let p99 = members.iter().map(|f| f.e2e_p99_ms).sum::<f64>() / n;
            let drop = members.iter().map(|f| f.drop_pct).sum::<f64>() / n;
            p99s.push(p99);
            drops.push(drop);
            table.add_row(vec![
                value.to_string(),
                members.len().to_string(),
                format!("{p99:.2}"),
                format!("{drop:.2}"),
            ]);
        }
        let _ = writeln!(out, "{table}");
        let (p99_min, p99_max) =
            p99s.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
        let (drop_min, drop_max) =
            drops.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
        let tail_moves = p99_min > 0.0 && (p99_max - p99_min) / p99_min > TAIL_FLAG_REL;
        let drop_moves = drop_max - drop_min > DROP_FLAG_PP;
        if tail_moves {
            let line = format!(
                "{name} moves tail latency: mean e2e p99 spans {p99_min:.2}-{p99_max:.2} ms"
            );
            let _ = writeln!(out, "FLAG: {line}");
            flagged.push(line);
        }
        if drop_moves {
            let line =
                format!("{name} moves drop rate: mean drop % spans {drop_min:.2}-{drop_max:.2}");
            let _ = writeln!(out, "FLAG: {line}");
            flagged.push(line);
        }
        if !tail_moves && !drop_moves {
            let _ = writeln!(out, "no significant effect at this sweep's resolution");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "## verdict\n");
    if flagged.is_empty() {
        let _ = writeln!(out, "no knob moved tail latency or drop rate beyond the thresholds");
    } else {
        for line in &flagged {
            let _ = writeln!(out, "- {line}");
        }
    }
    out
}

fn point_report(spec_name: &str, facts: &PointFacts, result: &PointResult) -> String {
    let report = &result.report;
    let mut out = String::new();
    let _ = writeln!(out, "# sweep {spec_name:?} — point {} ({})\n", facts.id, facts.label);
    for (name, value) in &facts.axes {
        let _ = writeln!(out, "{name} = {value}");
    }
    let _ = writeln!(out, "run hash = {:#018x}\n", facts.run_hash);
    let _ = writeln!(out, "## path latencies (Fig 6)\n\n{}", report.path_table());
    let _ = writeln!(out, "## queue drops (Table III)\n\n{}", report.drop_table());
    let [cpu, gpu, total] = power_cells(report);
    let _ = writeln!(out, "## power (Table VI)\n");
    let _ = writeln!(out, "CPU {cpu} W, GPU {gpu} W, total {total} W\n");
    let _ = writeln!(
        out,
        "localization error: {:.3} m mean, {:.3} m final",
        report.localization_error_m, report.localization_error_final_m
    );
    if let Some(fault) = &report.fault {
        let _ = writeln!(out, "\n## fault plane (E-fault)\n");
        let _ = writeln!(
            out,
            "crashes {} | heartbeat misses {} | restarts {} | fallback enters/exits {}/{}",
            fault.crashes,
            fault.heartbeat_misses,
            fault.restarts,
            fault.fallback_enters,
            fault.fallback_exits
        );
        let _ = writeln!(
            out,
            "messages lost {} | duplicated {} | time degraded {:.3} s | recovery latency {:.1} ms",
            fault.messages_lost,
            fault.messages_duplicated,
            fault.time_degraded_s,
            fault.recovery_latency_ms
        );
    }
    out
}

fn hashes_json(spec_name: &str, all: &[PointFacts], sweep_hash: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"sweep\": \"{spec_name}\",");
    let _ = writeln!(out, "  \"sweep_hash\": \"{sweep_hash:#018x}\",");
    out.push_str("  \"points\": [\n");
    for (i, f) in all.iter().enumerate() {
        let comma = if i + 1 < all.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"label\": \"{}\", \"hash\": \"{:#018x}\"}}{comma}",
            f.id, f.label, f.run_hash
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Aggregates a finished sweep into its artifacts. The input order does
/// not matter — results are sorted by point ordinal first.
pub fn aggregate(spec: &SweepSpec, results: &[PointResult]) -> SweepArtifacts {
    let mut ordered: Vec<&PointResult> = results.iter().collect();
    ordered.sort_by_key(|r| r.point.ordinal);
    let all: Vec<PointFacts> = ordered.iter().map(|r| facts(spec, r)).collect();

    let mut hasher = Fnv64::new();
    for f in &all {
        hasher.write_str(&f.id);
        hasher.write_str(&f.label);
        hasher.write_u64(f.run_hash);
    }
    let sweep_hash = hasher.finish();

    let table = summary_table(&all);
    let mut summary_txt = String::new();
    let _ = writeln!(
        summary_txt,
        "# sweep {:?} — {} point(s), golden hash {:#018x}\n",
        spec.name,
        all.len(),
        sweep_hash
    );
    let _ = writeln!(summary_txt, "{table}");

    SweepArtifacts {
        summary_csv: table.to_csv(),
        effects_txt: effects_report(&spec.name, &all),
        per_point: all
            .iter()
            .zip(&ordered)
            .map(|(f, r)| (f.id.clone(), point_report(&spec.name, f, r)))
            .collect(),
        hashes_json: hashes_json(&spec.name, &all, sweep_hash),
        sweep_hash,
        summary_txt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_sweep;
    use crate::spec::WorldKind;
    use av_core::stack::RunConfig;
    use av_vision::DetectorKind;

    fn small_sweep() -> (SweepSpec, Vec<PointResult>) {
        let spec = SweepSpec {
            duration_s: Some(4.0),
            detectors: vec![DetectorKind::Ssd512, DetectorKind::YoloV3],
            camera_rate_hz: vec![10.0, 30.0],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let results = run_sweep(&spec, &RunConfig::default(), 2);
        (spec, results)
    }

    #[test]
    fn aggregation_is_input_order_independent() {
        let (spec, mut results) = small_sweep();
        let forward = aggregate(&spec, &results);
        results.reverse();
        let reversed = aggregate(&spec, &results);
        assert_eq!(forward.summary_txt, reversed.summary_txt);
        assert_eq!(forward.summary_csv, reversed.summary_csv);
        assert_eq!(forward.effects_txt, reversed.effects_txt);
        assert_eq!(forward.hashes_json, reversed.hashes_json);
        assert_eq!(forward.sweep_hash, reversed.sweep_hash);
        assert_eq!(forward.per_point.len(), reversed.per_point.len());
        for (a, b) in forward.per_point.iter().zip(&reversed.per_point) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn artifacts_carry_the_paper_tables_and_axes() {
        let (spec, results) = small_sweep();
        let artifacts = aggregate(&spec, &results);
        assert_eq!(artifacts.per_point.len(), 4);
        assert!(artifacts.summary_txt.contains("E2E p99 ms"));
        assert!(artifacts.summary_txt.contains("SSD512"));
        assert!(artifacts.summary_csv.lines().count() == 5, "header + 4 points");
        // Effects report groups both varied axes; fixed axes are omitted.
        assert!(artifacts.effects_txt.contains("## detector"));
        assert!(artifacts.effects_txt.contains("## camera_rate_hz"));
        assert!(!artifacts.effects_txt.contains("## seed"));
        let p0 = &artifacts.per_point[0].1;
        assert!(p0.contains("path latencies (Fig 6)"));
        assert!(p0.contains("queue drops (Table III)"));
        assert!(p0.contains("power (Table VI)"));
        assert!(artifacts.hashes_json.contains("\"sweep_hash\""));
    }
}
