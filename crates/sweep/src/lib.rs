//! Batched scenario sweeps over the AV stack.
//!
//! The paper's findings come from one 8-minute drive; its own method
//! section stresses exercising the system on *varied* situations. This
//! crate turns the single-run engine ([`av_core::stack::run_drive`])
//! into a parameter-study harness:
//!
//! * [`spec`] — a declarative sweep specification: a grid over scenario
//!   knobs (traffic density, sensor rates), stack knobs (detector, queue
//!   capacity, blackout schedules) and seeds, plus explicit extra
//!   points, loadable from dependency-free JSON.
//! * [`runner`] — expands the grid and schedules it over
//!   [`av_core::parallel::parallel_map`], stamping every run with its
//!   golden determinism hash.
//! * [`aggregate`] — folds the results into cross-point artifacts
//!   (summary table + CSV, per-point paper tables, a knob-effect report,
//!   a hash manifest) in a way that is provably independent of
//!   completion order.
//! * [`objective`] — the scalar a search extracts from each run,
//!   shared with the sweep aggregator through [`av_core::metrics`].
//! * [`search`] — the optimizer layer: deterministic boundary finding
//!   (where does the 100 ms deadline first break 2×?) and seeded
//!   worst-case successive halving, both batch-iterative over the same
//!   runner and replayable from their own trajectory artifacts.
//!
//! Everything downstream of the spec is a pure function of it, so a
//! sweep — or a whole search trajectory — is as reproducible as a
//! single run: same spec, same bytes, at any `--jobs` level.

#![warn(missing_docs)]

pub mod aggregate;
pub mod objective;
pub mod runner;
pub mod search;
pub mod spec;

pub use aggregate::{aggregate, SweepArtifacts};
pub use objective::Objective;
pub use runner::{run_sweep, PointResult};
pub use search::{
    run_search, run_search_with, search_artifacts, BatchRecord, BisectSpec, EvalRecord,
    HalvingSpec, Knob, KnobRange, PlannedEval, SearchAnswer, SearchArtifacts, SearchOutcome,
    SearchSpec, Strategy,
};
pub use spec::{BlackoutSpec, FaultPlanSpec, SweepPoint, SweepSpec, WorldKind};
