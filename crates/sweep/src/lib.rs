//! Batched scenario sweeps over the AV stack.
//!
//! The paper's findings come from one 8-minute drive; its own method
//! section stresses exercising the system on *varied* situations. This
//! crate turns the single-run engine ([`av_core::stack::run_drive`])
//! into a parameter-study harness:
//!
//! * [`spec`] — a declarative sweep specification: a grid over scenario
//!   knobs (traffic density, sensor rates), stack knobs (detector, queue
//!   capacity, blackout schedules) and seeds, plus explicit extra
//!   points, loadable from dependency-free JSON.
//! * [`runner`] — expands the grid and schedules it over
//!   [`av_core::parallel::parallel_map`], stamping every run with its
//!   golden determinism hash.
//! * [`aggregate`] — folds the results into cross-point artifacts
//!   (summary table + CSV, per-point paper tables, a knob-effect report,
//!   a hash manifest) in a way that is provably independent of
//!   completion order.
//!
//! Everything downstream of the spec is a pure function of it, so a
//! sweep is as reproducible as a single run: same spec, same bytes, at
//! any `--jobs` level.

#![warn(missing_docs)]

pub mod aggregate;
pub mod runner;
pub mod spec;

pub use aggregate::{aggregate, SweepArtifacts};
pub use runner::{run_sweep, PointResult};
pub use spec::{BlackoutSpec, SweepPoint, SweepSpec, WorldKind};
