//! Batched scenario sweeps over the AV stack.
//!
//! The paper's findings come from one 8-minute drive; its own method
//! section stresses exercising the system on *varied* situations. This
//! crate turns the single-run engine ([`av_core::stack::run_drive`])
//! into a parameter-study harness:
//!
//! * [`spec`] — a declarative sweep specification: a grid over scenario
//!   knobs (traffic density, sensor rates), stack knobs (detector, queue
//!   capacity, blackout schedules) and seeds, plus explicit extra
//!   points, loadable from dependency-free JSON.
//! * [`runner`] — expands the grid and schedules it over
//!   [`av_core::parallel::parallel_map`], stamping every run with its
//!   golden determinism hash.
//! * [`aggregate`] — folds the results into cross-point artifacts
//!   (summary table + CSV, per-point paper tables, a knob-effect report,
//!   a hash manifest) in a way that is provably independent of
//!   completion order.
//! * [`objective`] — the scalar a search extracts from each run,
//!   shared with the sweep aggregator through [`av_core::metrics`].
//! * [`search`] — the optimizer layer: deterministic boundary finding
//!   (where does the 100 ms deadline first break 2×?) and seeded
//!   worst-case successive halving, both batch-iterative over the same
//!   runner and replayable from their own trajectory artifacts.
//! * [`cache`] — a content-addressed (spec-hash → result) evaluation
//!   cache; together with [`av_core::stack::checkpoint_drive`] it lets
//!   the runner share one simulated prefix across blackout-only grid
//!   variants and lets halving warm-start each rung's survivors from
//!   the previous rung's checkpoints — byte-identical results, strictly
//!   fewer simulated virtual seconds.
//!
//! Everything downstream of the spec is a pure function of it, so a
//! sweep — or a whole search trajectory — is as reproducible as a
//! single run: same spec, same bytes, at any `--jobs` level.

#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod objective;
pub mod runner;
pub mod search;
pub mod spec;

pub use aggregate::{aggregate, SweepArtifacts};
pub use cache::{CachedRun, EvalCache};
pub use objective::Objective;
pub use runner::{run_sweep, run_sweep_instrumented, run_sweep_streamed, PointResult, SweepStats};
pub use search::{
    run_search, run_search_instrumented, run_search_with, run_search_with_store, search_artifacts,
    BatchRecord, BisectSpec, EvalRecord, HalvingSpec, Knob, KnobRange, PlannedEval, SearchAnswer,
    SearchArtifacts, SearchOutcome, SearchSpec, SearchStats, Strategy,
};
pub use spec::{BlackoutSpec, FaultPlanSpec, SweepPoint, SweepSpec, WorldKind};
