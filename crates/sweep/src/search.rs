//! Scenario-space search: driving the sweep engine from an optimizer.
//!
//! A fixed grid (PR 3's E-sweep) can only *sample* the failure surface
//! of the stack; this module *locates* it. Two batch-iterative
//! strategies share one deterministic driver:
//!
//! * **Bisection / boundary finding** ([`BisectSpec`]) — along one knob
//!   (camera rate, traffic density, queue capacity), find the exact
//!   threshold where an objective first crosses a limit, e.g. where the
//!   100 ms perception deadline first breaks by more than 2×. Each
//!   refinement batch evaluates `sections` interior points of the
//!   current bracket in parallel, narrowing it by `sections + 1`. The
//!   break predicate is checked for monotonicity over *everything*
//!   evaluated so far: a non-monotone objective (latency that recovers
//!   at higher rates because queue drops shed load) is detected and
//!   reported with a witness pair, never silently bisected.
//! * **Successive halving** ([`HalvingSpec`]) — a seeded,
//!   RNG-reproducible search over the multi-knob space for the
//!   worst-case (highest-objective) scenario under a fixed evaluation
//!   budget. Rung 0 samples `initial` configurations from the knob
//!   ranges (in-house PCG32, so the sample is frozen by the seed alone)
//!   and evaluates them at the base drive duration; each following rung
//!   keeps the worst `1/eta` and re-evaluates them `eta`× longer.
//!
//! Every batch decision is a pure function of prior run outputs, so the
//! whole trajectory is replayable: [`run_search`] accepts the batches of
//! an earlier (possibly truncated) run and reuses any prefix whose
//! planned evaluations match, byte-identically to re-running them. The
//! rendered artifacts sort by batch index and evaluation ordinal, so
//! they are independent of worker count and completion order — the same
//! guarantee the sweep aggregator makes, extended to the optimizer loop.

use crate::cache::EvalCache;
use crate::objective::Objective;
use crate::spec::{SweepPoint, WorldKind};
use av_core::ckptstore::CkptStore;
use av_core::determinism::{run_hash, Fnv64};
use av_core::parallel::parallel_map;
use av_core::stack::{
    checkpoint_drive, drive_fingerprint, resume_drive_checkpointed, run_drive, Checkpoint,
    RunConfig,
};
use av_des::RngStreams;
use av_trace::json::{self, JsonValue};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A knob the search may turn. The subset of sweep axes that are
/// ordered scalars (detector and blackout schedule are categorical —
/// searches hold them fixed in the base point instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Camera frame rate, Hz.
    CameraRateHz,
    /// LiDAR sweep rate, Hz.
    LidarRateHz,
    /// Scenario traffic density (1.0 = the paper's street).
    TrafficDensity,
    /// Subscription queue capacity (integer-valued).
    QueueCapacity,
    /// Supervision restart initial backoff, seconds (the fault plan in
    /// the base point supplies the crash being recovered from).
    RestartBackoffS,
}

impl Knob {
    /// Every knob, in spec-name order.
    pub const ALL: [Knob; 5] = [
        Knob::CameraRateHz,
        Knob::LidarRateHz,
        Knob::TrafficDensity,
        Knob::QueueCapacity,
        Knob::RestartBackoffS,
    ];

    /// The spec spelling of this knob.
    pub fn name(self) -> &'static str {
        match self {
            Knob::CameraRateHz => "camera_rate_hz",
            Knob::LidarRateHz => "lidar_rate_hz",
            Knob::TrafficDensity => "traffic_density",
            Knob::QueueCapacity => "queue_capacity",
            Knob::RestartBackoffS => "restart_backoff_s",
        }
    }

    /// Parses a spec spelling.
    pub fn parse(s: &str) -> Result<Knob, String> {
        Knob::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            let names: Vec<&str> = Knob::ALL.iter().map(|k| k.name()).collect();
            format!("unknown knob {s:?} (expected one of {})", names.join(", "))
        })
    }

    /// Whether the knob only takes integer values.
    pub fn is_integer(self) -> bool {
        matches!(self, Knob::QueueCapacity)
    }

    /// Snaps a proposed value onto the knob's domain (integer knobs
    /// round, capacity stays ≥ 1).
    pub fn snap(self, v: f64) -> f64 {
        if self.is_integer() {
            v.round().max(1.0)
        } else {
            v
        }
    }

    /// Writes the value into a sweep point's override slot.
    pub fn set(self, point: &mut SweepPoint, v: f64) {
        match self {
            Knob::CameraRateHz => point.camera_rate_hz = Some(v),
            Knob::LidarRateHz => point.lidar_rate_hz = Some(v),
            Knob::TrafficDensity => point.traffic_density = Some(v),
            Knob::QueueCapacity => point.queue_capacity = Some(v as usize),
            Knob::RestartBackoffS => point.restart_backoff_s = Some(v),
        }
    }
}

/// Boundary finding along one knob: locate where `objective >=
/// threshold` first becomes true.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectSpec {
    /// The knob to bisect along.
    pub knob: Knob,
    /// Lower end of the bracket (expected unbroken).
    pub lo: f64,
    /// Upper end of the bracket (expected broken).
    pub hi: f64,
    /// The objective limit defining "broken".
    pub threshold: f64,
    /// Stop once the bracket is no wider than this (knob units).
    pub tolerance: f64,
    /// Interior points evaluated per refinement batch; each batch
    /// narrows the bracket by `sections + 1`.
    pub sections: usize,
}

/// One knob range a halving search samples from.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobRange {
    /// The knob.
    pub knob: Knob,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive for continuous knobs).
    pub hi: f64,
}

/// Successive halving over the multi-knob space, maximizing the
/// objective under a fixed evaluation budget.
#[derive(Debug, Clone, PartialEq)]
pub struct HalvingSpec {
    /// The knob ranges sampled at rung 0.
    pub knobs: Vec<KnobRange>,
    /// Number of configurations sampled at rung 0.
    pub initial: usize,
    /// Keep the worst `1/eta` per rung; drive duration also grows `eta`×
    /// per rung.
    pub eta: usize,
    /// Number of rungs (≥ 1; rung 0 is the initial batch).
    pub rungs: usize,
    /// Seed of the PCG32 stream the rung-0 sample is drawn from.
    pub seed: u64,
    /// Cap on the per-rung drive duration, seconds. Once `duration ×
    /// eta` would exceed the cap, later rungs repeat the capped
    /// duration — and a rung whose duration is unchanged carries every
    /// survivor's already-measured objective forward at zero
    /// evaluation cost (it only narrows the candidate set).
    pub max_duration_s: Option<f64>,
}

/// Which optimizer drives the sweep engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Boundary finding along one knob.
    Bisect(BisectSpec),
    /// Worst-case successive halving over several knobs.
    Halving(HalvingSpec),
}

/// A declarative scenario-space search, loadable from JSON (see
/// `specs/search_*.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Search name; prefixes artifact headers.
    pub name: String,
    /// Base world.
    pub world: WorldKind,
    /// Fixed overrides applied to every evaluation (e.g. the detector a
    /// boundary study pins).
    pub base: SweepPoint,
    /// The scalar each evaluation extracts.
    pub objective: Objective,
    /// Drive duration per evaluation, seconds (halving rung 0; later
    /// rungs multiply it by `eta`).
    pub duration_s: f64,
    /// The optimizer.
    pub strategy: Strategy,
}

/// One evaluation the search has decided to run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedEval {
    /// The configuration overrides (ordinal = evaluation ordinal).
    pub point: SweepPoint,
    /// Drive duration, seconds.
    pub duration_s: f64,
}

/// One completed evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Global evaluation counter, in decision order.
    pub ordinal: usize,
    /// The configuration overrides evaluated.
    pub point: SweepPoint,
    /// Drive duration, seconds.
    pub duration_s: f64,
    /// The objective value the run produced.
    pub objective: f64,
    /// Golden hash of the run ([`av_core::determinism::run_hash`]); 0
    /// for synthetic oracles.
    pub run_hash: u64,
}

/// One batch of evaluations plus the stage label that planned it.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batch position in the trajectory.
    pub index: usize,
    /// What the optimizer was doing (`bracket`, `refine 2`, `rung 0`).
    pub stage: String,
    /// The evaluations, in planning order.
    pub evals: Vec<EvalRecord>,
}

/// What the search concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchAnswer {
    /// The objective first crosses the threshold inside `(lo, hi]`; the
    /// bracket is no wider than the requested tolerance.
    Boundary {
        /// The bisected knob.
        knob: Knob,
        /// Largest evaluated knob value still under the threshold.
        lo: f64,
        /// Smallest evaluated knob value at or over the threshold.
        hi: f64,
    },
    /// No boundary bracket exists: the objective is under the threshold
    /// at the *top* of the range. Either it never crosses, or it crosses
    /// and recovers somewhere inside — the two endpoint evaluations
    /// cannot tell these apart, so the answer claims only the endpoint.
    NeverCrosses {
        /// The bisected knob.
        knob: Knob,
        /// Objective measured at the top of the range.
        hi_objective: f64,
    },
    /// The objective is already over the threshold at `lo`.
    AlwaysAbove {
        /// The bisected knob.
        knob: Knob,
        /// Objective measured at the bottom of the range.
        lo_objective: f64,
    },
    /// The break predicate is not monotone along the knob: a broken
    /// value sits *below* an unbroken one, so no single boundary exists.
    NonMonotone {
        /// The bisected knob.
        knob: Knob,
        /// A knob value over the threshold...
        broken_at: f64,
        /// ...with its objective...
        broken_objective: f64,
        /// ...and a larger knob value back under the threshold...
        unbroken_at: f64,
        /// ...with its objective.
        unbroken_objective: f64,
    },
    /// The worst-case configuration a halving search converged on.
    Best {
        /// The winning configuration overrides.
        point: SweepPoint,
        /// Its objective at the final (longest-duration) rung.
        objective: f64,
    },
}

/// One-line rendering of an answer. Knob values print in shortest
/// round-trip form; this string is folded into the search hash, so it is
/// part of the determinism contract.
pub fn answer_text(answer: &SearchAnswer) -> String {
    match answer {
        SearchAnswer::Boundary { knob, lo, hi } => format!(
            "boundary: {} crosses in ({lo:?}, {hi:?}], midpoint {:?}",
            knob.name(),
            (lo + hi) / 2.0
        ),
        SearchAnswer::NeverCrosses { knob, hi_objective } => format!(
            "no bracket: objective is under the threshold at the top of the {} range \
             ({hi_objective:?}) — it never crosses, or crosses and recovers inside",
            knob.name()
        ),
        SearchAnswer::AlwaysAbove { knob, lo_objective } => format!(
            "no bracket: objective is already over the threshold at the bottom of the {} \
             range ({lo_objective:?})",
            knob.name()
        ),
        SearchAnswer::NonMonotone {
            knob,
            broken_at,
            broken_objective,
            unbroken_at,
            unbroken_objective,
        } => format!(
            "non-monotone: {}={broken_at:?} is broken ({broken_objective:?}) but larger \
             {}={unbroken_at:?} is not ({unbroken_objective:?}); no single boundary exists",
            knob.name(),
            knob.name()
        ),
        SearchAnswer::Best { point, objective } => {
            format!("worst case: {} with objective {objective:?}", point.label())
        }
    }
}

/// A finished search: the full trajectory plus the conclusion.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Every batch, in decision order.
    pub batches: Vec<BatchRecord>,
    /// The conclusion.
    pub answer: SearchAnswer,
    /// Golden hash over the trajectory and answer ([`search_hash`]).
    pub search_hash: u64,
}

impl SearchOutcome {
    /// Total evaluations across all batches.
    pub fn evaluations(&self) -> usize {
        self.batches.iter().map(|b| b.evals.len()).sum()
    }
}

/// Golden hash over a trajectory and its answer. Batches and
/// evaluations are sorted by index/ordinal first, so the hash is
/// independent of the order records are held in.
pub fn search_hash(batches: &[BatchRecord], answer: &SearchAnswer) -> u64 {
    let mut ordered: Vec<&BatchRecord> = batches.iter().collect();
    ordered.sort_by_key(|b| b.index);
    let mut h = Fnv64::new();
    for batch in ordered {
        h.write_u64(batch.index as u64);
        h.write_str(&batch.stage);
        let mut evals: Vec<&EvalRecord> = batch.evals.iter().collect();
        evals.sort_by_key(|e| e.ordinal);
        for e in evals {
            h.write_u64(e.ordinal as u64);
            h.write_str(&e.point.label());
            h.write_f64(e.duration_s);
            h.write_f64(e.objective);
            h.write_u64(e.run_hash);
        }
    }
    h.write_str(&answer_text(answer));
    h.finish()
}

/// The number of evaluations a bisection performs when the bracket is
/// valid and the predicate is monotone: 2 for the bracket plus
/// `sections` per refinement batch, each narrowing the span by
/// `sections + 1`, until the span is within tolerance. (Integer knobs
/// may use fewer when snapping collapses interior points.)
pub fn bisect_predicted_evals(b: &BisectSpec) -> usize {
    let mut span = b.hi - b.lo;
    let mut evals = 2;
    while span > b.tolerance {
        span /= (b.sections + 1) as f64;
        evals += b.sections;
    }
    evals
}

// ---------------------------------------------------------------------------
// The deterministic batch driver (with resume).

struct Driver<'a, F> {
    prior: &'a [BatchRecord],
    prior_valid: bool,
    evaluate: F,
    batches: Vec<BatchRecord>,
    next_ordinal: usize,
}

impl<F> Driver<'_, F>
where
    F: Fn(&[PlannedEval]) -> Vec<(f64, u64)>,
{
    /// Runs (or reuses from the prior trajectory) one batch. The planned
    /// points get their ordinals stamped here, so strategies never
    /// manage numbering.
    fn batch(&mut self, stage: &str, mut planned: Vec<PlannedEval>) -> Vec<EvalRecord> {
        let index = self.batches.len();
        for (i, pe) in planned.iter_mut().enumerate() {
            pe.point.ordinal = self.next_ordinal + i;
        }
        self.next_ordinal += planned.len();

        let reused = self.prior_valid
            && self.prior.get(index).is_some_and(|p| {
                p.index == index
                    && p.stage == stage
                    && p.evals.len() == planned.len()
                    && p.evals
                        .iter()
                        .zip(&planned)
                        .all(|(e, pe)| e.point == pe.point && e.duration_s == pe.duration_s)
            });
        let results: Vec<(f64, u64)> = if reused {
            self.prior[index].evals.iter().map(|e| (e.objective, e.run_hash)).collect()
        } else {
            self.prior_valid = false;
            (self.evaluate)(&planned)
        };
        assert_eq!(results.len(), planned.len(), "evaluator returned a short batch");

        let evals: Vec<EvalRecord> = planned
            .into_iter()
            .zip(results)
            .map(|(pe, (objective, run_hash))| EvalRecord {
                ordinal: pe.point.ordinal,
                point: pe.point,
                duration_s: pe.duration_s,
                objective,
                run_hash,
            })
            .collect();
        self.batches.push(BatchRecord { index, stage: stage.to_string(), evals: evals.clone() });
        evals
    }
}

fn bisect<F>(driver: &mut Driver<'_, F>, spec: &SearchSpec, b: &BisectSpec) -> SearchAnswer
where
    F: Fn(&[PlannedEval]) -> Vec<(f64, u64)>,
{
    let planned = |v: f64| {
        let mut point = spec.base.clone();
        b.knob.set(&mut point, v);
        PlannedEval { point, duration_s: spec.duration_s }
    };
    let broken = |o: f64| o >= b.threshold;

    let lo = b.knob.snap(b.lo);
    let hi = b.knob.snap(b.hi);
    let bracket = driver.batch("bracket", vec![planned(lo), planned(hi)]);
    let (o_lo, o_hi) = (bracket[0].objective, bracket[1].objective);
    if broken(o_lo) {
        return SearchAnswer::AlwaysAbove { knob: b.knob, lo_objective: o_lo };
    }
    if !broken(o_hi) {
        return SearchAnswer::NeverCrosses { knob: b.knob, hi_objective: o_hi };
    }

    // Everything evaluated so far, as (knob value, objective).
    let mut history: Vec<(f64, f64)> = vec![(lo, o_lo), (hi, o_hi)];
    let (mut lo_v, mut hi_v) = (lo, hi);
    let mut round = 0usize;
    while hi_v - lo_v > b.tolerance {
        round += 1;
        let span = hi_v - lo_v;
        let mut values: Vec<f64> = Vec::new();
        for i in 1..=b.sections {
            let v = b.knob.snap(lo_v + span * i as f64 / (b.sections + 1) as f64);
            let seen = history.iter().any(|(h, _)| *h == v) || values.contains(&v);
            if !seen && v > lo_v && v < hi_v {
                values.push(v);
            }
        }
        if values.is_empty() {
            // Integer knob: the bracket has no interior values left.
            break;
        }
        let recs =
            driver.batch(&format!("refine {round}"), values.iter().map(|&v| planned(v)).collect());
        history.extend(values.iter().zip(&recs).map(|(v, r)| (*v, r.objective)));

        // Monotonicity over the whole history: every unbroken value must
        // sit below every broken one, or no single boundary exists.
        let mut sorted = history.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let &(broken_at, broken_objective) =
            sorted.iter().find(|(_, o)| broken(*o)).expect("hi is broken");
        let &(unbroken_at, unbroken_objective) =
            sorted.iter().rev().find(|(_, o)| !broken(*o)).expect("lo is unbroken");
        if broken_at < unbroken_at {
            return SearchAnswer::NonMonotone {
                knob: b.knob,
                broken_at,
                broken_objective,
                unbroken_at,
                unbroken_objective,
            };
        }
        lo_v = unbroken_at;
        hi_v = broken_at;
    }
    SearchAnswer::Boundary { knob: b.knob, lo: lo_v, hi: hi_v }
}

fn halving<F>(driver: &mut Driver<'_, F>, spec: &SearchSpec, h: &HalvingSpec) -> SearchAnswer
where
    F: Fn(&[PlannedEval]) -> Vec<(f64, u64)>,
{
    // The rung-0 sample is frozen by (seed, knob list) alone.
    let mut rng = RngStreams::new(h.seed).stream("scenario-search");
    let mut candidates: Vec<SweepPoint> = (0..h.initial)
        .map(|_| {
            let mut point = spec.base.clone();
            for kr in &h.knobs {
                kr.knob.set(&mut point, kr.knob.snap(rng.uniform(kr.lo, kr.hi)));
            }
            point
        })
        .collect();

    let cap = h.max_duration_s.unwrap_or(f64::INFINITY);
    let mut duration = spec.duration_s.min(cap);
    let mut best: Option<(SweepPoint, f64)> = None;
    // Survivor objectives carried from the previous rung, with the
    // duration they were measured at.
    let mut carried: Option<(f64, Vec<f64>)> = None;
    for rung in 0..h.rungs {
        let objectives: Vec<f64> = match &carried {
            // Duration unchanged (the cap clipped its growth): every
            // candidate already has an objective at exactly this
            // duration, so the rung is a pure cut — zero evaluations.
            Some((measured_at, objectives)) if *measured_at == duration => objectives.clone(),
            _ => {
                let planned: Vec<PlannedEval> = candidates
                    .iter()
                    .map(|p| PlannedEval { point: p.clone(), duration_s: duration })
                    .collect();
                driver.batch(&format!("rung {rung}"), planned).iter().map(|e| e.objective).collect()
            }
        };

        // Rank worst-first; candidate order breaks objective ties, so the
        // cut is deterministic even with equal objectives.
        let mut order: Vec<usize> = (0..objectives.len()).collect();
        order.sort_by(|&a, &b| objectives[b].total_cmp(&objectives[a]).then(a.cmp(&b)));
        best = Some((candidates[order[0]].clone(), objectives[order[0]]));

        let keep = objectives.len().div_ceil(h.eta).max(1);
        let mut survivors = order[..keep.min(order.len())].to_vec();
        survivors.sort_unstable();
        candidates = survivors.iter().map(|&i| candidates[i].clone()).collect();
        carried = Some((duration, survivors.into_iter().map(|i| objectives[i]).collect()));
        duration = (duration * h.eta as f64).min(cap);
    }
    let (mut point, objective) = best.expect("at least one rung ran");
    point.ordinal = 0;
    SearchAnswer::Best { point, objective }
}

/// Runs a search against an arbitrary evaluator — the test seam the
/// bisection-oracle suite drives with synthetic objectives. `prior` is
/// an earlier trajectory (possibly truncated): batches whose planned
/// evaluations match are reused without re-running, which is what makes
/// a resumed search byte-identical to a fresh one.
pub fn run_search_with<F>(spec: &SearchSpec, prior: &[BatchRecord], evaluate: F) -> SearchOutcome
where
    F: Fn(&[PlannedEval]) -> Vec<(f64, u64)>,
{
    let mut driver =
        Driver { prior, prior_valid: true, evaluate, batches: Vec::new(), next_ordinal: 0 };
    let answer = match &spec.strategy {
        Strategy::Bisect(b) => bisect(&mut driver, spec, b),
        Strategy::Halving(h) => halving(&mut driver, spec, h),
    };
    let hash = search_hash(&driver.batches, &answer);
    SearchOutcome { batches: driver.batches, answer, search_hash: hash }
}

/// How much simulation an instrumented search actually performed.
/// Purely informational — warm starts and caching never change a
/// single output byte, only how those bytes were obtained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Drives actually simulated (prior-trajectory reuse and cache hits
    /// are not counted — they cost nothing).
    pub evaluations: usize,
    /// Virtual seconds of drive horizon actually simulated.
    pub simulated_s: f64,
    /// Evaluations warm-started from an earlier rung's checkpoint.
    pub warm_resumes: usize,
    /// Virtual seconds of prefix those warm starts did *not*
    /// re-simulate.
    pub resumed_prefix_s: f64,
    /// Evaluations served whole from the (spec-hash → result) cache.
    pub cache_hits: usize,
    /// Of the warm resumes, how many restored their prefix from the
    /// durable disk store — a checkpoint some *earlier process* left
    /// behind — rather than from this search's in-memory chain.
    pub store_resumes: usize,
    /// Virtual seconds of prefix those disk restores skipped.
    pub store_prefix_s: f64,
    /// Memory-cache misses served whole by resuming a full-horizon
    /// checkpoint from the disk store (a pure end-of-run drain).
    pub store_hits: usize,
}

/// Runs the search for real: every evaluation is a simulated drive,
/// fanned out over `jobs` worker threads within each batch. Results are
/// independent of `jobs` because [`parallel_map`] preserves order and
/// every drive is a pure function of its configuration.
///
/// Successive-halving evaluations are warm-started: each rung's drives
/// end in a checkpoint ([`checkpoint_drive`]), and the next rung
/// resumes its survivors from those snapshots instead of re-simulating
/// the shared prefix ([`resume_drive_checkpointed`]) — byte-identical
/// to cold runs, strictly fewer simulated virtual seconds. A
/// (spec-hash → result) cache additionally memoizes whole evaluations
/// within the search.
pub fn run_search(spec: &SearchSpec, jobs: usize, prior: &[BatchRecord]) -> SearchOutcome {
    run_search_instrumented(spec, jobs, prior, true).0
}

/// [`run_search`], also reporting the work done. `warm: false` disables
/// both the checkpoint warm starts and the evaluation cache (every
/// evaluation simulates its full horizon from virtual time zero) — the
/// cold baseline the E-resume study measures against.
pub fn run_search_instrumented(
    spec: &SearchSpec,
    jobs: usize,
    prior: &[BatchRecord],
    warm: bool,
) -> (SearchOutcome, SearchStats) {
    search_engine(spec, jobs, prior, warm, None)
}

/// [`run_search`] backed by a durable checkpoint store: rung
/// evaluations first look for a resumable prefix among the checkpoints
/// an *earlier process* persisted (then fall back to this search's own
/// in-memory chain), and every checkpoint captured here is written back
/// through the store's crash-safe path. Byte-identical to the
/// store-less search — the store only changes how many virtual seconds
/// are re-simulated, never a single output byte.
pub fn run_search_with_store(
    spec: &SearchSpec,
    jobs: usize,
    prior: &[BatchRecord],
    store: Option<&CkptStore>,
) -> (SearchOutcome, SearchStats) {
    search_engine(spec, jobs, prior, true, store)
}

fn search_engine(
    spec: &SearchSpec,
    jobs: usize,
    prior: &[BatchRecord],
    warm: bool,
    store: Option<&CkptStore>,
) -> (SearchOutcome, SearchStats) {
    let base = spec.world.base_config();
    let objective = &spec.objective;
    // Checkpoints only pay off when a later evaluation extends the same
    // configuration — which only halving rungs do.
    let capture = warm && matches!(spec.strategy, Strategy::Halving(_));
    let cache = EvalCache::new();
    let checkpoints: Mutex<HashMap<u64, Checkpoint>> = Mutex::new(HashMap::new());
    let stats: Mutex<SearchStats> = Mutex::new(SearchStats::default());
    let outcome = run_search_with(spec, prior, |planned: &[PlannedEval]| {
        parallel_map(planned.to_vec(), jobs, |pe| {
            let config = pe.point.apply(&base);
            // Blame objectives read the event-trace attribution, so their
            // evaluations must record one.
            let run = if objective.needs_trace() {
                RunConfig::seconds(pe.duration_s).with_trace()
            } else {
                RunConfig::seconds(pe.duration_s)
            };
            if warm {
                let key = EvalCache::spec_hash(&config, &run);
                if let Some(hit) = cache.lookup_or_resume(key, &config, &run, store) {
                    return (objective.evaluate(&hit.report), hit.run_hash);
                }
                // Checkpoints are keyed by configuration alone: rungs
                // differ only in duration, and a snapshot from a
                // shorter run seeds any longer one. Memory first, then
                // whatever prefix an earlier process left in the store.
                let ckey = EvalCache::spec_hash(&config, &RunConfig::default());
                let mut from: Option<Checkpoint> = if capture {
                    let mem = checkpoints.lock().unwrap();
                    mem.get(&ckey).filter(|cp| cp.barrier_s() < pe.duration_s).cloned()
                } else {
                    None
                };
                let mut from_store = false;
                if from.is_none() && capture {
                    if let Some(st) = store {
                        let horizon_ns = (pe.duration_s * 1e9).round() as u64;
                        from = st
                            .best_resume(
                                drive_fingerprint(&config),
                                run.trace.is_some(),
                                horizon_ns,
                            )
                            .filter(|cp| cp.barrier_s() < pe.duration_s);
                        from_store = from.is_some();
                    }
                }
                let resumed_from = from.as_ref().map(Checkpoint::barrier_s);
                let (report, checkpoint) = if let Some(cp) = &from {
                    let (r, c) = resume_drive_checkpointed(&config, &run, cp, pe.duration_s);
                    (r, Some(c))
                } else if capture {
                    let (r, c) = checkpoint_drive(&config, &run, pe.duration_s);
                    (r, Some(c))
                } else {
                    (run_drive(&config, &run), None)
                };
                if let Some(c) = checkpoint {
                    if let Some(st) = store {
                        if let Err(e) = st.put(&c) {
                            eprintln!("warning: could not persist checkpoint: {e}");
                        }
                    }
                    checkpoints.lock().unwrap().insert(ckey, c);
                }
                let hash = run_hash(&report);
                cache.insert(key, &report, hash);
                let mut s = stats.lock().unwrap();
                s.evaluations += 1;
                let prefix = resumed_from.unwrap_or(0.0);
                s.simulated_s += pe.duration_s - prefix;
                if resumed_from.is_some() {
                    s.warm_resumes += 1;
                    s.resumed_prefix_s += prefix;
                }
                if from_store {
                    s.store_resumes += 1;
                    s.store_prefix_s += prefix;
                }
                drop(s);
                (objective.evaluate(&report), hash)
            } else {
                let report = run_drive(&config, &run);
                let mut s = stats.lock().unwrap();
                s.evaluations += 1;
                s.simulated_s += pe.duration_s;
                drop(s);
                (objective.evaluate(&report), run_hash(&report))
            }
        })
    });
    let mut final_stats = stats.into_inner().unwrap();
    final_stats.cache_hits = cache.hits();
    final_stats.store_hits = cache.store_hits();
    (outcome, final_stats)
}

// ---------------------------------------------------------------------------
// Spec parsing, builtins, description.

impl SearchSpec {
    /// Validates ranges, budgets and durations.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("search name must not be empty".to_string());
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(format!("duration_s must be positive and finite, got {}", self.duration_s));
        }
        let range_ok = |knob: Knob, lo: f64, hi: f64| -> Result<(), String> {
            if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                return Err(format!("{}: range must be finite with lo < hi", knob.name()));
            }
            if lo <= 0.0 && knob != Knob::QueueCapacity {
                return Err(format!("{}: range must be positive", knob.name()));
            }
            if knob == Knob::QueueCapacity && lo < 1.0 {
                return Err("queue_capacity: range must start at >= 1".to_string());
            }
            Ok(())
        };
        match &self.strategy {
            Strategy::Bisect(b) => {
                range_ok(b.knob, b.lo, b.hi)?;
                if !b.threshold.is_finite() {
                    return Err("threshold must be finite".to_string());
                }
                if !b.tolerance.is_finite() || b.tolerance <= 0.0 {
                    return Err("tolerance must be positive and finite".to_string());
                }
                if b.sections == 0 {
                    return Err("sections must be >= 1".to_string());
                }
            }
            Strategy::Halving(h) => {
                if h.knobs.is_empty() {
                    return Err("halving needs at least one knob range".to_string());
                }
                for kr in &h.knobs {
                    range_ok(kr.knob, kr.lo, kr.hi)?;
                }
                if h.initial < 2 {
                    return Err("initial must be >= 2".to_string());
                }
                if h.eta < 2 {
                    return Err("eta must be >= 2".to_string());
                }
                if h.rungs == 0 {
                    return Err("rungs must be >= 1".to_string());
                }
                if let Some(cap) = h.max_duration_s {
                    if !cap.is_finite() || cap <= 0.0 {
                        return Err(format!(
                            "max_duration_s must be positive and finite, got {cap}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the search plan (for `search --list`).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search {:?}: world {}, objective {}, base [{}], {:.0} s per evaluation",
            self.name,
            self.world.name(),
            self.objective.name(),
            self.base.label(),
            self.duration_s
        );
        match &self.strategy {
            Strategy::Bisect(b) => {
                let _ = writeln!(
                    out,
                    "  bisect {} over [{}, {}]: threshold {}, tolerance {}, {} interior \
                     point(s) per batch, <= {} evaluation(s)",
                    b.knob.name(),
                    b.lo,
                    b.hi,
                    b.threshold,
                    b.tolerance,
                    b.sections,
                    bisect_predicted_evals(b)
                );
            }
            Strategy::Halving(h) => {
                let ranges: Vec<String> = h
                    .knobs
                    .iter()
                    .map(|kr| format!("{} in [{}, {})", kr.knob.name(), kr.lo, kr.hi))
                    .collect();
                // A rung whose (capped) duration matches the previous
                // rung's carries the survivor objectives forward and
                // costs nothing — mirror halving()'s skip here.
                let cap = h.max_duration_s.unwrap_or(f64::INFINITY);
                let mut budget = 0usize;
                let mut n = h.initial;
                let mut d = self.duration_s.min(cap);
                let mut prev_d = f64::NAN;
                for _ in 0..h.rungs {
                    if d != prev_d {
                        budget += n;
                    }
                    n = n.div_ceil(h.eta).max(1);
                    prev_d = d;
                    d = (d * h.eta as f64).min(cap);
                }
                let capped = match h.max_duration_s {
                    Some(cap) => format!(", rung duration capped at {cap} s"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  successive halving over {}: {} initial, eta {}, {} rung(s), seed {}, \
                     {} evaluation(s){}",
                    ranges.join(", "),
                    h.initial,
                    h.eta,
                    h.rungs,
                    h.seed,
                    budget,
                    capped
                );
            }
        }
        out
    }

    /// Parses a search spec from JSON text (see `specs/search_*.json`).
    pub fn from_json(text: &str) -> Result<SearchSpec, String> {
        let doc = json::parse(text).map_err(|e| format!("search spec is not valid JSON: {e}"))?;
        let members = match &doc {
            JsonValue::Obj(members) => members,
            _ => return Err("search spec must be a JSON object".to_string()),
        };
        let mut name = None;
        let mut world = WorldKind::Paper;
        let mut base = SweepPoint::default();
        let mut objective = Objective::DeadlineFactor;
        let mut duration_s = None;
        let mut strategy = None;
        for (key, value) in members {
            match key.as_str() {
                "name" => {
                    name = Some(
                        value
                            .as_str()
                            .ok_or_else(|| "name must be a string".to_string())?
                            .to_string(),
                    );
                }
                "world" => {
                    world = match value.as_str() {
                        Some("paper") => WorldKind::Paper,
                        Some("smoke") => WorldKind::Smoke,
                        _ => return Err("world must be \"paper\" or \"smoke\"".to_string()),
                    };
                }
                "base" => base = SweepPoint::from_json_value(value)?,
                "objective" => {
                    objective = Objective::parse(
                        value.as_str().ok_or_else(|| "objective must be a string".to_string())?,
                    )?;
                }
                "duration_s" => {
                    duration_s = Some(
                        value.as_f64().ok_or_else(|| "duration_s must be a number".to_string())?,
                    );
                }
                "bisect" => {
                    if strategy.is_some() {
                        return Err("spec has more than one strategy".to_string());
                    }
                    strategy = Some(Strategy::Bisect(parse_bisect(value)?));
                }
                "halving" => {
                    if strategy.is_some() {
                        return Err("spec has more than one strategy".to_string());
                    }
                    strategy = Some(Strategy::Halving(parse_halving(value)?));
                }
                other => return Err(format!("unknown search key {other:?}")),
            }
        }
        let spec = SearchSpec {
            name: name.ok_or("search spec must have a name")?,
            world,
            base,
            objective,
            duration_s: duration_s.ok_or("search spec must have duration_s")?,
            strategy: strategy.ok_or("search spec must have a bisect or halving strategy")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The tier-1 gate's search: a tiny-budget camera-rate bisection on
    /// the smoke world, locating where queue drops first exceed 2 % of
    /// delivered messages. (Drop rate is the one smoke-world objective
    /// that is monotone in camera rate — 6-second runs are too short for
    /// a stable latency tail.)
    pub fn builtin_smoke() -> SearchSpec {
        SearchSpec {
            name: "smoke".to_string(),
            world: WorldKind::Smoke,
            base: SweepPoint::default(),
            objective: Objective::DropPct,
            duration_s: 6.0,
            strategy: Strategy::Bisect(BisectSpec {
                knob: Knob::CameraRateHz,
                lo: 8.0,
                hi: 40.0,
                threshold: 2.0,
                tolerance: 2.0,
                sections: 2,
            }),
        }
    }

    /// Named builtin lookup (for `search --builtin`).
    pub fn builtin(name: &str) -> Option<SearchSpec> {
        match name {
            "smoke" => Some(SearchSpec::builtin_smoke()),
            _ => None,
        }
    }
}

fn num_field(value: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{what}.{key} must be a number"))
}

fn usize_field(value: &JsonValue, key: &str, what: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("{what}.{key} must be a non-negative integer"))
}

fn knob_field(value: &JsonValue, what: &str) -> Result<Knob, String> {
    Knob::parse(
        value
            .get("knob")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{what}.knob must be a string"))?,
    )
}

fn check_keys(value: &JsonValue, allowed: &[&str], what: &str) -> Result<(), String> {
    if let JsonValue::Obj(members) = value {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown {what} key {key:?}"));
            }
        }
        Ok(())
    } else {
        Err(format!("{what} must be a JSON object"))
    }
}

fn parse_bisect(value: &JsonValue) -> Result<BisectSpec, String> {
    check_keys(value, &["knob", "lo", "hi", "threshold", "tolerance", "sections"], "bisect")?;
    Ok(BisectSpec {
        knob: knob_field(value, "bisect")?,
        lo: num_field(value, "lo", "bisect")?,
        hi: num_field(value, "hi", "bisect")?,
        threshold: num_field(value, "threshold", "bisect")?,
        tolerance: num_field(value, "tolerance", "bisect")?,
        sections: match value.get("sections") {
            None => 2,
            Some(_) => usize_field(value, "sections", "bisect")?,
        },
    })
}

fn parse_halving(value: &JsonValue) -> Result<HalvingSpec, String> {
    check_keys(value, &["knobs", "initial", "eta", "rungs", "seed", "max_duration_s"], "halving")?;
    let knobs = value
        .get("knobs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "halving.knobs must be an array".to_string())?
        .iter()
        .map(|kr| {
            check_keys(kr, &["knob", "lo", "hi"], "halving.knobs[..]")?;
            Ok(KnobRange {
                knob: knob_field(kr, "halving.knobs[..]")?,
                lo: num_field(kr, "lo", "halving.knobs[..]")?,
                hi: num_field(kr, "hi", "halving.knobs[..]")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HalvingSpec {
        knobs,
        initial: usize_field(value, "initial", "halving")?,
        eta: match value.get("eta") {
            None => 2,
            Some(_) => usize_field(value, "eta", "halving")?,
        },
        rungs: usize_field(value, "rungs", "halving")?,
        seed: value
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "halving.seed must be a non-negative integer".to_string())?,
        max_duration_s: match value.get("max_duration_s") {
            None => None,
            Some(_) => Some(num_field(value, "max_duration_s", "halving")?),
        },
    })
}

// ---------------------------------------------------------------------------
// Artifacts.

/// Everything the search renders, ready to be written under
/// `results/search/`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArtifacts {
    /// The headline report: spec, budget curve, answer.
    pub summary_txt: String,
    /// Every batch and evaluation, human-readable.
    pub trajectory_txt: String,
    /// The machine-readable, replayable trajectory
    /// ([`trajectory_from_json`] parses it back for `--resume`).
    pub trajectory_json: String,
    /// Golden-hash manifest (search hash + per-evaluation run hashes).
    pub hashes_json: String,
    /// Golden hash over the trajectory and answer.
    pub search_hash: u64,
}

/// Renders a finished search. Batches and evaluations are sorted by
/// index/ordinal before rendering, so the bytes are a pure function of
/// the record *set* — the schedule that produced them cannot leak in.
pub fn search_artifacts(spec: &SearchSpec, outcome: &SearchOutcome) -> SearchArtifacts {
    let mut batches: Vec<BatchRecord> = outcome.batches.clone();
    batches.sort_by_key(|b| b.index);
    for b in &mut batches {
        b.evals.sort_by_key(|e| e.ordinal);
    }
    let hash = search_hash(&batches, &outcome.answer);
    let answer = answer_text(&outcome.answer);
    let evals_total: usize = batches.iter().map(|b| b.evals.len()).sum();

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "# search {:?} — {} evaluation(s), golden hash {hash:#018x}\n",
        spec.name, evals_total
    );
    summary.push_str(&spec.describe());
    let _ = writeln!(summary, "\n## budget curve\n");
    let mut curve = av_profiling::Table::with_headers(&[
        "Batch",
        "Stage",
        "Evals",
        "Cumulative",
        "Batch max objective",
        "Best so far",
    ]);
    let mut cumulative = 0usize;
    let mut best = f64::NEG_INFINITY;
    for b in &batches {
        cumulative += b.evals.len();
        let batch_max = b.evals.iter().map(|e| e.objective).fold(f64::NEG_INFINITY, f64::max);
        best = best.max(batch_max);
        curve.add_row(vec![
            b.index.to_string(),
            b.stage.clone(),
            b.evals.len().to_string(),
            cumulative.to_string(),
            format!("{batch_max:.4}"),
            format!("{best:.4}"),
        ]);
    }
    let _ = writeln!(summary, "{curve}");
    let _ = writeln!(summary, "## answer\n\n{answer}");

    let mut trajectory = String::new();
    let _ = writeln!(trajectory, "# search {:?} — trajectory\n", spec.name);
    for b in &batches {
        let _ = writeln!(trajectory, "batch {} ({}):", b.index, b.stage);
        for e in &b.evals {
            let _ = writeln!(
                trajectory,
                "  e{:03}  {:<40}  {:>6.1} s  objective {:<12}  run {:#018x}",
                e.ordinal,
                e.point.label(),
                e.duration_s,
                format!("{:.4}", e.objective),
                e.run_hash
            );
        }
    }
    let _ = writeln!(trajectory, "\nanswer: {answer}");

    let mut tj = String::new();
    tj.push_str("{\n");
    let _ = writeln!(tj, "  \"search\": \"{}\",", spec.name);
    let _ = writeln!(tj, "  \"search_hash\": \"{hash:#018x}\",");
    tj.push_str("  \"batches\": [\n");
    for (bi, b) in batches.iter().enumerate() {
        let _ =
            writeln!(tj, "    {{\"index\": {}, \"stage\": \"{}\", \"evals\": [", b.index, b.stage);
        for (ei, e) in b.evals.iter().enumerate() {
            let comma = if ei + 1 < b.evals.len() { "," } else { "" };
            let _ = writeln!(
                tj,
                "      {{\"ordinal\": {}, \"duration_s\": {:?}, \"objective\": {:?}, \
                 \"run_hash\": \"{:#018x}\", \"point\": {}}}{comma}",
                e.ordinal,
                e.duration_s,
                e.objective,
                e.run_hash,
                e.point.to_json()
            );
        }
        let comma = if bi + 1 < batches.len() { "," } else { "" };
        let _ = writeln!(tj, "    ]}}{comma}");
    }
    tj.push_str("  ],\n");
    let _ = writeln!(tj, "  \"answer\": \"{}\"", answer.replace('\\', "\\\\").replace('"', "\\\""));
    tj.push_str("}\n");

    let mut hj = String::new();
    hj.push_str("{\n");
    let _ = writeln!(hj, "  \"search\": \"{}\",", spec.name);
    let _ = writeln!(hj, "  \"search_hash\": \"{hash:#018x}\",");
    hj.push_str("  \"evals\": [\n");
    let all: Vec<&EvalRecord> = batches.iter().flat_map(|b| &b.evals).collect();
    for (i, e) in all.iter().enumerate() {
        let comma = if i + 1 < all.len() { "," } else { "" };
        let _ = writeln!(
            hj,
            "    {{\"ordinal\": {}, \"label\": \"{}\", \"hash\": \"{:#018x}\"}}{comma}",
            e.ordinal,
            e.point.label(),
            e.run_hash
        );
    }
    hj.push_str("  ]\n}\n");

    SearchArtifacts {
        summary_txt: summary,
        trajectory_txt: trajectory,
        trajectory_json: tj,
        hashes_json: hj,
        search_hash: hash,
    }
}

/// Parses a trajectory written by [`search_artifacts`] back into batch
/// records, for `search --resume`.
pub fn trajectory_from_json(text: &str) -> Result<Vec<BatchRecord>, String> {
    let doc = json::parse(text).map_err(|e| format!("trajectory is not valid JSON: {e}"))?;
    let hex_u64 = |v: Option<&JsonValue>, what: &str| -> Result<u64, String> {
        let s = v.and_then(JsonValue::as_str).ok_or_else(|| format!("{what} must be a string"))?;
        let digits = s.strip_prefix("0x").ok_or_else(|| format!("{what} must start with 0x"))?;
        u64::from_str_radix(digits, 16).map_err(|_| format!("{what} is not a hex number"))
    };
    let batches_value = doc
        .get("batches")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "trajectory must have a batches array".to_string())?;
    let mut batches = Vec::new();
    for bv in batches_value {
        let index =
            bv.get("index")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "batch.index must be an integer".to_string())? as usize;
        let stage = bv
            .get("stage")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "batch.stage must be a string".to_string())?
            .to_string();
        let mut evals = Vec::new();
        for ev in bv
            .get("evals")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "batch.evals must be an array".to_string())?
        {
            let ordinal = ev
                .get("ordinal")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "eval.ordinal must be an integer".to_string())?
                as usize;
            let duration_s = ev
                .get("duration_s")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| "eval.duration_s must be a number".to_string())?;
            let objective = ev
                .get("objective")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| "eval.objective must be a number".to_string())?;
            let run_hash = hex_u64(ev.get("run_hash"), "eval.run_hash")?;
            let mut point = SweepPoint::from_json_value(
                ev.get("point").ok_or_else(|| "eval.point missing".to_string())?,
            )?;
            point.ordinal = ordinal;
            evals.push(EvalRecord { ordinal, point, duration_s, objective, run_hash });
        }
        batches.push(BatchRecord { index, stage, evals });
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(f: impl Fn(&SweepPoint) -> f64) -> impl Fn(&[PlannedEval]) -> Vec<(f64, u64)> {
        move |planned| planned.iter().map(|pe| (f(&pe.point), 0)).collect()
    }

    fn bisect_spec(lo: f64, hi: f64, threshold: f64, tolerance: f64) -> SearchSpec {
        SearchSpec {
            name: "t".to_string(),
            world: WorldKind::Smoke,
            base: SweepPoint::default(),
            objective: Objective::E2eP99Ms,
            duration_s: 1.0,
            strategy: Strategy::Bisect(BisectSpec {
                knob: Knob::CameraRateHz,
                lo,
                hi,
                threshold,
                tolerance,
                sections: 2,
            }),
        }
    }

    #[test]
    fn knob_names_round_trip_and_snap() {
        for k in Knob::ALL {
            assert_eq!(Knob::parse(k.name()), Ok(k));
        }
        assert!(Knob::parse("warp").is_err());
        assert_eq!(Knob::QueueCapacity.snap(2.6), 3.0);
        assert_eq!(Knob::QueueCapacity.snap(0.2), 1.0);
        assert_eq!(Knob::CameraRateHz.snap(2.6), 2.6);
    }

    #[test]
    fn invalid_brackets_are_reported_without_refinement() {
        let spec = bisect_spec(0.0 + 1.0, 100.0, 37.3, 0.5);
        let rate = |p: &SweepPoint| p.camera_rate_hz.unwrap();
        let always = run_search_with(&spec, &[], oracle(move |p| rate(p) + 1000.0));
        assert!(matches!(always.answer, SearchAnswer::AlwaysAbove { .. }));
        assert_eq!(always.evaluations(), 2);
        let never = run_search_with(&spec, &[], oracle(move |p| rate(p) - 1000.0));
        assert!(matches!(never.answer, SearchAnswer::NeverCrosses { .. }));
        assert_eq!(never.evaluations(), 2);
    }

    #[test]
    fn integer_knob_bisection_stops_at_unit_bracket() {
        let spec = SearchSpec {
            strategy: Strategy::Bisect(BisectSpec {
                knob: Knob::QueueCapacity,
                lo: 1.0,
                hi: 16.0,
                threshold: 10.0,
                tolerance: 0.5,
                sections: 2,
            }),
            ..bisect_spec(1.0, 16.0, 10.0, 0.5)
        };
        // Broken while capacity <= 6 is false... objective grows as
        // capacity *falls* — make it monotone in the search direction:
        // objective = capacity, threshold 10.2 → boundary between 10, 11.
        let outcome =
            run_search_with(&spec, &[], oracle(|p| p.queue_capacity.unwrap() as f64 + 0.5));
        match outcome.answer {
            SearchAnswer::Boundary { lo, hi, .. } => {
                assert_eq!((lo, hi), (9.0, 10.0), "unit bracket around the integer threshold");
            }
            other => panic!("expected a boundary, got {}", answer_text(&other)),
        }
    }

    #[test]
    fn spec_json_round_trip_and_rejection() {
        let text = r#"{
            "name": "b",
            "world": "paper",
            "duration_s": 60.0,
            "objective": "deadline_factor",
            "base": {"detector": "SSD300"},
            "bisect": {"knob": "camera_rate_hz", "lo": 10, "hi": 25,
                       "threshold": 2.0, "tolerance": 0.5, "sections": 2}
        }"#;
        let spec = SearchSpec::from_json(text).unwrap();
        assert_eq!(spec.name, "b");
        assert_eq!(spec.objective, Objective::DeadlineFactor);
        assert!(matches!(&spec.strategy, Strategy::Bisect(b) if b.knob == Knob::CameraRateHz));
        assert!(spec.describe().contains("bisect camera_rate_hz"));

        let halving = r#"{
            "name": "w", "world": "smoke", "duration_s": 4.0,
            "objective": "e2e_p99_ms",
            "halving": {"knobs": [{"knob": "camera_rate_hz", "lo": 10, "hi": 40}],
                        "initial": 4, "eta": 2, "rungs": 2, "seed": 7,
                        "max_duration_s": 6.5}
        }"#;
        let spec = SearchSpec::from_json(halving).unwrap();
        assert!(matches!(&spec.strategy, Strategy::Halving(h) if h.initial == 4));
        assert!(
            matches!(&spec.strategy, Strategy::Halving(h) if h.max_duration_s == Some(6.5)),
            "max_duration_s parses"
        );

        assert!(SearchSpec::from_json("{\"name\": \"x\"}").is_err(), "no strategy");
        assert!(
            SearchSpec::from_json(
                "{\"name\": \"x\", \"duration_s\": 1, \
                 \"bisect\": {\"knob\": \"camera_rate_hz\", \"lo\": 9, \"hi\": 5, \
                 \"threshold\": 1, \"tolerance\": 0.5}}"
            )
            .is_err(),
            "inverted range"
        );
        assert!(
            SearchSpec::from_json(
                "{\"name\": \"x\", \"duration_s\": 1, \
                 \"bisect\": {\"knob\": \"camera_rate_hz\", \"lo\": 5, \"hi\": 9, \
                 \"threshold\": 1, \"tolerance\": 1e999}}"
            )
            .is_err(),
            "non-finite tolerance"
        );
        assert!(SearchSpec::builtin("smoke").is_some());
        assert!(SearchSpec::builtin("nope").is_none());
    }

    #[test]
    fn halving_budget_and_reproducibility() {
        let spec = SearchSpec {
            name: "w".to_string(),
            world: WorldKind::Smoke,
            base: SweepPoint::default(),
            objective: Objective::E2eP99Ms,
            duration_s: 2.0,
            strategy: Strategy::Halving(HalvingSpec {
                knobs: vec![
                    KnobRange { knob: Knob::CameraRateHz, lo: 10.0, hi: 40.0 },
                    KnobRange { knob: Knob::QueueCapacity, lo: 1.0, hi: 4.0 },
                ],
                initial: 8,
                eta: 2,
                rungs: 3,
                seed: 2020,
                max_duration_s: None,
            }),
        };
        let rate = |p: &SweepPoint| p.camera_rate_hz.unwrap();
        let a = run_search_with(&spec, &[], oracle(rate));
        let b = run_search_with(&spec, &[], oracle(rate));
        assert_eq!(a, b, "same seed, same trajectory");
        assert_eq!(a.evaluations(), 8 + 4 + 2);
        // The winner is the highest-camera-rate sample, re-scored at the
        // longest duration.
        match &a.answer {
            SearchAnswer::Best { point, objective } => {
                assert_eq!(*objective, rate(point));
                assert_eq!(a.batches[2].evals[0].duration_s, 8.0, "rung 2 runs 4x the base");
            }
            other => panic!("expected Best, got {}", answer_text(other)),
        }
        // A different seed samples different points.
        let reseeded = SearchSpec {
            strategy: match &spec.strategy {
                Strategy::Halving(h) => Strategy::Halving(HalvingSpec { seed: 2021, ..h.clone() }),
                _ => unreachable!(),
            },
            ..spec.clone()
        };
        let c = run_search_with(&reseeded, &[], oracle(rate));
        assert_ne!(a.search_hash, c.search_hash);
    }

    #[test]
    fn capped_halving_carries_survivors_through_noop_rungs() {
        let spec = SearchSpec {
            name: "w".to_string(),
            world: WorldKind::Smoke,
            base: SweepPoint::default(),
            objective: Objective::E2eP99Ms,
            duration_s: 2.0,
            strategy: Strategy::Halving(HalvingSpec {
                knobs: vec![KnobRange { knob: Knob::CameraRateHz, lo: 10.0, hi: 40.0 }],
                initial: 8,
                eta: 2,
                rungs: 3,
                seed: 2020,
                max_duration_s: Some(4.0),
            }),
        };
        spec.validate().unwrap();
        let rate = |p: &SweepPoint| p.camera_rate_hz.unwrap();
        let a = run_search_with(&spec, &[], oracle(rate));
        // Rung durations are 2 s, 4 s, then 4 s again: the last rung
        // reuses the survivors' objectives and evaluates nothing.
        assert_eq!(a.evaluations(), 8 + 4, "no-op rung costs zero evaluations");
        assert_eq!(a.batches.len(), 2, "no batch is recorded for the no-op rung");
        assert_eq!(a.batches[1].evals[0].duration_s, 4.0);
        match &a.answer {
            SearchAnswer::Best { point, objective } => assert_eq!(*objective, rate(point)),
            other => panic!("expected Best, got {}", answer_text(other)),
        }
        // describe() predicts the reduced budget and names the cap.
        assert!(spec.describe().contains("12 evaluation(s)"), "{}", spec.describe());
        assert!(spec.describe().contains("capped at 4 s"), "{}", spec.describe());
        let b = run_search_with(&spec, &[], oracle(rate));
        assert_eq!(a, b, "capped halving is deterministic");
        // A cap below every rung's duration must still be rejected only
        // when invalid; a negative cap is invalid.
        let bad = SearchSpec {
            strategy: match &spec.strategy {
                Strategy::Halving(h) => {
                    Strategy::Halving(HalvingSpec { max_duration_s: Some(-1.0), ..h.clone() })
                }
                _ => unreachable!(),
            },
            ..spec.clone()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn trajectory_json_round_trips_exactly() {
        let spec = bisect_spec(1.0, 82.0, 37.3, 0.5);
        let outcome =
            run_search_with(&spec, &[], oracle(|p| p.camera_rate_hz.unwrap() * 1.000001 + 0.1));
        let artifacts = search_artifacts(&spec, &outcome);
        let parsed = trajectory_from_json(&artifacts.trajectory_json).unwrap();
        assert_eq!(parsed, outcome.batches);
        assert!(trajectory_from_json("{\"batches\": 3}").is_err());
        assert!(trajectory_from_json("nonsense").is_err());
    }
}
