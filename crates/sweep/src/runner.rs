//! The deterministic batch runner.
//!
//! Each sweep point is an independent simulation — a pure function of its
//! `StackConfig` — so the cartesian product is embarrassingly parallel.
//! The runner schedules it over [`av_core::parallel::parallel_map`],
//! which preserves input order regardless of worker count, and stamps
//! every finished run with its golden hash
//! ([`av_core::determinism::run_hash`]). Results are therefore
//! byte-identical across `--jobs` levels; the aggregator additionally
//! sorts by ordinal so even a reordered result list cannot change the
//! artifacts.

use crate::spec::{SweepPoint, SweepSpec};
use av_core::determinism::run_hash;
use av_core::parallel::parallel_map;
use av_core::stack::{run_drive, RunConfig, RunReport};

/// One completed sweep point.
#[derive(Debug)]
pub struct PointResult {
    /// The point that produced this run.
    pub point: SweepPoint,
    /// The full run report (tables, drops, power, optional trace).
    pub report: RunReport,
    /// Golden hash of the run ([`av_core::determinism::run_hash`]).
    pub run_hash: u64,
}

/// The run configuration a sweep point effectively executes: the CLI
/// duration wins, then the spec's `duration_s`, then the world default.
pub fn effective_run(spec: &SweepSpec, run: &RunConfig) -> RunConfig {
    RunConfig { duration_s: run.duration_s.or(spec.duration_s), trace: run.trace.clone() }
}

/// Runs every point of the sweep over `jobs` worker threads, in
/// expansion order.
pub fn run_sweep(spec: &SweepSpec, run: &RunConfig, jobs: usize) -> Vec<PointResult> {
    let base = spec.base_config();
    let run = effective_run(spec, run);
    parallel_map(spec.points(), jobs, move |point| {
        let config = point.apply(&base);
        let report = run_drive(&config, &run);
        let run_hash = run_hash(&report);
        PointResult { point, report, run_hash }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorldKind;
    use av_vision::DetectorKind;

    #[test]
    fn runner_is_jobs_invariant_and_order_preserving() {
        let spec = SweepSpec {
            duration_s: Some(4.0),
            detectors: vec![DetectorKind::Ssd512, DetectorKind::YoloV3],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let serial = run_sweep(&spec, &RunConfig::default(), 1);
        let threaded = run_sweep(&spec, &RunConfig::default(), 4);
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.run_hash, b.run_hash, "point {} diverged across jobs", a.point.id());
        }
        assert_eq!(serial[0].report.detector, DetectorKind::Ssd512);
        assert_eq!(serial[1].report.detector, DetectorKind::YoloV3);
    }

    #[test]
    fn cli_duration_beats_spec_duration() {
        let spec = SweepSpec { duration_s: Some(4.0), ..SweepSpec::new("t", WorldKind::Smoke) };
        let run = effective_run(&spec, &RunConfig::seconds(2.0));
        assert_eq!(run.duration_s, Some(2.0));
        let run = effective_run(&spec, &RunConfig::default());
        assert_eq!(run.duration_s, Some(4.0));
    }
}
