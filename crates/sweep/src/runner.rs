//! The deterministic batch runner.
//!
//! Each sweep point is an independent simulation — a pure function of its
//! `StackConfig` — so the cartesian product is embarrassingly parallel.
//! The runner schedules it over [`av_core::parallel::parallel_map`],
//! which preserves input order regardless of worker count, and stamps
//! every finished run with its golden hash
//! ([`av_core::determinism::run_hash`]). Results are therefore
//! byte-identical across `--jobs` levels; the aggregator additionally
//! sorts by ordinal so even a reordered result list cannot change the
//! artifacts.
//!
//! Two structural optimizations keep the result *set* untouched while
//! skipping redundant simulation:
//!
//! * **Deduplication** — grids whose axes overlap their explicit extra
//!   points can expand to several points with identical effective
//!   configurations. Each distinct `(StackConfig, RunConfig)` pair is
//!   evaluated once and the result fanned out to every point that maps
//!   to it, in expansion order.
//! * **Prefix sharing** — points whose configurations differ *only* in
//!   blackout windows evolve identically until the earliest window
//!   opens. Such a group runs once up to a shared barrier (a 0.5 s
//!   multiple strictly before every member's first window), checkpoints
//!   there ([`av_core::stack::checkpoint_drive`]), and forks the
//!   remaining members from the snapshot
//!   ([`av_core::stack::resume_drive`]). The checkpoint seam guarantees
//!   each fork is byte-identical to that member's own cold run, so
//!   sharing is invisible in every artifact.

use crate::cache::EvalCache;
use crate::spec::{SweepPoint, SweepSpec};
use av_core::ckptstore::CkptStore;
use av_core::determinism::run_hash;
use av_core::parallel::parallel_map_streamed;
use av_core::stack::{
    checkpoint_drive, drive_fingerprint, drive_fingerprint_stripped, resume_drive, run_drive,
    Checkpoint, RunConfig, RunReport, StackConfig,
};
use std::collections::HashMap;

/// One completed sweep point.
#[derive(Debug)]
pub struct PointResult {
    /// The point that produced this run.
    pub point: SweepPoint,
    /// The full run report (tables, drops, power, optional trace).
    pub report: RunReport,
    /// Golden hash of the run ([`av_core::determinism::run_hash`]).
    pub run_hash: u64,
}

/// How much work the runner actually did, next to what the expanded
/// grid asked for. Purely informational: the result set is identical
/// whether or not any run was deduplicated or prefix-shared.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Points in the expanded grid.
    pub points: usize,
    /// Distinct evaluations after deduplication.
    pub unique_points: usize,
    /// Points served by fanning out another point's result.
    pub deduped: usize,
    /// Groups that shared a checkpointed prefix.
    pub prefix_groups: usize,
    /// Evaluations forked from a shared checkpoint instead of running
    /// from virtual time zero.
    pub resumed_points: usize,
    /// Virtual seconds of prefix that were *not* re-simulated thanks to
    /// sharing (barrier × forks, summed over groups).
    pub shared_prefix_s: f64,
    /// Virtual seconds of drive horizon actually simulated.
    pub simulated_s: f64,
    /// Prefix groups whose shared barrier was restored from the durable
    /// checkpoint store (left behind by an earlier process) instead of
    /// being simulated by this sweep.
    pub store_prefix_hits: usize,
    /// Virtual seconds of group-leader prefix those restores skipped.
    pub store_saved_s: f64,
}

/// The run configuration a sweep point effectively executes: the CLI
/// duration wins, then the spec's `duration_s`, then the world default.
pub fn effective_run(spec: &SweepSpec, run: &RunConfig) -> RunConfig {
    RunConfig { duration_s: run.duration_s.or(spec.duration_s), trace: run.trace.clone() }
}

/// The largest checkpoint barrier a group of blackout-only-divergent
/// configs can legally share: a multiple of 0.5 s, at least 1 s in,
/// strictly before every member's earliest outage window and strictly
/// before the end of the drive. `None` when no such barrier exists
/// (too-early windows or a too-short drive), in which case the group
/// falls back to independent cold runs.
fn shared_barrier_s(duration_s: f64, members: &[&StackConfig]) -> Option<f64> {
    let mut limit = duration_s;
    for config in members {
        if let Some(first) = config.blackouts.iter().map(|b| b.from_s).min_by(f64::total_cmp) {
            limit = limit.min(first);
        }
    }
    // Largest multiple of 0.5 strictly below the limit. Strictness
    // matters: periodic sensors fire exactly on these boundaries, and a
    // window opening at the barrier would diverge from the cold run.
    let barrier = (limit / 0.5 - 1e-9).floor() * 0.5;
    (barrier >= 1.0).then_some(barrier)
}

/// A unit of work for the worker pool: indices refer to the deduplicated
/// representative list.
enum Task {
    /// An independent cold run.
    Single(usize),
    /// A prefix-sharing group: the first member runs through a
    /// checkpoint at `barrier_s`; the rest fork from the snapshot. When
    /// a durable store already held the barrier (`prefix`), *every*
    /// member forks from the restored snapshot and nobody simulates
    /// the prefix.
    Shared { barrier_s: f64, members: Vec<usize>, prefix: Option<Checkpoint> },
}

/// Runs every point of the sweep over `jobs` worker threads, in
/// expansion order.
pub fn run_sweep(spec: &SweepSpec, run: &RunConfig, jobs: usize) -> Vec<PointResult> {
    run_sweep_instrumented(spec, run, jobs).0
}

/// [`run_sweep`], also reporting how much simulation the deduplication
/// and prefix-sharing layers avoided.
pub fn run_sweep_instrumented(
    spec: &SweepSpec,
    run: &RunConfig,
    jobs: usize,
) -> (Vec<PointResult>, SweepStats) {
    run_sweep_streamed(spec, run, jobs, |_| {})
}

/// [`run_sweep_instrumented`], additionally invoking `on_point` for
/// every finished point *in expansion order* as soon as its result is
/// known — the streaming seam the scenario service uses to ship
/// per-point results while later points are still simulating.
///
/// An ordinal frontier gates emission: point `k` is emitted only after
/// points `0..k`, so the callback sequence is identical at any `jobs`
/// level even though representatives complete out of order (the same
/// reorder discipline as [`parallel_map_streamed`], lifted through the
/// dedup fan-out).
pub fn run_sweep_streamed(
    spec: &SweepSpec,
    run: &RunConfig,
    jobs: usize,
    on_point: impl FnMut(&PointResult),
) -> (Vec<PointResult>, SweepStats) {
    run_sweep_streamed_with_store(spec, run, jobs, None, on_point)
}

/// [`run_sweep_streamed`] backed by a durable checkpoint store. Each
/// prefix-sharing group first looks for its shared barrier among the
/// checkpoints an earlier process persisted — a hit means *no* member
/// simulates the prefix — and on a miss the group leader's freshly
/// captured barrier is written back through the store's crash-safe
/// path for the next session. Byte-identical to the store-less sweep
/// at every `jobs` level; only [`SweepStats`] can tell the difference.
pub fn run_sweep_streamed_with_store(
    spec: &SweepSpec,
    run: &RunConfig,
    jobs: usize,
    store: Option<&CkptStore>,
    mut on_point: impl FnMut(&PointResult),
) -> (Vec<PointResult>, SweepStats) {
    let base = spec.base_config();
    let run = effective_run(spec, run);
    let points = spec.points();
    let duration_s = run.duration_s.unwrap_or(base.scenario.duration_s);

    // Deduplicate: one representative per distinct effective config.
    let mut reps: Vec<StackConfig> = Vec::new();
    let mut owner: Vec<usize> = Vec::with_capacity(points.len());
    let mut by_key: HashMap<u64, usize> = HashMap::new();
    for point in &points {
        let config = point.apply(&base);
        let key = EvalCache::spec_hash(&config, &run);
        let idx = *by_key.entry(key).or_insert_with(|| {
            reps.push(config);
            reps.len() - 1
        });
        owner.push(idx);
    }

    // Group representatives that differ only in blackout windows, in
    // first-appearance order (determinism of the task list).
    let mut group_order: Vec<Vec<usize>> = Vec::new();
    let mut group_index: HashMap<u64, usize> = HashMap::new();
    for (i, config) in reps.iter().enumerate() {
        let mut stripped = config.clone();
        stripped.blackouts.clear();
        let key = EvalCache::spec_hash(&stripped, &run);
        let gi = *group_index.entry(key).or_insert_with(|| {
            group_order.push(Vec::new());
            group_order.len() - 1
        });
        group_order[gi].push(i);
    }

    let mut stats = SweepStats {
        points: points.len(),
        unique_points: reps.len(),
        deduped: points.len() - reps.len(),
        ..SweepStats::default()
    };
    let mut tasks: Vec<Task> = Vec::new();
    for members in group_order {
        let configs: Vec<&StackConfig> = members.iter().map(|&i| &reps[i]).collect();
        match (members.len() >= 2).then(|| shared_barrier_s(duration_s, &configs)).flatten() {
            Some(barrier_s) => {
                // Probe the durable store here, in the sequential
                // task-build loop, so the stats stay a pure function of
                // the store's state at launch — independent of worker
                // count and completion order.
                let prefix = store.and_then(|st| {
                    let leader = &reps[members[0]];
                    st.best_prefix(
                        drive_fingerprint(leader),
                        drive_fingerprint_stripped(leader),
                        run.trace.is_some(),
                        (barrier_s * 1e9).round() as u64,
                    )
                });
                stats.prefix_groups += 1;
                if prefix.is_some() {
                    stats.store_prefix_hits += 1;
                    stats.store_saved_s += barrier_s;
                    stats.resumed_points += members.len();
                    stats.shared_prefix_s += barrier_s * members.len() as f64;
                    stats.simulated_s += (duration_s - barrier_s) * members.len() as f64;
                } else {
                    stats.resumed_points += members.len() - 1;
                    stats.shared_prefix_s += barrier_s * (members.len() - 1) as f64;
                    stats.simulated_s +=
                        duration_s + (duration_s - barrier_s) * (members.len() - 1) as f64;
                }
                tasks.push(Task::Shared { barrier_s, members, prefix });
            }
            None => {
                stats.simulated_s += duration_s * members.len() as f64;
                tasks.extend(members.into_iter().map(Task::Single));
            }
        }
    }

    let reps = &reps;
    let run_ref = &run;
    // Results fan out from representatives to points behind an ordinal
    // frontier: a point is emitted (and appended to `results`) the
    // moment its representative's result is known *and* every earlier
    // point has already been emitted, so the on_point sequence — and
    // the result vector it mirrors — is independent of completion
    // order.
    let mut rep_results: Vec<Option<(RunReport, u64)>> = (0..reps.len()).map(|_| None).collect();
    let mut results: Vec<PointResult> = Vec::with_capacity(points.len());
    parallel_map_streamed(
        tasks,
        jobs,
        move |task| {
            let finish = |rep: usize, report: RunReport| {
                let hash = run_hash(&report);
                (rep, report, hash)
            };
            match task {
                Task::Single(rep) => vec![finish(rep, run_drive(&reps[rep], run_ref))],
                Task::Shared { barrier_s, members, prefix } => {
                    let (mut out, checkpoint) = match prefix {
                        // The barrier came out of the store: every
                        // member forks from the restored snapshot.
                        Some(cp) => (
                            vec![finish(members[0], resume_drive(&reps[members[0]], run_ref, &cp))],
                            cp,
                        ),
                        None => {
                            let (first, cp) =
                                checkpoint_drive(&reps[members[0]], run_ref, barrier_s);
                            if let Some(st) = store {
                                if let Err(e) = st.put(&cp) {
                                    eprintln!("warning: could not persist checkpoint: {e}");
                                }
                            }
                            (vec![finish(members[0], first)], cp)
                        }
                    };
                    for &rep in &members[1..] {
                        out.push(finish(rep, resume_drive(&reps[rep], run_ref, &checkpoint)));
                    }
                    out
                }
            }
        },
        |_, completed: &Vec<(usize, RunReport, u64)>| {
            for (rep, report, hash) in completed {
                rep_results[*rep] = Some((report.clone(), *hash));
            }
            while results.len() < points.len() {
                let point = &points[results.len()];
                let Some((report, run_hash)) = rep_results[owner[results.len()]].clone() else {
                    break;
                };
                let result = PointResult { point: point.clone(), report, run_hash };
                on_point(&result);
                results.push(result);
            }
        },
    );
    assert_eq!(results.len(), points.len(), "every representative evaluated");
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BlackoutSpec, WorldKind};
    use av_vision::DetectorKind;

    #[test]
    fn runner_is_jobs_invariant_and_order_preserving() {
        let spec = SweepSpec {
            duration_s: Some(4.0),
            detectors: vec![DetectorKind::Ssd512, DetectorKind::YoloV3],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let serial = run_sweep(&spec, &RunConfig::default(), 1);
        let threaded = run_sweep(&spec, &RunConfig::default(), 4);
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.run_hash, b.run_hash, "point {} diverged across jobs", a.point.id());
        }
        assert_eq!(serial[0].report.detector, DetectorKind::Ssd512);
        assert_eq!(serial[1].report.detector, DetectorKind::YoloV3);
    }

    #[test]
    fn streamed_points_arrive_in_expansion_order_at_any_jobs_level() {
        let spec = SweepSpec {
            duration_s: Some(4.0),
            detectors: vec![DetectorKind::Ssd512, DetectorKind::Ssd300, DetectorKind::YoloV3],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let mut streams: Vec<Vec<(usize, u64)>> = Vec::new();
        for jobs in [1, 4] {
            let mut seen = Vec::new();
            let (results, _) = run_sweep_streamed(&spec, &RunConfig::default(), jobs, |r| {
                seen.push((r.point.ordinal, r.run_hash));
            });
            let want: Vec<(usize, u64)> =
                results.iter().map(|r| (r.point.ordinal, r.run_hash)).collect();
            assert_eq!(seen, want, "stream order != result order at jobs={jobs}");
            streams.push(seen);
        }
        assert_eq!(streams[0], streams[1], "streamed sequence diverged across jobs levels");
        assert_eq!(streams[0].iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn cli_duration_beats_spec_duration() {
        let spec = SweepSpec { duration_s: Some(4.0), ..SweepSpec::new("t", WorldKind::Smoke) };
        let run = effective_run(&spec, &RunConfig::seconds(2.0));
        assert_eq!(run.duration_s, Some(2.0));
        let run = effective_run(&spec, &RunConfig::default());
        assert_eq!(run.duration_s, Some(4.0));
    }

    #[test]
    fn duplicate_points_evaluate_once_and_fan_out() {
        // The grid's (YOLOv3) point reappears as an explicit extra point.
        let spec = SweepSpec {
            duration_s: Some(4.0),
            detectors: vec![DetectorKind::YoloV3],
            extra_points: vec![SweepPoint {
                detector: Some(DetectorKind::YoloV3),
                ..SweepPoint::default()
            }],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let (results, stats) = run_sweep_instrumented(&spec, &RunConfig::default(), 1);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.points, 2);
        assert_eq!(stats.unique_points, 1);
        assert_eq!(stats.deduped, 1);
        assert_eq!(results[0].run_hash, results[1].run_hash);
        // Ordinals stay the expansion's own.
        assert_eq!(results[0].point.ordinal, 0);
        assert_eq!(results[1].point.ordinal, 1);
    }

    #[test]
    fn blackout_axis_shares_a_prefix_without_changing_results() {
        let spec = SweepSpec {
            duration_s: Some(6.0),
            blackouts: vec![
                BlackoutSpec::parse("none").unwrap(),
                BlackoutSpec::parse("gnss:3-5").unwrap(),
                BlackoutSpec::parse("lidar:4-5").unwrap(),
            ],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let (results, stats) = run_sweep_instrumented(&spec, &RunConfig::default(), 2);
        assert_eq!(stats.prefix_groups, 1);
        assert_eq!(stats.resumed_points, 2);
        // Barrier: largest 0.5 multiple strictly below min(3.0, 6.0).
        assert!((stats.shared_prefix_s - 2.5 * 2.0).abs() < 1e-9);

        // Sharing must be invisible: every point equals its cold run.
        let base = spec.base_config();
        let run = effective_run(&spec, &RunConfig::default());
        for r in &results {
            let cold = run_drive(&r.point.apply(&base), &run);
            assert_eq!(
                r.run_hash,
                av_core::determinism::run_hash(&cold),
                "prefix-shared point {} diverged from its cold run",
                r.point.id()
            );
        }
    }

    #[test]
    fn straddling_blackouts_fall_back_to_cold_runs() {
        // A window opening at 0.5 s leaves no legal barrier (>= 1.0).
        let spec = SweepSpec {
            duration_s: Some(4.0),
            blackouts: vec![
                BlackoutSpec::parse("none").unwrap(),
                BlackoutSpec::parse("gnss:0.5-2").unwrap(),
            ],
            ..SweepSpec::new("t", WorldKind::Smoke)
        };
        let (results, stats) = run_sweep_instrumented(&spec, &RunConfig::default(), 1);
        assert_eq!(stats.prefix_groups, 0);
        assert_eq!(stats.resumed_points, 0);
        assert_eq!(results.len(), 2);
    }
}
