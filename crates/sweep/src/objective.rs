//! Search objectives: one scalar per run.
//!
//! The scenario-space search drives the sweep engine toward *some*
//! quantity — p99 end-to-end latency, the deadline-violation factor, the
//! drop rate. An [`Objective`] names that quantity and extracts it from
//! a finished [`RunReport`] through [`av_core::metrics`], so the number
//! the optimizer ranks by is byte-identical to the one the sweep
//! aggregator prints.

use av_core::metrics::{blame_scalars, run_metrics};
use av_core::stack::RunReport;

/// The scalar a search evaluates at every point. All objectives are
/// oriented so that *larger means worse* — boundary searches look for
/// the knob value where the objective first exceeds a threshold, and
/// worst-case searches maximize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// p99 end-to-end latency over the worst path, ms.
    E2eP99Ms,
    /// Mean end-to-end latency over the worst path, ms.
    E2eMeanMs,
    /// `e2e p99 / 100 ms` — Finding 2's "deadline broken by more than
    /// 2×" is this factor exceeding 2.
    DeadlineFactor,
    /// Fraction of end-to-end frames over the 100 ms deadline.
    DeadlineMissFraction,
    /// Dropped messages as a percentage of delivered, all subscriptions.
    DropPct,
    /// Mean localization error, m.
    LocErrM,
    /// Worst crash-to-recovery latency under the fault plan, ms.
    RecoveryLatencyMs,
    /// Total time spent degraded (node down or on a fallback), s.
    TimeDegradedS,
    /// A blame-attribution scalar by key — spelled `blame:<key>` in
    /// specs, e.g. `blame:critical_path_share_queue` or
    /// `blame:p99_blame_ndt_matching`. Requires a traced evaluation (the
    /// search driver enables tracing automatically); an unknown key
    /// evaluates to 0.
    Blame(String),
}

impl Objective {
    /// Every objective, in spec-name order.
    pub const ALL: [Objective; 8] = [
        Objective::E2eP99Ms,
        Objective::E2eMeanMs,
        Objective::DeadlineFactor,
        Objective::DeadlineMissFraction,
        Objective::DropPct,
        Objective::LocErrM,
        Objective::RecoveryLatencyMs,
        Objective::TimeDegradedS,
    ];

    /// The spec spelling of this objective.
    pub fn name(&self) -> String {
        match self {
            Objective::E2eP99Ms => "e2e_p99_ms",
            Objective::E2eMeanMs => "e2e_mean_ms",
            Objective::DeadlineFactor => "deadline_factor",
            Objective::DeadlineMissFraction => "deadline_miss_fraction",
            Objective::DropPct => "drop_pct",
            Objective::LocErrM => "loc_err_m",
            Objective::RecoveryLatencyMs => "recovery_latency_ms",
            Objective::TimeDegradedS => "time_degraded_s",
            Objective::Blame(key) => return format!("blame:{key}"),
        }
        .to_string()
    }

    /// `true` when evaluation reads the blame attribution, which needs
    /// the run traced.
    pub fn needs_trace(&self) -> bool {
        matches!(self, Objective::Blame(_))
    }

    /// Parses a spec spelling.
    pub fn parse(s: &str) -> Result<Objective, String> {
        if let Some(found) = Objective::ALL.into_iter().find(|o| o.name() == s) {
            return Ok(found);
        }
        if let Some(key) = s.strip_prefix("blame:") {
            if key.is_empty() {
                return Err("blame: objective needs a key, e.g. \
                            blame:critical_path_share_queue"
                    .to_string());
            }
            return Ok(Objective::Blame(key.to_string()));
        }
        let names: Vec<String> = Objective::ALL.iter().map(|o| o.name()).collect();
        Err(format!(
            "unknown objective {s:?} (expected one of {}, or blame:<key>)",
            names.join(", ")
        ))
    }

    /// Extracts the objective value from a finished run.
    pub fn evaluate(&self, report: &RunReport) -> f64 {
        if let Objective::Blame(key) = self {
            return blame_scalars(report).ok().and_then(|m| m.get(key).copied()).unwrap_or(0.0);
        }
        let m = run_metrics(report);
        match self {
            Objective::E2eP99Ms => m.e2e_p99_ms,
            Objective::E2eMeanMs => m.e2e_mean_ms,
            Objective::DeadlineFactor => m.deadline_factor,
            Objective::DeadlineMissFraction => m.deadline_miss_fraction,
            Objective::DropPct => m.drop_pct,
            Objective::LocErrM => m.loc_err_m,
            Objective::RecoveryLatencyMs => m.recovery_latency_ms,
            Objective::TimeDegradedS => m.time_degraded_s,
            Objective::Blame(_) => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::stack::{run_drive, RunConfig, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::parse(&o.name()), Ok(o));
        }
        let blame = Objective::parse("blame:critical_path_share_queue").unwrap();
        assert_eq!(blame, Objective::Blame("critical_path_share_queue".to_string()));
        assert_eq!(blame.name(), "blame:critical_path_share_queue");
        assert!(blame.needs_trace());
        assert!(!Objective::E2eP99Ms.needs_trace());
        assert!(Objective::parse("blame:").is_err());
        assert!(Objective::parse("p99").is_err());
    }

    #[test]
    fn blame_objective_reads_attribution_scalars() {
        let config = StackConfig::smoke_test(DetectorKind::Ssd512);
        let report = run_drive(&config, &RunConfig::seconds(4.0).with_trace());
        let m = av_core::metrics::blame_scalars(&report).unwrap();
        let o = Objective::parse("blame:critical_path_share_queue").unwrap();
        assert_eq!(o.evaluate(&report), m["critical_path_share_queue"]);
        // Unknown keys and untraced runs degrade to 0 rather than panic.
        assert_eq!(Objective::Blame("no_such_key".to_string()).evaluate(&report), 0.0);
        let untraced = run_drive(&config, &RunConfig::seconds(4.0));
        assert_eq!(o.evaluate(&untraced), 0.0);
    }

    #[test]
    fn evaluation_matches_core_metrics() {
        let config = StackConfig::smoke_test(DetectorKind::Ssd512);
        let report = run_drive(&config, &RunConfig::seconds(4.0));
        let m = run_metrics(&report);
        assert_eq!(Objective::E2eP99Ms.evaluate(&report), m.e2e_p99_ms);
        assert_eq!(Objective::DeadlineFactor.evaluate(&report), m.deadline_factor);
        assert_eq!(Objective::DropPct.evaluate(&report), m.drop_pct);
        assert_eq!(
            Objective::DeadlineFactor.evaluate(&report),
            Objective::E2eP99Ms.evaluate(&report) / av_core::metrics::DEADLINE_MS
        );
    }
}
