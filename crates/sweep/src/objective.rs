//! Search objectives: one scalar per run.
//!
//! The scenario-space search drives the sweep engine toward *some*
//! quantity — p99 end-to-end latency, the deadline-violation factor, the
//! drop rate. An [`Objective`] names that quantity and extracts it from
//! a finished [`RunReport`] through [`av_core::metrics`], so the number
//! the optimizer ranks by is byte-identical to the one the sweep
//! aggregator prints.

use av_core::metrics::run_metrics;
use av_core::stack::RunReport;

/// The scalar a search evaluates at every point. All objectives are
/// oriented so that *larger means worse* — boundary searches look for
/// the knob value where the objective first exceeds a threshold, and
/// worst-case searches maximize it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// p99 end-to-end latency over the worst path, ms.
    E2eP99Ms,
    /// Mean end-to-end latency over the worst path, ms.
    E2eMeanMs,
    /// `e2e p99 / 100 ms` — Finding 2's "deadline broken by more than
    /// 2×" is this factor exceeding 2.
    DeadlineFactor,
    /// Fraction of end-to-end frames over the 100 ms deadline.
    DeadlineMissFraction,
    /// Dropped messages as a percentage of delivered, all subscriptions.
    DropPct,
    /// Mean localization error, m.
    LocErrM,
    /// Worst crash-to-recovery latency under the fault plan, ms.
    RecoveryLatencyMs,
    /// Total time spent degraded (node down or on a fallback), s.
    TimeDegradedS,
}

impl Objective {
    /// Every objective, in spec-name order.
    pub const ALL: [Objective; 8] = [
        Objective::E2eP99Ms,
        Objective::E2eMeanMs,
        Objective::DeadlineFactor,
        Objective::DeadlineMissFraction,
        Objective::DropPct,
        Objective::LocErrM,
        Objective::RecoveryLatencyMs,
        Objective::TimeDegradedS,
    ];

    /// The spec spelling of this objective.
    pub fn name(self) -> &'static str {
        match self {
            Objective::E2eP99Ms => "e2e_p99_ms",
            Objective::E2eMeanMs => "e2e_mean_ms",
            Objective::DeadlineFactor => "deadline_factor",
            Objective::DeadlineMissFraction => "deadline_miss_fraction",
            Objective::DropPct => "drop_pct",
            Objective::LocErrM => "loc_err_m",
            Objective::RecoveryLatencyMs => "recovery_latency_ms",
            Objective::TimeDegradedS => "time_degraded_s",
        }
    }

    /// Parses a spec spelling.
    pub fn parse(s: &str) -> Result<Objective, String> {
        Objective::ALL.into_iter().find(|o| o.name() == s).ok_or_else(|| {
            let names: Vec<&str> = Objective::ALL.iter().map(|o| o.name()).collect();
            format!("unknown objective {s:?} (expected one of {})", names.join(", "))
        })
    }

    /// Extracts the objective value from a finished run.
    pub fn evaluate(self, report: &RunReport) -> f64 {
        let m = run_metrics(report);
        match self {
            Objective::E2eP99Ms => m.e2e_p99_ms,
            Objective::E2eMeanMs => m.e2e_mean_ms,
            Objective::DeadlineFactor => m.deadline_factor,
            Objective::DeadlineMissFraction => m.deadline_miss_fraction,
            Objective::DropPct => m.drop_pct,
            Objective::LocErrM => m.loc_err_m,
            Objective::RecoveryLatencyMs => m.recovery_latency_ms,
            Objective::TimeDegradedS => m.time_degraded_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::stack::{run_drive, RunConfig, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::parse(o.name()), Ok(o));
        }
        assert!(Objective::parse("p99").is_err());
    }

    #[test]
    fn evaluation_matches_core_metrics() {
        let config = StackConfig::smoke_test(DetectorKind::Ssd512);
        let report = run_drive(&config, &RunConfig::seconds(4.0));
        let m = run_metrics(&report);
        assert_eq!(Objective::E2eP99Ms.evaluate(&report), m.e2e_p99_ms);
        assert_eq!(Objective::DeadlineFactor.evaluate(&report), m.deadline_factor);
        assert_eq!(Objective::DropPct.evaluate(&report), m.drop_pct);
        assert_eq!(
            Objective::DeadlineFactor.evaluate(&report),
            Objective::E2eP99Ms.evaluate(&report) / av_core::metrics::DEADLINE_MS
        );
    }
}
