//! A content-addressed evaluation cache.
//!
//! Every drive is a pure function of its `(StackConfig, RunConfig)`
//! pair, so a finished run can be memoized under a hash of that pair
//! and replayed for free whenever the same evaluation is requested
//! again — duplicate grid points, search batches that revisit a
//! configuration, `--resume` replays that the trajectory prefix does
//! not cover. The key is an FNV-1a-64 over the canonical debug
//! rendering of both configs (the same stable rendering the checkpoint
//! fingerprint uses), so the cache needs no serialization format of its
//! own and cannot confuse two configurations that differ in any field.

use av_core::ckptstore::CkptStore;
use av_core::determinism::run_hash;
use av_core::stack::{drive_fingerprint, resume_drive, RunConfig, RunReport, StackConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One memoized drive: the full report plus its golden hash.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run's full report.
    pub report: RunReport,
    /// Golden hash of the run ([`av_core::determinism::run_hash`]).
    pub run_hash: u64,
}

/// A thread-safe (spec-hash → result) evaluation cache. Shareable
/// across worker threads by reference; lookups and inserts lock a
/// single map briefly, which is negligible next to a simulated drive.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<u64, CachedRun>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    store_hits: AtomicUsize,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// The content address of one evaluation: FNV-1a-64 over the
    /// canonical rendering of the full stack configuration and the run
    /// options (duration, tracing). Every knob that can change a single
    /// output byte is part of the key.
    pub fn spec_hash(config: &StackConfig, run: &RunConfig) -> u64 {
        fnv64(format!("{config:?}|{run:?}").as_bytes())
    }

    /// Looks up a memoized run, counting the hit or miss.
    pub fn lookup(&self, key: u64) -> Option<CachedRun> {
        let found = self.map.lock().unwrap().get(&key).cloned();
        match found {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a finished run under its key.
    pub fn insert(&self, key: u64, report: &RunReport, run_hash: u64) {
        self.map.lock().unwrap().insert(key, CachedRun { report: report.clone(), run_hash });
    }

    /// [`EvalCache::lookup`] with a disk-store fallback: a memory miss
    /// consults the durable checkpoint store for a *full-horizon*
    /// checkpoint of exactly this `(config, run)` pair — a finished run
    /// whose report is reconstructed by resuming at the horizon (a pure
    /// end-of-run drain, no prefix re-simulated) — and repopulates the
    /// in-memory map from it.
    ///
    /// This is what keeps the cache and the store *agreeing after GC*:
    /// the memory map is not a second source of truth that can outlive
    /// an evicted entry — an entry the store no longer holds (or holds
    /// under a different tracing mode or barrier) is simply a clean
    /// miss, and the evaluation runs cold and may repopulate both.
    pub fn lookup_or_resume(
        &self,
        key: u64,
        config: &StackConfig,
        run: &RunConfig,
        store: Option<&CkptStore>,
    ) -> Option<CachedRun> {
        if let Some(hit) = self.lookup(key) {
            return Some(hit);
        }
        let store = store?;
        let duration_s = run.duration_s?;
        let horizon_ns = (duration_s * 1e9).round() as u64;
        let checkpoint =
            store.best_resume(drive_fingerprint(config), run.trace.is_some(), horizon_ns)?;
        // Only a checkpoint captured exactly at the horizon is a
        // finished run; an earlier barrier would have to simulate the
        // remainder, which is the warm-start seam's job, not the
        // cache's.
        if checkpoint.barrier_ns() != horizon_ns {
            return None;
        }
        let report = resume_drive(config, run, &checkpoint);
        let hash = run_hash(&report);
        self.insert(key, &report, hash);
        self.store_hits.fetch_add(1, Ordering::Relaxed);
        Some(CachedRun { report, run_hash: hash })
    }

    /// Number of lookups that found a memoized run.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of memory misses served by resuming a full-horizon
    /// checkpoint from the disk store.
    pub fn store_hits(&self) -> usize {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized runs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::stack::{run_drive, StackConfig};
    use av_vision::DetectorKind;

    #[test]
    fn keys_separate_configs_and_run_options() {
        let a = StackConfig::smoke_test(DetectorKind::YoloV3);
        let mut b = a.clone();
        b.seed = 7;
        let run2 = RunConfig::seconds(2.0);
        let run4 = RunConfig::seconds(4.0);
        assert_eq!(EvalCache::spec_hash(&a, &run2), EvalCache::spec_hash(&a, &run2));
        assert_ne!(EvalCache::spec_hash(&a, &run2), EvalCache::spec_hash(&b, &run2));
        assert_ne!(EvalCache::spec_hash(&a, &run2), EvalCache::spec_hash(&a, &run4));
        assert_ne!(
            EvalCache::spec_hash(&a, &run2),
            EvalCache::spec_hash(&a, &RunConfig::seconds(2.0).with_trace())
        );
    }

    #[test]
    fn lookup_returns_the_memoized_report() {
        let config = StackConfig::smoke_test(DetectorKind::YoloV3);
        let run = RunConfig::seconds(2.0);
        let cache = EvalCache::new();
        let key = EvalCache::spec_hash(&config, &run);
        assert!(cache.lookup(key).is_none());
        let report = run_drive(&config, &run);
        let hash = av_core::determinism::run_hash(&report);
        cache.insert(key, &report, hash);
        let hit = cache.lookup(key).expect("memoized");
        assert_eq!(hit.run_hash, hash);
        assert_eq!(av_core::determinism::run_hash(&hit.report), hash);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(!cache.is_empty());
    }
}
